"""The full one-time-key lifecycle (the paper's motivating promise).

"Even if an attacker was able to recover a client's private key, it
would become invalid after a short time." This example runs that story
with working cryptography:

1. a device authenticates via the RBC-SALTED search;
2. the CA registers a *usable* (toy-LWE) public key at the RA;
3. a third-party service encrypts a session token to the RA key —
   without ever seeing PUF material;
4. the device re-derives its secret from its own PUF seed and opens
   the session;
5. the device re-authenticates; the RA rotates to a fresh key and
   tokens for the old epoch stop working for new sessions.

    python examples/session_lifecycle.py
"""

import numpy as np

from repro.core import (
    CertificateAuthority,
    LWESessionKeygen,
    RBCSaltedProtocol,
    RBCSearchService,
    RegistrationAuthority,
    SessionClient,
    SessionService,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.engines import build_engine


def main() -> None:
    puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=404)
    mask = enroll_with_masking(puf, 0, 2048, reads=64, instability_threshold=0.02)
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            build_engine("batch:sha3-256,bs=16384"), max_distance=2
        ),
        salt=HashChainSalt(b"lifecycle"),
        keygen=LWESessionKeygen("light"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"lifecycle-master"),
        hash_name="sha3-256",
    )
    authority.enroll("sensor-42", mask)
    device = ClientDevice(
        "sensor-42", puf, noise_target_distance=1, rng=np.random.default_rng(9)
    )
    protocol = RBCSaltedProtocol(authority)

    print("1. authenticate via the RBC search")
    outcome = protocol.authenticate(device, reference_mask=mask)
    assert outcome.authenticated
    epoch1_seed = authority._last_result.seed
    print(f"   d={outcome.distance}, {outcome.seeds_hashed:,} seeds hashed; "
          f"RA now serves a {len(outcome.public_key)}-byte LWE public key")

    print("2. third-party service encrypts a session token to the RA key")
    service = SessionService(
        authority.registration_authority, authority.keygen,
        rng=np.random.default_rng(10),
    )
    token, expected = service.establish("sensor-42")
    print(f"   token ciphertext: u{token.ciphertext_u.shape}, "
          f"v{token.ciphertext_v.shape}")

    print("3. device re-derives its secret and opens the session")
    opener = SessionClient(authority.salt, authority.keygen)
    secret = opener.open_token(token, epoch1_seed)
    assert secret == expected
    print(f"   shared session secret established: {secret[:8].hex()}…")

    print("4. eavesdropper with a random seed fails")
    rng = np.random.default_rng(11)
    stolen = opener.open_token(token, rng.bytes(32))
    print(f"   imposter result: {None if stolen is None else 'WRONG SECRET'}")

    print("5. re-authentication rotates the key epoch")
    outcome2 = protocol.authenticate(device, reference_mask=mask)
    assert outcome2.authenticated
    epoch2_seed = authority._last_result.seed
    rotations = authority.registration_authority.update_count("sensor-42")
    fresh_token, fresh_expected = service.establish("sensor-42")
    old_seed_try = opener.open_token(fresh_token, epoch1_seed)
    new_seed_try = opener.open_token(fresh_token, epoch2_seed)
    stale = old_seed_try is None or old_seed_try != fresh_expected
    if epoch1_seed == epoch2_seed:
        print("   (PUF read repeated exactly; epochs coincide this run)")
    else:
        print(f"   key registrations: {rotations}; old-epoch seed opens new "
              f"token: {not stale}; new-epoch seed opens it: "
              f"{new_seed_try == fresh_expected}")
    assert new_seed_try == fresh_expected


if __name__ == "__main__":
    main()
