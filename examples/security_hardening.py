"""Security analysis and hardening (Sections 2.2 and 5 of the paper).

Shows the three security dials of RBC-SALTED:

1. the server/opponent complexity asymmetry (Equations 1-3);
2. deliberate noise injection — spending spare search budget to raise
   the Hamming distance an opponent must cover (the paper's future work);
3. the timeout discipline — an intractable search fails safe at T.

    python examples/security_hardening.py
"""

import numpy as np

from repro import quick_setup
from repro.analysis.tables import format_table
from repro.core import RBCSaltedProtocol
from repro.core.complexity import (
    opponent_search_space,
    server_search_space,
    table1_rows,
    tractable_distance,
)
from repro.devices import GPUModel


def complexity_story() -> None:
    rows = [
        [r.d, f"{r.exhaustive:.3g}", f"{r.average:.3g}"] for r in table1_rows(5)
    ]
    print(
        format_table(
            ["d", "exhaustive u(d)", "average a(d)"],
            rows,
            title="Server search space by Hamming distance (paper Table 1)",
        )
    )
    print(f"\nopponent's space (Eq. 2): 2^256 = {opponent_search_space():.3g}")
    print(
        "server advantage at d=5: "
        f"{opponent_search_space() / server_search_space(5):.3g}x fewer seeds"
    )


def noise_injection_story() -> None:
    gpu = GPUModel()
    print("\nNoise injection as a security dial (GPU model, SHA-3, T=20 s):")
    rows = []
    for d in range(3, 7):
        try:
            seconds = gpu.search_time("sha3-256", d)
        except Exception:
            break
        verdict = "OK" if seconds <= 20 else "exceeds T"
        rows.append([d, f"{server_search_space(d):.3g}", f"{seconds:.2f}", verdict])
    print(format_table(["d", "seeds", "search (s)", "within T?"], rows))
    rate = 8987138113 / gpu.search_time("sha3-256", 5)
    print(
        f"\nlargest tractable d at GPU SHA-3 throughput: "
        f"{tractable_distance(rate, 20.0)} "
        "-> the client can inject noise up to that distance for free"
    )


def live_hardened_round() -> None:
    print("\nLive hardened round (real search, d forced to 2):")
    authority, client, mask = quick_setup(
        seed=13, max_distance=2, noise_target_distance=2
    )
    outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
    print(
        f"  authenticated={outcome.authenticated} at d={outcome.distance}, "
        f"{outcome.seeds_hashed:,} seeds hashed in {outcome.search_seconds:.2f} s"
    )

    print("\nTimeout discipline (search budget set to ~0):")
    authority2, client2, mask2 = quick_setup(seed=14, noise_target_distance=2)
    authority2.search_service.time_threshold = 1e-9
    outcome2 = RBCSaltedProtocol(authority2, max_attempts=2).authenticate(
        client2, reference_mask=mask2
    )
    print(
        f"  authenticated={outcome2.authenticated} "
        f"(timed_out={outcome2.timed_out}, attempts={outcome2.attempts}) "
        "- the CA failed safe and would re-handshake"
    )

    print("\nOne-time keys under observation:")
    authority3, client3, mask3 = quick_setup(seed=15, noise_target_distance=1)
    protocol = RBCSaltedProtocol(authority3)
    keys = []
    for _ in range(3):
        outcome = protocol.authenticate(client3, reference_mask=mask3)
        assert outcome.authenticated
        keys.append(outcome.public_key)
    unique = len({k for k in keys})
    print(f"  3 sessions -> {unique} distinct public keys "
          "(stolen keys expire with the session)")


def main() -> None:
    complexity_story()
    noise_injection_story()
    live_hardened_round()


if __name__ == "__main__":
    main()
