"""Seed-iterator playground (the paper's Section 3.2.1 / Table 4 story).

Compares the four combination generators on this host — generation rate,
minimal-change property, checkpoint parallelization — and runs the same
reduced-scale RBC search with each to show they find identical seeds at
different costs.

    python examples/seed_iterators.py
"""

import time

import numpy as np

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.combinatorics import (
    Algorithm154Iterator,
    Algorithm382Iterator,
    Algorithm515Iterator,
    GosperIterator,
    binomial,
)
from repro.combinatorics.ranking import unrank_lexicographic_batch
from repro.hashes.sha1 import sha1
from repro.engines import build_engine

N_BITS = 256
K = 3
SAMPLE = 50_000


def generation_rates() -> str:
    """Combinations/second for each sequential generator at 256-bit width."""
    rows = []
    for name, cls in [
        ("Chase 382 (minimal change)", Algorithm382Iterator),
        ("Gosper's hack (256-bit)", GosperIterator),
        ("Alg 154 (lex successor)", Algorithm154Iterator),
        ("Alg 515 (unrank each)", Algorithm515Iterator),
    ]:
        iterator = cls(N_BITS, K)
        start = time.perf_counter()
        produced = 1
        iterator.current()  # materialize — Alg 515 does its work here
        while produced < SAMPLE and iterator.advance():
            iterator.current()
            produced += 1
        elapsed = time.perf_counter() - start
        rows.append([name, f"{produced / elapsed:12,.0f}"])
    # The vectorized unranker — the batch analogue of Algorithm 515 with
    # the GPU lookup table.
    start = time.perf_counter()
    unrank_lexicographic_batch(N_BITS, K, np.arange(SAMPLE, dtype=np.uint64))
    elapsed = time.perf_counter() - start
    rows.append(["Vectorized unrank (batch 515)", f"{SAMPLE / elapsed:12,.0f}"])
    return format_table(
        ["generator", "combinations/s"],
        rows,
        title=f"Generation rate, {K}-subsets of {{0..255}}, this host",
    )


def checkpoint_demo() -> None:
    """The Chase parallelization: split one sequence across 8 workers."""
    workers = 8
    total = binomial(N_BITS, 2)
    iterator = Algorithm382Iterator(N_BITS, 2)
    start = time.perf_counter()
    states = iterator.checkpoints(workers, total=total)
    setup = time.perf_counter() - start
    print(f"\nChase checkpointing: {workers} states over {total:,} combinations "
          f"(one-time setup {setup:.2f} s, reusable for all clients)")
    boundaries = [(i * total) // workers for i in range(workers)] + [total]
    covered = 0
    for idx, state in enumerate(states):
        worker = Algorithm382Iterator(N_BITS, 2)
        worker.restore(state)
        chunk = boundaries[idx + 1] - boundaries[idx]
        covered += len(worker.take(chunk))
    print(f"workers jointly produced {covered:,}/{total:,} combinations, "
          "no overlaps (each resumed from its snapshot)")


def search_with_each_iterator() -> str:
    rng = np.random.default_rng(5)
    base = rng.bytes(32)
    client_seed = flip_bits(base, [17, 211])
    digest = sha1(client_seed)
    rows = []
    for iterator in ("unrank", "chase", "gosper", "lex", "unrank-scalar"):
        executor = build_engine(f"batch:sha1,bs=8192,it={iterator}")
        result = executor.search(base, digest, 2)
        assert result.found and result.seed == client_seed
        rows.append(
            [iterator, f"{result.elapsed_seconds:.3f}", f"{result.seeds_hashed:,}"]
        )
    return format_table(
        ["iterator", "search (s)", "seeds hashed"],
        rows,
        title="Same d=2 search, every iterator (identical result, different cost)",
    )


def main() -> None:
    print(generation_rates())
    checkpoint_demo()
    print()
    print(search_with_each_iterator())
    print(
        "\nPaper's Table 4 (A100, SHA-3, d=5): Chase 4.67 s beats "
        "Gosper 6.04 s and Alg 515 7.53 s — the work-efficient sequential\n"
        "method, parallelized by checkpointing, wins over the "
        "embarrassingly parallel but work-heavy unranking."
    )


if __name__ == "__main__":
    main()
