"""Quickstart: authenticate one PUF-equipped client with RBC-SALTED.

Runs the full Figure-1 flow at interactive scale (Hamming distance <= 2):
enrollment in the secure facility, handshake, noisy PUF read, the hash
search on the server, salting, key generation, and the RA update.

    python examples/quickstart.py
"""

from repro import quick_setup
from repro.core import RBCSaltedProtocol


def main() -> None:
    # Build a CA with an enrolled client. quick_setup wires together the
    # PUF, TAPKI enrollment, encrypted image DB, search service (SHA3-256,
    # vectorized batch executor), salt scheme, and AES key generator.
    authority, client, mask = quick_setup(
        seed=7,
        hash_name="sha3-256",
        max_distance=2,
        noise_target_distance=2,  # force a d=2 search, as the paper does
    )

    protocol = RBCSaltedProtocol(authority)
    outcome = protocol.authenticate(client, reference_mask=mask)

    print("RBC-SALTED quickstart")
    print("=" * 50)
    print(f"client:               {outcome.client_id}")
    print(f"authenticated:        {outcome.authenticated}")
    print(f"Hamming distance:     {outcome.distance}")
    print(f"seeds hashed:         {outcome.seeds_hashed:,}")
    print(f"search time:          {outcome.search_seconds:.3f} s")
    print(f"attempts:             {outcome.attempts}")
    assert outcome.public_key is not None
    print(f"public key (first 16 bytes): {outcome.public_key[:16].hex()}")

    # The RA now serves the client's one-time public key.
    registered = authority.registration_authority.lookup(outcome.client_id)
    assert registered == outcome.public_key
    print("registration authority updated: OK")

    # One-time keys: a second session recovers a fresh noisy seed and
    # registers a fresh key.
    second = protocol.authenticate(client, reference_mask=mask)
    assert second.authenticated
    rotations = authority.registration_authority.update_count(outcome.client_id)
    print(f"sessions completed:   {rotations} (one key per session)")


if __name__ == "__main__":
    main()
