"""Hardened sessions: MAC'd challenges, nonce binding, replay defense.

The paper measures the protocol on a benign network; this example runs
the hardened session layer and then *attacks* it:

* an eavesdropper replays a captured digest — rejected (one-time nonce);
* an active attacker forges a challenge steering the client to different
  PUF cells — rejected by the client (HMAC over the challenge);
* the legitimate flow still authenticates at full batch speed, because
  ``seed ‖ nonce`` fits one SHA-3 sponge block.

    python examples/secure_sessions.py
"""

import dataclasses
import time

import numpy as np

from repro import quick_setup
from repro.net.session import (
    SecureClientSession,
    SessionError,
    SessionManager,
)

MAC_KEY = b"factory-installed-mac-key!"


def main() -> None:
    authority, client, mask = quick_setup(
        seed=77, max_distance=2, noise_target_distance=2
    )
    manager = SessionManager(authority, rng=np.random.default_rng(1))
    manager.install_mac_key("client-0", MAC_KEY)
    session = SecureClientSession(client, MAC_KEY)

    print("1. legitimate hardened round")
    challenge = manager.issue_challenge("client-0")
    start = time.perf_counter()
    digest = session.respond(challenge, reference_mask=mask)
    result = manager.accept_digest("client-0", challenge.nonce, digest)
    elapsed = time.perf_counter() - start
    print(f"   authenticated={result.authenticated} at d={result.distance} "
          f"in {elapsed:.2f} s (nonce-bound vectorized search)")

    print("2. eavesdropper replays the captured digest")
    try:
        manager.accept_digest("client-0", challenge.nonce, digest)
        print("   !!! replay accepted — broken")
    except SessionError as error:
        print(f"   rejected: {error}")

    print("3. replay under a fresh nonce (digest no longer matches)")
    fresh = manager.issue_challenge("client-0")
    replayed = manager.accept_digest("client-0", fresh.nonce, digest)
    print(f"   authenticated={replayed.authenticated} "
          "(old digest cannot satisfy the new nonce binding)")

    print("4. active attacker forges a challenge (wrong address)")
    genuine = manager.issue_challenge("client-0")
    tampered_inner = dataclasses.replace(genuine.challenge, address=64)
    tampered = dataclasses.replace(genuine, challenge=tampered_inner)
    try:
        session.respond(tampered, reference_mask=mask)
        print("   !!! client read attacker-chosen cells — broken")
    except SessionError as error:
        print(f"   client refused: {error}")

    print("5. bookkeeping")
    print(f"   replays rejected: {manager.replays_rejected}")
    print(
        "   one-time keys registered: "
        f"{authority.registration_authority.update_count('client-0')}"
    )


if __name__ == "__main__":
    main()
