"""Distributed and multi-accelerator scaling (the paper's Section 5).

Three scaling stories in one run:

1. the *real* distributed cluster engine splitting one search across
   MPI-style ranks on this host (reduced scale);
2. the modeled multi-node CPU cluster that brings SHA-3 under the T=20 s
   threshold (4 nodes);
3. the modeled 8x-APU chassis the paper proposes (2U form factor),
   compared with 3x A100.

    python examples/distributed_search.py
"""

import numpy as np

from repro.analysis.plots import bar_chart, line_plot
from repro.analysis.tables import format_table
from repro.devices import APUModel, CPUModel, GPUModel, speedup_curve
from repro.engines import build_engine
from repro.hashes.sha1 import sha1
from repro.runtime.cluster import Interconnect


def real_cluster_demo() -> None:
    rng = np.random.default_rng(2026)
    base = rng.bytes(32)
    absent = sha1(rng.bytes(32))

    print("Real distributed search on this host (SALTED, SHA-1, exhaustive d=2):")
    rows = []
    for ranks in (1, 2, 4):
        cluster = build_engine(f"cluster:{ranks},hash=sha1,bs=4096")
        result = cluster.search(base, absent, 2)
        slowest = max(result.per_rank_seconds)
        rows.append(
            [ranks, f"{result.seeds_hashed_total:,}", f"{slowest:.2f}",
             f"{result.wall_seconds:.2f}"]
        )
    print(format_table(
        ["ranks", "seeds (all ranks)", "slowest rank (s)", "wall (s)"], rows
    ))

    from repro._bitutils import flip_bits

    client = flip_bits(base, [7, 201])
    cluster = build_engine("cluster:4,hash=sha1,bs=4096")
    result = cluster.search(base, sha1(client), 2)
    print(
        f"\nplanted d=2 seed: found by rank {result.finder_rank} in "
        f"{result.wall_seconds:.2f} s wall; the distributed exit flag "
        "stopped the other ranks after one in-flight batch."
    )

    slow_fabric = Interconnect(
        name="WAN", broadcast_seconds=0.2, allreduce_seconds=0.2,
        gather_seconds=0.2, exit_propagation_seconds=0.2,
    )
    wan = build_engine(
        "cluster:4,hash=sha1,bs=4096", interconnect=slow_fabric
    ).search(base, sha1(client), 2)
    print(
        f"same search over a WAN-grade fabric: {wan.wall_seconds:.2f} s "
        "(fabric costs dominate small searches — why the paper keeps the "
        "search inside one node until d grows)"
    )


def modeled_scaling_stories() -> None:
    cpu = CPUModel()
    print("\nModeled multi-node CPU cluster (SHA-3 exhaustive d=5, T=20 s):")
    rows = []
    for nodes in (1, 2, 4, 8):
        t = cpu.cluster_time("sha3-256", 5, nodes=nodes)
        rows.append([nodes, f"{t:.2f}", "yes" if t <= 20 else "no"])
    print(format_table(["nodes", "search (s)", "meets T?"], rows))

    print("\nModeled accelerator chassis for SHA-3 exhaustive d=5:")
    options = {
        "1x A100": GPUModel().search_time("sha3-256", 5),
        "3x A100": GPUModel().search_time("sha3-256", 5, num_gpus=3),
        "1x APU": APUModel().search_time("sha3-256", 5),
        "8x APU (2U)": APUModel(num_apus=8).search_time("sha3-256", 5),
    }
    print(bar_chart(options, title="search seconds (lower is better)",
                    value_format="{:.2f} s"))
    print(
        "\nthe paper's future-work bet: eight small-form-factor APUs in "
        "one chassis out-scale a 3-GPU node on this workload."
    )

    print("\nMulti-GPU speedup curves (Figure 4):")
    series = {}
    for h in ("sha1", "sha3-256"):
        for mode in ("exhaustive", "average"):
            pts = speedup_curve(h, mode, 3)
            series[f"{h}/{mode[:4]}"] = [(p.num_gpus, p.speedup) for p in pts]
    print(line_plot(series, x_label="GPUs", y_label="speedup"))


def main() -> None:
    real_cluster_demo()
    modeled_scaling_stories()


if __name__ == "__main__":
    main()
