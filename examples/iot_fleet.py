"""IoT fleet scenario: many low-power clients, one secure CA.

The paper's motivating deployment — resource-constrained IoT devices
authenticate against a CA that carries the whole computational burden.
This example provisions a fleet of SRAM-PUF devices with *heterogeneous*
quality (some chips are noisier than others), enrolls them with TAPKI
masking, then authenticates the fleet over the latency-modeled network,
reporting per-device Hamming distances, search times, communication
costs, and TAPKI's effect on tractability.

    python examples/iot_fleet.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import (
    CertificateAuthority,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.keygen.interface import get_keygen
from repro.net import CAServer, InProcessTransport, NetworkClient, US_LINK
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.engines import build_engine

FLEET_SIZE = 6


def provision_fleet():
    """Manufacture devices with varying noise profiles and enroll them."""
    devices = []
    for i in range(FLEET_SIZE):
        # Chips 0-3 are good; 4-5 came out of a noisier process corner.
        stable_fraction = 0.95 if i < 4 else 0.80
        puf = SRAMPuf(
            num_cells=4096,
            stable_fraction=stable_fraction,
            stable_error=0.001,
            erratic_error=0.12,
            seed=1000 + i,
        )
        mask = enroll_with_masking(
            puf, address=0, window=4096, reads=64, instability_threshold=0.02
        )
        devices.append((f"iot-{i:02d}", puf, mask, stable_fraction))
    return devices


def main() -> None:
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            build_engine("batch:sha3-256,bs=16384"), max_distance=2
        ),
        salt=HashChainSalt(b"iot-fleet/2026"),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"fleet-master-k3y"),
        hash_name="sha3-256",
    )
    server = CAServer(authority)

    devices = provision_fleet()
    for client_id, _puf, mask, _quality in devices:
        authority.enroll(client_id, mask)
    print(f"enrolled {len(devices)} devices "
          f"({len(authority.image_db)} encrypted images in the CA)\n")

    rows = []
    for client_id, puf, mask, stable_fraction in devices:
        # Even devices harden their sessions with injected noise (paper
        # Section 5); odd devices send their natural read.
        target = 2 if int(client_id[-2:]) % 2 == 0 else None
        device = ClientDevice(
            client_id, puf, noise_target_distance=target,
            rng=np.random.default_rng(hash(client_id) % 2**32),
        )
        transport = InProcessTransport(latency=US_LINK)
        client = NetworkClient(device, transport, reference_mask=mask)
        result = client.authenticate(server)
        masked_pct = 100 * (1 - mask.usable_count / mask.usable.shape[0])
        rows.append(
            [
                client_id,
                f"{stable_fraction:.0%}",
                f"{masked_pct:.1f}%",
                "yes" if result.authenticated else "NO",
                result.distance if result.distance is not None else "-",
                f"{result.search_seconds:.3f}",
                f"{transport.elapsed_seconds:.2f}",
            ]
        )

    print(
        format_table(
            ["device", "stable cells", "TAPKI masked", "auth", "d",
             "search (s)", "comm (s)"],
            rows,
            title="Fleet authentication (SHA3-256 search, US link)",
        )
    )

    authenticated = sum(1 for r in rows if r[3] == "yes")
    print(f"\n{authenticated}/{len(rows)} devices authenticated")
    print(f"CA handled {server.handshakes_served} handshakes, "
          f"{server.searches_run} searches")

    # TAPKI is what keeps the noisy chips tractable: show the masked
    # error rates the CA actually faces.
    print("\nWhy TAPKI matters (per-device masked vs raw mean flip rate):")
    for client_id, puf, mask, _q in devices[:2] + devices[-2:]:
        raw = puf.flip_probability.mean()
        masked = puf.flip_probability[mask.usable].mean()
        print(f"  {client_id}: raw {raw:.4f} -> masked {masked:.4f}")


if __name__ == "__main__":
    main()
