"""Chaos engineering for the RBC serving stack: a fault-injected storm.

Authenticates a fleet of PUF clients across a lossy WAN — messages drop,
arrive corrupted, duplicate, reorder, and spike in latency — while the
CA's fast search device fails mid-storm. The resilience layer keeps the
service honest: clients retry with backoff under deadlines, a circuit
breaker trips around the sick device, and a CPU baseline absorbs the
traffic until the device recovers. Every stochastic choice flows from
one seed, so the run (including the breaker's transition history) is
exactly reproducible.

    python examples/chaos_storm.py
"""

from repro.reliability.chaos import NAMED_PLANS, run_named_storm


def main() -> None:
    print("available fault plans:", ", ".join(sorted(NAMED_PLANS)), "\n")

    # A small deterministic storm first: 12 clients, 15% drop, 5% frame
    # corruption, one device-failure episode.
    report = run_named_storm("smoke", seed=1)
    print(report.render())
    print()

    # The same storm with the same seed is byte-identical — chaos you
    # can put in CI and diff.
    again = run_named_storm("smoke", seed=1)
    print("same seed reproduces the report exactly:", report == again)
    print()

    # The full acceptance storm: 100 clients on a 20%-drop WAN with a
    # device-failure episode long enough to walk the breaker through
    # closed -> open -> half-open (probe fails, re-opens) -> closed.
    report = run_named_storm("lossy-wan", seed=0)
    print(report.render())
    print()
    print("breaker lifecycle:", " ".join(report.breaker_transitions))


if __name__ == "__main__":
    main()
