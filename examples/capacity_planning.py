"""CA capacity planning: from search throughput to a service level.

Turns the paper's Table 5 into operations questions: how many IoT
clients can one CA authenticate per hour, on which hardware, under what
PUF-quality mix and environmental conditions — and when does the queue
blow up?

    python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.analysis.workload import (
    ServerCapacityModel,
    WorkloadGenerator,
    service_time_distribution,
    simulate_queue,
)
from repro.devices import APUModel, CPUModel, GPUModel
from repro.puf.environment import EnvironmentalConditions, stress_factor


def fleet_capacity() -> None:
    rng = np.random.default_rng(11)
    generator = WorkloadGenerator(1.0, rng=rng)
    requests = generator.generate(800)

    print("Sustainable authentications/hour at 80% utilization "
          "(TAPKI fleet mix):")
    rows = []
    for label, model in (
        ("GPU (A100)", GPUModel()),
        ("APU (Gemini)", APUModel()),
        ("CPU (64 cores)", CPUModel()),
    ):
        for hash_name in ("sha1", "sha3-256"):
            service = service_time_distribution(model, hash_name, requests)
            capacity = ServerCapacityModel(service)
            rate = capacity.max_stable_rate(0.8)
            estimate = capacity.estimate(rate)
            rows.append(
                [label, hash_name, f"{rate * 3600:,.0f}",
                 f"{estimate.mean_response_seconds:.2f}"]
            )
    print(format_table(
        ["platform", "hash", "auths/hour", "mean response (s)"], rows
    ))


def saturation_story() -> None:
    rng = np.random.default_rng(13)
    gpu = GPUModel()
    generator = WorkloadGenerator(1.0, rng=rng)
    requests = generator.generate(1200)
    service = service_time_distribution(gpu, "sha3-256", requests)
    capacity = ServerCapacityModel(service)

    print("\nQueue behaviour as load approaches saturation (GPU, SHA-3):")
    rows = []
    for rate in (1.0, 3.0, 5.0, 5.8, 6.2):
        estimate = capacity.estimate(rate)
        wait = (
            f"{estimate.mean_wait_seconds:.2f}"
            if estimate.stable
            else "unbounded"
        )
        rows.append([f"{rate:.1f}", f"{estimate.utilization:.2f}", wait])
    print(format_table(["arrivals/s", "utilization", "mean wait (s)"], rows))

    sim = simulate_queue(requests, service)
    print(
        f"\ndiscrete-event cross-check at 1 auth/s: mean wait "
        f"{sim['mean_wait_seconds']:.2f} s, p95 {sim['p95_wait_seconds']:.2f} s, "
        f"server busy {sim['busy_fraction']:.0%}"
    )


def environmental_story() -> None:
    print("\nEnvironmental margin (how field conditions tax the search):")
    rows = []
    for label, conditions in (
        ("enrollment (25 C)", EnvironmentalConditions()),
        ("server room (40 C)", EnvironmentalConditions(temperature_c=40.0)),
        ("outdoor summer (70 C)", EnvironmentalConditions(temperature_c=70.0)),
        ("engine bay (105 C)", EnvironmentalConditions(temperature_c=105.0)),
        ("brown-out (0.9 V)", EnvironmentalConditions(supply_voltage=0.9)),
    ):
        factor = stress_factor(conditions)
        rows.append([label, f"{factor:.2f}x"])
    print(format_table(["operating point", "flip-rate multiplier"], rows))
    print(
        "every extra expected bit of error multiplies the search by "
        "~C(256, d+1)/C(256, d) ≈ 50 — the GPU's headroom under T=20 s is "
        "what makes hot deployments feasible (paper Section 5)."
    )


def main() -> None:
    fleet_capacity()
    saturation_story()
    environmental_story()


if __name__ == "__main__":
    main()
