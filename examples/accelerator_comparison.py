"""Cross-platform accelerator comparison (the paper's Section 4 in one run).

Uses the calibrated device models to reproduce the paper's comparison of
the A100 GPU, Gemini APU, and 64-core EPYC CPU on the d=5 RBC-SALTED
search — response times, energy footprints, multi-GPU scaling — and then
probes this host's real vectorized kernels to show the same SHA-1/SHA-3
cost structure holds off-model.

    python examples/accelerator_comparison.py
"""

from repro.analysis.tables import format_table
from repro.core.complexity import tractable_distance
from repro.devices import (
    APUModel,
    COMM_TIME_SECONDS,
    CPUModel,
    GPUModel,
    speedup_curve,
)
from repro.engines import build_engine


def response_time_table(models) -> str:
    rows = []
    for hash_name in ("sha1", "sha3-256"):
        for mode in ("exhaustive", "average"):
            for label, model in models:
                search = model.search_time(hash_name, 5, mode)
                rows.append(
                    [
                        label,
                        hash_name,
                        mode,
                        f"{COMM_TIME_SECONDS:.2f}",
                        f"{search:.2f}",
                        f"{COMM_TIME_SECONDS + search:.2f}",
                    ]
                )
    return format_table(
        ["platform", "hash", "search type", "comm (s)", "search (s)", "total (s)"],
        rows,
        title="End-to-end response time, d=5 (cf. paper Table 5)",
    )


def energy_table(models) -> str:
    rows = []
    for hash_name in ("sha1", "sha3-256"):
        for label, model in models:
            timing = model.simulate_search(hash_name, 5)
            rows.append(
                [
                    label,
                    hash_name,
                    f"{timing.energy_joules:.1f}",
                    f"{model.spec.max_watts:.1f}",
                    f"{model.spec.idle_watts:.1f}",
                ]
            )
    return format_table(
        ["platform", "hash", "total J", "max W", "idle W"],
        rows,
        title="Search-only energy, exhaustive d=5 (cf. paper Table 6)",
    )


def main() -> None:
    gpu, apu, cpu = GPUModel(), APUModel(), CPUModel()
    accelerators = [("GPU (A100)", gpu), ("APU (Gemini)", apu)]
    all_models = accelerators + [("CPU (64 cores)", cpu)]

    print(response_time_table(all_models))

    print("\nAuthentication threshold check (T = 20 s):")
    for label, model in all_models:
        for h in ("sha1", "sha3-256"):
            t = model.search_time(h, 5)
            verdict = "meets T" if t <= 20 else "MISSES T"
            print(f"  {label:15s} {h:9s}: {t:6.2f} s  -> {verdict}")

    print()
    print(energy_table(accelerators))
    sha1_ratio = (
        apu.simulate_search("sha1", 5).energy_joules
        / gpu.simulate_search("sha1", 5).energy_joules
    )
    print(f"\nAPU/GPU energy ratio on SHA-1: {sha1_ratio:.1%} "
          "(paper: 39.2% — compute-in-memory wins when runtimes are close)")

    print("\nMulti-GPU scaling (cf. paper Figure 4):")
    for h in ("sha1", "sha3-256"):
        for mode in ("exhaustive", "average"):
            pts = speedup_curve(h, mode, 3)
            series = ", ".join(f"{p.num_gpus}xGPU={p.speedup:.2f}x" for p in pts)
            print(f"  {h:9s} {mode:11s}: {series}")

    print("\nSearch-radius planning (largest d within T=20 s, exhaustive):")
    for label, model in all_models:
        for h in ("sha1", "sha3-256"):
            rate = 8987138113 / model.search_time(h, 5)
            print(f"  {label:15s} {h:9s}: d_max = {tractable_distance(rate, 20.0)}")

    print("\nReal kernels on this host (NumPy lanes, not a model):")
    for name in ("sha1", "sha256", "sha3-256"):
        rate = build_engine("batch", hash_name=name).throughput_probe(50000)
        print(f"  {name:9s}: {rate:12,.0f} hashes/s")
    print("  (the SHA-3 > SHA-1 cost ordering that drives every table above)")


if __name__ == "__main__":
    main()
