"""Extension — the motivating trade-off: client-side ECC vs server-side RBC.

The paper's introduction argues IoT clients cannot afford error
correction (cost) and should not want it (helper-data leakage). This
bench quantifies both sides with the implemented repetition-code fuzzy
extractor against the RBC client's actual cost (one hash, no helper):

* client work per authentication (bit operations / wall time);
* reliability at the paper's nominal 5-bit error rate vs repetition r;
* helper-data leakage, the channel RBC simply does not have.

Also runs the associative-match search batch (the APU's native compare)
to show the complete SALTED-APU data path at functional fidelity.
"""

import time

import numpy as np
from conftest import record_report

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.devices.bitserial_search import AssociativeSearchEngine
from repro.hashes.sha3 import sha3_256
from repro.puf.fuzzy_extractor import RepetitionFuzzyExtractor

NOMINAL_ERROR_RATE = 5 / 256  # the paper's "typical bit error rate"


def test_ecc_vs_rbc_client_cost(benchmark, report):
    rng = np.random.default_rng(97)
    rows = []
    for repetition in (3, 5, 7, 9):
        extractor = RepetitionFuzzyExtractor(256, repetition)
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        _secret, helper = extractor.enroll(reading, rng)
        start = time.perf_counter()
        for _ in range(50):
            extractor.reproduce(reading, helper)
        decode_us = (time.perf_counter() - start) / 50 * 1e6
        rows.append(
            [
                f"ECC r={repetition}",
                f"{extractor.reading_bits}",
                f"{extractor.client_bit_operations():,}",
                f"{decode_us:.0f}",
                f"{extractor.failure_probability(NOMINAL_ERROR_RATE):.2%}",
                f"{extractor.helper_leakage_bits()}",
            ]
        )
    seed = rng.bytes(32)
    start = time.perf_counter()
    for _ in range(50):
        sha3_256(seed)
    hash_us = (time.perf_counter() - start) / 50 * 1e6
    rows.append(["RBC client (1 hash)", "256", "n/a", f"{hash_us:.0f}", "0%¹", "0"])

    report(
        "ext_ecc_contrast",
        format_table(
            ["scheme", "PUF bits read", "client bit-ops", "client µs",
             "fail @ 2% BER", "helper leakage (bits)"],
            rows,
            title="Client-side ECC vs RBC, at the paper's nominal error rate",
        )
        + "\n¹ RBC never fails client-side: correction happens in the "
        "server's search (bounded by T and retried on timeout).\n"
        "The paper's argument in one table: reliability at IoT error rates "
        "demands r >= 7 — 7x the PUF bits, kilobits of helper leakage — "
        "while the RBC client reads 256 bits and hashes once.",
    )

    weak = RepetitionFuzzyExtractor(256, 3)
    strong = RepetitionFuzzyExtractor(256, 7)
    assert weak.failure_probability(NOMINAL_ERROR_RATE) > 0.05
    assert strong.failure_probability(NOMINAL_ERROR_RATE) < 0.01

    extractor = RepetitionFuzzyExtractor(256, 5)
    reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
    _s, helper = extractor.enroll(reading, rng)
    benchmark(lambda: extractor.reproduce(reading, helper))


def test_associative_search_data_path(benchmark, report):
    """The full SALTED-APU inner loop at functional fidelity."""
    rng = np.random.default_rng(101)
    base = rng.bytes(32)
    candidates = [flip_bits(base, [i]) for i in range(8)]
    target = sha3_256(candidates[5])

    engine = AssociativeSearchEngine("sha3-256")
    index, proc = engine.search_batch(candidates, target)
    assert index == 5
    sha1_ops = AssociativeSearchEngine("sha1").ops_per_candidate(4)
    sha3_ops = engine.ops_per_candidate(4)
    record_report(
        "ext_associative_search",
        f"Associative SALTED batch (8 candidates/PEs, SHA-3): planted seed "
        f"found at PE {index}; {proc.op_count:,} column ops total.\n"
        f"ops/candidate incl. associative match: sha1 {sha1_ops:,.0f}, "
        f"sha3-256 {sha3_ops:,.0f} ({sha3_ops / sha1_ops:.2f}x — the APU's "
        "hash-choice penalty, now including the native match step).",
    )

    small = [flip_bits(base, [i]) for i in range(4)]
    small_target = sha3_256(small[2])
    benchmark(lambda: engine.search_batch(small, small_target))