"""Ablation benches for the design choices DESIGN.md calls out.

* Lane width (batch size) of the vectorized executor — the reproduction's
  analogue of GPU occupancy tuning (Figure 3's axis, on real hardware).
* TAPKI masking threshold — enrollment strictness vs effective client
  bit-error rate vs search tractability (the Section 2.1 design knob).
* Salt scheme cost — the three salt options all cost ~nothing next to a
  single shell of search (why the paper can afford the salting step).
"""

import time

import numpy as np
from conftest import record_report

from repro.analysis.tables import format_table
from repro.core.complexity import tractable_distance
from repro.core.salting import HashChainSalt, RotateSalt, XorSalt
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.engines import build_engine


def test_ablation_lane_width(benchmark, report):
    """Hash throughput vs batch size on this host."""
    rng = np.random.default_rng(67)
    words = rng.integers(0, 1 << 63, size=(1 << 16, 4), dtype=np.int64).astype(np.uint64)
    from repro.hashes.registry import get_hash

    algo = get_hash("sha3-256")
    algo.hash_seeds_batch(words[:256])  # warm-up
    rows = []
    rates = {}
    for width in (64, 256, 1024, 4096, 16384, 65536):
        chunk = words[:width]
        repeats = max(1, 16384 // width)
        start = time.perf_counter()
        for _ in range(repeats):
            algo.hash_seeds_batch(chunk)
        elapsed = time.perf_counter() - start
        rates[width] = width * repeats / elapsed
        rows.append([width, f"{rates[width]:12,.0f}"])
    best = max(rates, key=rates.get)
    report(
        "ablation_lane_width",
        format_table(
            ["batch size (lanes)", "sha3-256 hashes/s"],
            rows,
            title="Lane-width ablation (the host analogue of Figure 3's n axis)",
        )
        + f"\nbest width: {best} — like the GPU, the vector engine needs "
        "enough parallel work to amortize per-kernel overhead, then "
        "plateaus.",
    )
    # Wide beats narrow by a large factor (the oversubscription story).
    assert rates[16384] > 3 * rates[64]

    benchmark(lambda: algo.hash_seeds_batch(words[:4096]))


def test_ablation_tapki_threshold(benchmark, report):
    """Masking strictness vs usable cells vs residual error rate."""
    puf = SRAMPuf(num_cells=8192, stable_fraction=0.85, seed=71)
    rows = []
    summary = {}
    for threshold in (0.30, 0.10, 0.05, 0.02):
        mask = enroll_with_masking(
            puf, 0, 8192, reads=48, instability_threshold=threshold
        )
        residual = float(puf.flip_probability[mask.usable][:256].mean())
        expected_d = residual * 256
        rows.append(
            [f"{threshold:.2f}", mask.usable_count,
             f"{residual:.4f}", f"{expected_d:.1f}"]
        )
        summary[threshold] = (mask.usable_count, expected_d)
    report(
        "ablation_tapki",
        format_table(
            ["instability threshold", "usable cells", "mean flip prob (seed cells)",
             "E[d] per read"],
            rows,
            title="TAPKI masking threshold ablation (8192-cell device, 15% erratic)",
        )
        + "\nstricter masking -> fewer usable cells but exponentially "
        "cheaper searches; the CA needs E[d] <= 5 for the T=20 s budget.",
    )
    # Stricter thresholds must reduce expected distance and usable cells.
    assert summary[0.02][1] < summary[0.30][1]
    assert summary[0.02][0] < summary[0.30][0]
    # The strict setting lands in the paper's tractable regime.
    assert summary[0.02][1] < 5.0

    benchmark(
        lambda: enroll_with_masking(puf, 0, 2048, reads=16, instability_threshold=0.05)
    )


def test_ablation_salt_cost(benchmark, report):
    """All salt schemes are negligible next to one search shell."""
    rng = np.random.default_rng(73)
    seed = rng.bytes(32)
    schemes = [
        ("rotate", RotateSalt(96)),
        ("xor", XorSalt(rng.bytes(32))),
        ("hash-chain", HashChainSalt()),
    ]
    rows = []
    shell_seconds = None
    executor = build_engine("batch:sha3-256,bs=257")
    from repro.hashes.sha3 import sha3_256

    start = time.perf_counter()
    executor.search(seed, sha3_256(rng.bytes(32)), 1)
    shell_seconds = time.perf_counter() - start

    for name, scheme in schemes:
        start = time.perf_counter()
        for _ in range(200):
            scheme(seed)
        per_op = (time.perf_counter() - start) / 200
        rows.append(
            [name, f"{per_op * 1e6:.1f}", f"{per_op / shell_seconds:.2e}"]
        )
    report(
        "ablation_salt_cost",
        format_table(
            ["salt scheme", "µs per salt", "fraction of one d=1 shell"],
            rows,
            title="Salt-scheme cost ablation",
        )
        + "\n(the paper's 'generate the key once' claim: even the "
        "strongest salt is noise next to the search)",
    )
    benchmark(lambda: HashChainSalt()(seed))
