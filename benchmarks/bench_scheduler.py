"""Scheduler benchmark — shallow-request tail latency under a mixed fleet.

The serving claim behind :mod:`repro.sched`: when shallow (d <= 2)
authentications share one device with deep stragglers, a FIFO worker
makes every shallow request wait out the deep searches queued ahead of
it, while the deadline-aware continuous batcher interleaves chunks of
all of them — so the shallow p99 collapses from "sum of the stragglers"
to "a few shared device batches".

Both serving paths run the *same* deterministic mixed-depth workload
(:func:`repro.sched.workload.mixed_workload` — depths cycled
round-robin, seeds planted at seeded-random shell positions):

* **FIFO** — requests served start-to-finish in submission order on one
  vectorized engine, latency measured from the common arrival instant;
* **scheduled** — all requests admitted at once, served by the
  ``sched:`` engine's EDF lanes and fused batches.

The headline number is the shallow-class p99 ratio. Runs standalone for
CI (writes ``BENCH_scheduler.json``, exits 1 when the scheduler fails to
beat FIFO) and under pytest with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_scheduler.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.engines import build_engine
from repro.hashes.registry import get_hash
from repro.sched.workload import (
    mixed_workload,
    run_fifo,
    run_scheduled,
    summarize_latencies,
)

#: Acceptance-scale defaults: a mixed d=1..4 fleet. The budget is short
#: enough that d=4 cannot finish on one host device — the straggler
#: pressure the scheduler exists to absorb.
FULL_SCALE = {
    "requests": 16,
    "depths": (1, 2, 3, 4),
    "time_budget": 3.0,
    "batch_size": 16384,
}


def run_benchmark(
    hash_name: str = "sha1",
    requests: int = 16,
    depths: tuple[int, ...] = (1, 2, 3, 4),
    time_budget: float = 3.0,
    batch_size: int = 16384,
    seed: int = 0,
) -> dict:
    """Measure FIFO vs scheduled tail latency; return the record."""
    algo = get_hash(hash_name)
    workload = mixed_workload(
        algo, requests=requests, depths=depths, seed=seed
    )

    fifo_engine = build_engine(
        "batch", hash_name=hash_name, batch_size=batch_size, cache=True
    )
    fifo = summarize_latencies(run_fifo(fifo_engine, workload, time_budget))

    sched_engine = build_engine(
        "sched", hash_name=hash_name, batch_size=batch_size
    )
    try:
        sched = summarize_latencies(
            run_scheduled(sched_engine, workload, time_budget)
        )
        snapshot = sched_engine.scheduler.snapshot()
    finally:
        sched_engine.close()

    fifo_p99 = fifo["shallow"]["p99_seconds"]
    sched_p99 = sched["shallow"]["p99_seconds"]
    return {
        "config": {
            "hash_name": hash_name,
            "requests": requests,
            "depths": list(depths),
            "time_budget": time_budget,
            "batch_size": batch_size,
            "seed": seed,
        },
        "fifo": fifo,
        "scheduled": sched,
        "shallow_p99_fifo_seconds": fifo_p99,
        "shallow_p99_scheduled_seconds": sched_p99,
        "shallow_p99_speedup": fifo_p99 / sched_p99 if sched_p99 > 0 else None,
        "scheduler": {
            "batches": snapshot["batches"],
            "shared_batches": snapshot["shared_batches"],
            "shed": snapshot["shed"],
            "preempted": snapshot["preempted"],
            "peak_queue_depth": snapshot["peak_queue_depth"],
            "batches_by_lane": snapshot["batches_by_lane"],
        },
    }


def format_record(record: dict) -> str:
    config = record["config"]

    def row(label: str, stats: dict) -> str:
        if stats["count"] == 0:
            return f"    {label:<8} (no requests)"
        return (
            f"    {label:<8} n={stats['count']:<3} "
            f"p50={stats['p50_seconds']:.3f}s "
            f"p99={stats['p99_seconds']:.3f}s "
            f"found={stats['found']} timed_out={stats['timed_out']} "
            f"shed={stats['shed']}"
        )

    lines = [
        "Scheduler — shallow tail latency on a mixed-depth fleet",
        f"  {config['requests']} requests, depths {config['depths']}, "
        f"T={config['time_budget']}s, hash={config['hash_name']}, "
        f"bs={config['batch_size']}",
        "  FIFO (submission order, one device):",
        row("shallow", record["fifo"]["shallow"]),
        row("deep", record["fifo"]["deep"]),
        "  scheduled (continuous batching, EDF lanes):",
        row("shallow", record["scheduled"]["shallow"]),
        row("deep", record["scheduled"]["deep"]),
    ]
    sched = record["scheduler"]
    lines.append(
        f"  scheduler: batches={sched['batches']} "
        f"shared={sched['shared_batches']} shed={sched['shed']} "
        f"preempted={sched['preempted']} "
        f"peak_queue={sched['peak_queue_depth']}"
    )
    speedup = record["shallow_p99_speedup"]
    lines.append(
        f"  shallow p99: FIFO {record['shallow_p99_fifo_seconds']:.3f}s -> "
        f"scheduled {record['shallow_p99_scheduled_seconds']:.3f}s"
        + (f"  ({speedup:.1f}x)" if speedup is not None else "")
    )
    return "\n".join(lines)


def test_scheduler_beats_fifo_on_shallow_p99(report):
    """Reduced-scale pytest entry: the acceptance claim of the bench."""
    record = run_benchmark(
        requests=8, depths=(1, 2, 3), time_budget=2.0, batch_size=8192
    )
    report("scheduler", format_record(record))
    assert record["shallow_p99_scheduled_seconds"] <= (
        record["shallow_p99_fifo_seconds"]
    )
    # Every shallow request really completed (found its planted seed).
    assert (
        record["scheduled"]["shallow"]["found"]
        == record["scheduled"]["shallow"]["count"]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="FIFO vs scheduled shallow-request tail latency."
    )
    parser.add_argument("--hash", default="sha1", dest="hash_name")
    parser.add_argument(
        "--requests", type=int, default=FULL_SCALE["requests"]
    )
    parser.add_argument(
        "--depths", default=",".join(str(d) for d in FULL_SCALE["depths"]),
        help="comma-separated search depths, cycled over the fleet",
    )
    parser.add_argument(
        "--budget", type=float, default=FULL_SCALE["time_budget"],
        help="per-request time budget (protocol T)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=FULL_SCALE["batch_size"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_scheduler.json")
    )
    args = parser.parse_args(argv)

    record = run_benchmark(
        hash_name=args.hash_name,
        requests=args.requests,
        depths=tuple(int(d) for d in args.depths.split(",")),
        time_budget=args.budget,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    record["pass"] = (
        record["shallow_p99_scheduled_seconds"]
        <= record["shallow_p99_fifo_seconds"]
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print(
            "REGRESSION: scheduled shallow p99 "
            f"{record['shallow_p99_scheduled_seconds']:.3f}s exceeds FIFO "
            f"{record['shallow_p99_fifo_seconds']:.3f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
