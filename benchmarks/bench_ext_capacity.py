"""Extension — CA server capacity: the operational meaning of Table 5.

Converts each platform's search throughput into authentications per hour
under a realistic TAPKI-masked distance mix, with M/G/1 latency
estimates cross-checked by discrete-event simulation. This is the
"high-throughput" of the paper's title, quantified as a service level.
"""

import numpy as np
import pytest
from conftest import record_report

from repro.analysis.tables import format_table
from repro.analysis.workload import (
    ServerCapacityModel,
    WorkloadGenerator,
    service_time_distribution,
    simulate_queue,
)
from repro.devices import APUModel, CPUModel, GPUModel


def capacity_table(rng):
    generator = WorkloadGenerator(1.0, rng=rng)
    requests = generator.generate(800)
    rows = []
    capacities = {}
    for label, model in (
        ("GPU (A100)", GPUModel()),
        ("APU (Gemini)", APUModel()),
        ("CPU (64c)", CPUModel()),
    ):
        for hash_name in ("sha1", "sha3-256"):
            service = service_time_distribution(model, hash_name, requests)
            capacity = ServerCapacityModel(service)
            rate = capacity.max_stable_rate(0.8)
            estimate = capacity.estimate(rate)
            capacities[(label, hash_name)] = rate * 3600
            rows.append(
                [
                    label,
                    hash_name,
                    f"{capacity.mean:.3f}",
                    f"{rate * 3600:,.0f}",
                    f"{estimate.mean_response_seconds:.2f}",
                ]
            )
    return rows, capacities, requests


def test_capacity_reproduction(benchmark, report):
    rng = np.random.default_rng(79)
    rows, capacities, requests = benchmark.pedantic(
        lambda: capacity_table(rng), rounds=1, iterations=1
    )
    report(
        "ext_capacity",
        format_table(
            ["platform", "hash", "mean search (s)", "auths/hour @80% util",
             "mean response (s)"],
            rows,
            title="CA capacity under a TAPKI fleet mix (30% d=0 ... 6% d=5)",
        ),
    )
    # Operational orderings implied by Table 5.
    assert capacities[("GPU (A100)", "sha3-256")] > 5 * capacities[("CPU (64c)", "sha3-256")]
    assert capacities[("GPU (A100)", "sha1")] > capacities[("GPU (A100)", "sha3-256")]
    apu_gpu = capacities[("APU (Gemini)", "sha1")] / capacities[("GPU (A100)", "sha1")]
    assert 0.8 < apu_gpu < 1.25  # near-parity on SHA-1


def test_simulation_cross_checks_analytics(benchmark, report):
    rng = np.random.default_rng(83)
    gpu = GPUModel()
    generator = WorkloadGenerator(0.5, rng=rng)  # one auth every 2 s
    requests = generator.generate(1500)
    service = service_time_distribution(gpu, "sha3-256", requests)
    model = ServerCapacityModel(service)
    analytic = model.estimate(0.5)
    sim = benchmark.pedantic(
        lambda: simulate_queue(requests, service), rounds=1, iterations=1
    )
    record_report(
        "ext_capacity_simulation",
        f"GPU/SHA-3 CA at 0.5 auth/s (rho = {analytic.utilization:.2f}):\n"
        f"  M/G/1 mean wait {analytic.mean_wait_seconds:.2f} s vs "
        f"simulated {sim['mean_wait_seconds']:.2f} s "
        f"(p95 {sim['p95_wait_seconds']:.2f} s); "
        f"busy fraction {sim['busy_fraction']:.2f}",
    )
    assert analytic.stable
    assert sim["mean_wait_seconds"] == pytest.approx(
        analytic.mean_wait_seconds, rel=0.5
    )
