"""Experiment S3.2.2 — the fixed-padding SHA-3 optimization (~3%).

RBC only hashes 32-byte seeds, so the sponge's padded block is a
constant template. The paper measured ~3% end-to-end gain on the GPU.
We reproduce it twice: modeled (the calibrated factor) and measured
(real batched kernels with the generic byte-level padding path vs the
fixed template) — plus the same measurement for SHA-1/SHA-256, which the
paper applied on CPU and GPU alike.
"""

import time

import numpy as np
from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices import GPUModel
from repro.hashes.registry import get_hash

BATCH = 120_000


def _rate(algo, words, fixed: bool) -> float:
    start = time.perf_counter()
    algo.hash_seeds_batch(words, fixed_padding=fixed)
    return words.shape[0] / (time.perf_counter() - start)


def test_s322_modeled(benchmark, report):
    gpu = GPUModel()
    benchmark(lambda: gpu.search_time("sha3-256", 5, fixed_padding=False))
    fast = gpu.search_time("sha3-256", 5, fixed_padding=True)
    slow = gpu.search_time("sha3-256", 5, fixed_padding=False)
    report(
        "s322_padding_modeled",
        comparison_table(
            "Section 3.2.2 — fixed-padding gain, modeled GPU",
            [("generic/fixed time ratio", 1.03, slow / fast)],
        ),
    )
    assert abs(slow / fast - 1.03) < 0.01


def _stage_seconds(fn, words, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(words)
        best = min(best, time.perf_counter() - start)
    return best


def test_s322_measured_padding_stage(benchmark, report):
    """Real kernels, padding stage isolated.

    On this host the compression rounds dominate so completely that the
    end-to-end gain is below measurement noise (the paper's 3% is a GPU
    branch-divergence effect); the *stage* the optimization removes is
    still directly measurable: building the padded block generically
    costs a deterministic multiple of stamping the fixed template.
    """
    from repro.hashes.batch_sha1 import _padded_block_fixed, _padded_block_generic
    from repro.hashes.batch_sha3 import (
        _absorb_seed_block_fixed,
        _absorb_seed_block_generic,
    )

    rng = np.random.default_rng(31)
    words = rng.integers(0, 1 << 63, size=(BATCH, 4), dtype=np.int64).astype(np.uint64)
    benchmark(lambda: _padded_block_fixed(words[:1000]))

    rows = []
    ratios = {}
    for label, fixed_fn, generic_fn in (
        ("sha1/sha256 block", _padded_block_fixed, _padded_block_generic),
        ("sha3 sponge absorb", _absorb_seed_block_fixed, _absorb_seed_block_generic),
    ):
        fixed_s = _stage_seconds(fixed_fn, words)
        generic_s = _stage_seconds(generic_fn, words)
        ratios[label] = generic_s / fixed_s
        rows.append(
            [label, f"{fixed_s * 1e3:.1f}", f"{generic_s * 1e3:.1f}",
             f"{generic_s / fixed_s:.2f}x"]
        )
    record_report(
        "s322_padding_measured",
        format_table(
            ["stage", "fixed (ms)", "generic (ms)", "generic cost"],
            rows,
            title=f"Padding-stage cost, {BATCH:,} seeds, real kernels (this host)",
        )
        + "\npaper: ~3% end-to-end on the GPU; here the isolated stage shows "
        "the removed work directly.",
    )
    for label, ratio in ratios.items():
        assert ratio > 1.0, label


def test_s322_end_to_end_kernels(benchmark, report):
    """End-to-end kernel rates both ways (informational on this host)."""
    rng = np.random.default_rng(37)
    words = rng.integers(0, 1 << 63, size=(BATCH, 4), dtype=np.int64).astype(np.uint64)
    algo = get_hash("sha3-256")
    algo.hash_seeds_batch(words[:1000])  # warm-up
    fixed = _rate(algo, words, True)
    generic = _rate(algo, words, False)
    record_report(
        "s322_padding_end_to_end",
        f"sha3-256 end-to-end: fixed {fixed:,.0f} H/s, generic {generic:,.0f} H/s "
        f"(ratio {fixed / generic:.3f}; below noise on NumPy lanes — the 3% "
        "figure is specific to the GPU's execution model)",
    )
    benchmark(lambda: algo.hash_seeds_batch(words[:20000], fixed_padding=True))
