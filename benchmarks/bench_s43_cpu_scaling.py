"""Experiment S4.3 — CPU strong scaling (59x / 63x on 64 cores).

Modeled reproduction of the Section 4.3 speedups plus the Section 5
future-work cluster extrapolation, and a real multiprocessing scaling
measurement on this host's cores.
"""

import multiprocessing
import time

import numpy as np
from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices import CPUModel

PAPER_SPEEDUPS = {"sha1": 59.0, "sha3-256": 63.0}


def modeled_speedups():
    cpu = CPUModel()
    return {h: cpu.speedup(h, 64) for h in PAPER_SPEEDUPS}


def test_s43_speedup_reproduction(benchmark, report):
    ours = benchmark(modeled_speedups)
    report(
        "s43_cpu_scaling",
        comparison_table(
            "Section 4.3 — speedup on 64 CPU cores (exhaustive d=5)",
            [(h, PAPER_SPEEDUPS[h], ours[h]) for h in PAPER_SPEEDUPS],
        ),
    )
    for h, paper in PAPER_SPEEDUPS.items():
        assert abs(ours[h] - paper) / paper < 0.02


def test_s43_scaling_curve(benchmark, report):
    cpu = CPUModel()
    benchmark(lambda: cpu.speedup("sha1", 64))
    rows = []
    for p in (1, 2, 4, 8, 16, 32, 64):
        rows.append(
            [p]
            + [f"{cpu.speedup(h, p):.1f}x" for h in ("sha1", "sha3-256")]
        )
    record_report(
        "s43_scaling_curve",
        format_table(
            ["cores", "sha1 speedup", "sha3 speedup"],
            rows,
            title="Modeled strong-scaling curve (EPYC 7542 x2)",
        ),
    )
    # Near-perfect parallel efficiency at 64 cores, as the paper reports.
    assert cpu.speedup("sha3-256", 64) / 64 > 0.95


def test_s5_cluster_future_work(benchmark, report):
    """Section 5: scale the CPU engine across nodes until SHA-3 meets T."""
    cpu = CPUModel()
    benchmark(lambda: cpu.cluster_time("sha3-256", 5, nodes=4))
    rows = []
    first_ok = None
    for nodes in (1, 2, 3, 4, 8):
        t = cpu.cluster_time("sha3-256", 5, nodes=nodes)
        ok = t <= 20.0
        if ok and first_ok is None:
            first_ok = nodes
        rows.append([nodes, f"{t:.2f}", "yes" if ok else "no"])
    record_report(
        "s5_cluster_extrapolation",
        format_table(
            ["nodes (64 cores each)", "search (s)", "meets T=20?"],
            rows,
            title="Future work — multi-node CPU cluster, SHA-3 exhaustive d=5",
        ),
    )
    assert first_ok is not None and first_ok <= 4


def test_real_host_scaling(benchmark, report):
    """Actual multiprocessing speedup on this machine (reduced scale)."""
    from repro.hashes.sha1 import sha1
    from repro.engines import build_engine

    rng = np.random.default_rng(17)
    base = rng.bytes(32)
    absent = sha1(rng.bytes(32))  # force full d=2 exhaustion
    benchmark(lambda: sha1(base))

    available = multiprocessing.cpu_count()
    counts = sorted({1, 2, min(4, available)})
    times = {}
    for workers in counts:
        executor = build_engine(f"parallel:sha1,w={workers},bs=4096")
        start = time.perf_counter()
        executor.search(base, absent, 2)
        times[workers] = time.perf_counter() - start
    rows = [
        [w, f"{times[w]:.2f}", f"{times[1] / times[w]:.2f}x",
         f"{times[1] / times[w] / w:.0%}"]
        for w in counts
    ]
    record_report(
        "s43_real_host_scaling",
        format_table(
            ["workers", "seconds", "speedup", "efficiency"],
            rows,
            title=f"Real scaling on this host ({available} cpus), exhaustive d=2",
        ),
    )
