"""Experiment S4.4 — seeds iterated between early-exit flag checks.

The paper swept the check interval from 1 to 64 seeds on the GPU and
found no performance impact, so it checks after every seed. The
vectorized analogue of the check interval is the executor's batch size
(one flag/match check per kernel batch); we sweep it on a real search
and reproduce the flatness, plus the average-case latency effect that
*would* appear with absurdly coarse checking.
"""

import time

import numpy as np
from conftest import record_report

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.hashes.sha1 import sha1
from repro.engines import build_engine


def test_s44_check_interval_sweep(benchmark, report):
    """Throughput vs batch size (the check granularity) on a real search."""
    rng = np.random.default_rng(23)
    base = rng.bytes(32)
    absent = sha1(rng.bytes(32))
    benchmark(lambda: sha1(base))

    rows = []
    throughputs = {}
    for batch in (1024, 4096, 16384, 32768):
        executor = build_engine(f"batch:sha1,bs={batch}")
        start = time.perf_counter()
        result = executor.search(base, absent, 2)
        elapsed = time.perf_counter() - start
        throughput = result.seeds_hashed / elapsed
        throughputs[batch] = throughput
        rows.append([batch, f"{elapsed:.2f}", f"{throughput:,.0f}"])
    record_report(
        "s44_flagcheck_sweep",
        format_table(
            ["seeds per check (batch)", "seconds", "seeds/s"],
            rows,
            title="Section 4.4 — exit-check granularity sweep (real, d=2)",
        )
        + "\npaper: 'increasing the iterations did not have any performance "
        "impact' — large batches here agree (vector overhead dominates "
        "below ~4k).",
    )
    # Flat beyond the vectorization knee: 4k -> 32k within 25%.
    assert throughputs[32768] / throughputs[4096] > 0.75


def test_s44_average_case_latency_effect(benchmark):
    """Coarse checking delays early exit: seeds_hashed grows with batch.

    benchmark datum: the d=2 average-case search at the paper's effective
    granularity (small batch) — the quantity the flag exists to minimize.
    """
    rng = np.random.default_rng(29)
    base = rng.bytes(32)
    client = flip_bits(base, [3, 4])  # early in lexicographic order
    digest = sha1(client)

    fine = build_engine("batch:sha1,bs=257")
    coarse = build_engine("batch:sha1,bs=32768")
    fine_result = fine.search(base, digest, 2)
    coarse_result = coarse.search(base, digest, 2)
    assert fine_result.found and coarse_result.found
    # The coarse engine hashes more seeds before noticing the match.
    assert coarse_result.seeds_hashed >= fine_result.seeds_hashed

    benchmark(lambda: fine.search(base, digest, 2))
