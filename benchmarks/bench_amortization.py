"""Amortized-pipeline benchmark — cold vs. warm search throughput.

The serving claim behind the amortized pipeline: per-search costs that
do not depend on the seed (combination unranking, mask building, worker
spawn) should be paid once, not per request. This bench measures exactly
that boundary on the ``pool:`` engine:

* **cold** — the first search on a fresh engine: pays worker-pool spawn
  plus mask-plan building for every shell slice;
* **warm** — the steady state the CA serves from: plans hit the cache,
  the pool is already running, per-candidate work is XOR + hash +
  compare.

The client seed is planted at rank 0 of the deepest shell, so every
search runs the same deterministic workload (all shallower shells
exhausted, one kernel batch at the deepest) — the paper's "found at
distance d" request shape. The fork-per-call ``parallel:`` engine is
measured once as the pre-amortization baseline.

Runs standalone for CI (writes ``BENCH_amortization.json``, exits 1 on
regression) and under pytest with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_amortization.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro._bitutils import flip_bits
from repro.engines import build_engine, engine_target
from repro.runtime.maskplan import MaskPlanCache
from repro.runtime.pool import PooledSearchExecutor, default_worker_count

BASE_SEED = bytes(range(7, 39))

#: Acceptance-scale defaults (the paper's SHA-3 engine at d <= 3).
FULL_SCALE = {"max_distance": 3, "batch_size": 16384, "warm_searches": 5}


def run_benchmark(
    hash_name: str = "sha3-256",
    max_distance: int = 3,
    batch_size: int = 16384,
    workers: int | None = None,
    warm_searches: int = 5,
    include_parallel_baseline: bool = True,
) -> dict:
    """Measure cold / warm / fork-per-call throughput; return the record."""
    workers = workers if workers is not None else default_worker_count()
    # Rank 0 of the deepest shell: bits {0, .., d-1} flipped.
    client_seed = flip_bits(BASE_SEED, list(range(max_distance)))

    # Private cache sized so even the deepest shell slices plan in.
    plan_cache = MaskPlanCache(
        max_bytes=512 * 1024 * 1024, max_plan_bytes=256 * 1024 * 1024
    )
    engine = PooledSearchExecutor(
        hash_name,
        workers=workers,
        batch_size=batch_size,
        plan_cache=plan_cache,
    )
    target = engine_target(engine, client_seed)
    try:
        start = time.perf_counter()
        cold = engine.search(BASE_SEED, target, max_distance)
        cold_seconds = time.perf_counter() - start
        assert cold.found and cold.seed == client_seed, "cold search failed"

        warm_hashed = 0
        warm_seconds = 0.0
        last = cold
        for _ in range(warm_searches):
            start = time.perf_counter()
            last = engine.search(BASE_SEED, target, max_distance)
            warm_seconds += time.perf_counter() - start
            assert last.found and last.seed == client_seed, "warm search failed"
            warm_hashed += last.seeds_hashed
        amortized = last.amortized
    finally:
        engine.close()
        plan_cache.clear()

    parallel_hps = None
    if include_parallel_baseline:
        baseline = build_engine(
            "parallel",
            hash_name=hash_name,
            workers=workers,
            batch_size=batch_size,
        )
        start = time.perf_counter()
        result = baseline.search(BASE_SEED, target, max_distance)
        baseline_seconds = time.perf_counter() - start
        assert result.found, "parallel baseline failed"
        parallel_hps = result.seeds_hashed / baseline_seconds

    cold_hps = cold.seeds_hashed / cold_seconds
    warm_hps = warm_hashed / warm_seconds
    return {
        "config": {
            "hash_name": hash_name,
            "max_distance": max_distance,
            "batch_size": batch_size,
            "workers": workers,
            "warm_searches": warm_searches,
        },
        "cold_seconds": cold_seconds,
        "cold_hashes_per_second": cold_hps,
        "warm_seconds_mean": warm_seconds / warm_searches,
        "warm_hashes_per_second": warm_hps,
        "warm_over_cold": warm_hps / cold_hps,
        "parallel_hashes_per_second": parallel_hps,
        "amortized": {
            "plan_hits": amortized.plan_hits,
            "plan_misses": amortized.plan_misses,
            "plan_bytes": amortized.plan_bytes,
            "pool_searches": amortized.pool_searches,
            "pool_reused": amortized.pool_reused,
            "workers_spawned": amortized.workers_spawned,
        },
    }


def format_record(record: dict) -> str:
    config = record["config"]
    lines = [
        "Amortized pipeline — cold vs. warm search throughput",
        f"  engine: pool:{config['hash_name']},workers={config['workers']},"
        f"bs={config['batch_size']}  (d <= {config['max_distance']})",
        f"  cold (spawn + plan build): "
        f"{record['cold_hashes_per_second']:>12,.0f} H/s "
        f"({record['cold_seconds']:.3f}s)",
        f"  warm (steady state, n={config['warm_searches']}): "
        f"{record['warm_hashes_per_second']:>12,.0f} H/s "
        f"({record['warm_seconds_mean']:.3f}s/search)",
        f"  warm / cold: {record['warm_over_cold']:.2f}x",
    ]
    if record["parallel_hashes_per_second"] is not None:
        lines.append(
            f"  fork-per-call parallel baseline: "
            f"{record['parallel_hashes_per_second']:>12,.0f} H/s"
        )
    stats = record["amortized"]
    lines.append(
        f"  last search: plan_hits={stats['plan_hits']} "
        f"plan_misses={stats['plan_misses']} "
        f"plan_bytes={stats['plan_bytes']:,} "
        f"workers_spawned={stats['workers_spawned']}"
    )
    return "\n".join(lines)


def test_amortization_warm_beats_cold(report):
    """Reduced-scale pytest entry: warm must be at least as fast as cold."""
    record = run_benchmark(
        max_distance=2, batch_size=8192, warm_searches=3,
        include_parallel_baseline=False,
    )
    report("amortization", format_record(record))
    assert record["warm_hashes_per_second"] >= record["cold_hashes_per_second"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold vs. warm amortized-search throughput."
    )
    parser.add_argument("--hash", default="sha3-256", dest="hash_name")
    parser.add_argument(
        "--max-distance", type=int, default=FULL_SCALE["max_distance"]
    )
    parser.add_argument(
        "--batch-size", type=int, default=FULL_SCALE["batch_size"]
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="default: the process's CPU affinity count",
    )
    parser.add_argument(
        "--searches", type=int, default=FULL_SCALE["warm_searches"],
        help="number of warm searches to average",
    )
    parser.add_argument(
        "--no-parallel-baseline", action="store_true",
        help="skip the fork-per-call reference measurement",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=1.0,
        help="fail (exit 1) if warm/cold falls below this",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_amortization.json")
    )
    args = parser.parse_args(argv)

    record = run_benchmark(
        hash_name=args.hash_name,
        max_distance=args.max_distance,
        batch_size=args.batch_size,
        workers=args.workers,
        warm_searches=args.searches,
        include_parallel_baseline=not args.no_parallel_baseline,
    )
    record["min_ratio"] = args.min_ratio
    record["pass"] = record["warm_over_cold"] >= args.min_ratio
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print(
            f"REGRESSION: warm/cold {record['warm_over_cold']:.2f}x "
            f"< required {args.min_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
