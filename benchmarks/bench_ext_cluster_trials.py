"""Extensions — distributed cluster engine (§5 future work) and the
1,200-trial average-case methodology (§4.1).
"""

import numpy as np
from conftest import comparison_table, record_report

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.analysis.trials import run_device_trials, run_search_trials
from repro.devices import APUModel, CPUModel, GPUModel
from repro.hashes.sha1 import sha1
from repro.engines import build_engine


def test_cluster_engine_real_runs(benchmark, report):
    """The distributed engine really splits and searches (d=2 scale)."""
    rng = np.random.default_rng(47)
    base = rng.bytes(32)
    absent = sha1(rng.bytes(32))

    rows = []
    for ranks in (1, 2, 4, 8):
        cluster = build_engine(f"cluster:{ranks},hash=sha1,bs=4096")
        result = cluster.search(base, absent, 2)
        assert not result.found
        slowest = max(result.per_rank_seconds)
        rows.append(
            [ranks, f"{slowest:.3f}", f"{result.wall_seconds:.3f}",
             f"{result.seeds_hashed_total:,}"]
        )
    report(
        "ext_cluster_real",
        format_table(
            ["ranks", "slowest rank (s)", "modeled wall (s)", "total seeds"],
            rows,
            title="Distributed SALTED search, real rank slices (exhaustive d=2)",
        )
        + "\n(per-rank work shrinks ~1/ranks; wall = slowest rank + fabric)",
    )

    benchmark(
        lambda: build_engine("cluster:2,hash=sha1,bs=8192").search(
            base, absent, 1
        )
    )


def test_cluster_early_exit_propagates(benchmark, report):
    rng = np.random.default_rng(53)
    base = rng.bytes(32)
    client = flip_bits(base, [40, 222])
    digest = sha1(client)

    cluster = build_engine("cluster:4,hash=sha1,bs=4096")
    result = benchmark(cluster.search, base, digest, 2)
    assert result.found and result.seed == client
    record_report(
        "ext_cluster_early_exit",
        f"4-rank cluster, planted d=2 seed: finder rank {result.finder_rank}, "
        f"wall {result.wall_seconds:.3f} s; non-finders drain one batch + "
        "flag propagation (the distributed analogue of the paper's "
        "unified-memory exit flag).",
    )


def test_trials_methodology_paper_scale(benchmark, report):
    """The paper's 1,200-trial averaging against all three device models."""
    rng = np.random.default_rng(59)

    rows = []
    paper_avgs = {
        ("gpu", "sha1"): 0.85, ("gpu", "sha3-256"): 2.42,
        ("apu", "sha1"): 0.83, ("apu", "sha3-256"): 7.05,
        ("cpu", "sha1"): 6.04, ("cpu", "sha3-256"): 30.52,
    }
    models = {"gpu": GPUModel(), "apu": APUModel(), "cpu": CPUModel()}

    def run_all():
        out = {}
        for (platform, hash_name), _paper in paper_avgs.items():
            out[(platform, hash_name)] = run_device_trials(
                models[platform], hash_name, distance=5, trials=1200, rng=rng
            )
        return out

    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    comparisons = []
    for key, paper in paper_avgs.items():
        # Modeled trial means exclude the per-search exit overhead the
        # calibrated "average" mode adds; compare against the work term.
        comparisons.append(
            (f"{key[0]}/{key[1]} mean trial (s)", paper, stats[key].mean_seconds)
        )
        rows.append([key[0], key[1], stats[key].summary()])
    record_report(
        "ext_trials_paper_scale",
        comparison_table(
            "1,200-trial average-case means vs Table 5 average rows",
            comparisons,
        ),
    )
    for key, paper in paper_avgs.items():
        # Within 12%: trial means lack the modeled exit overhead.
        assert abs(stats[key].mean_seconds - paper) / paper < 0.12, key


def test_trials_real_executor(benchmark, report):
    """Reduced-scale real trials: empirical mean vs Equation 3."""
    rng = np.random.default_rng(61)
    executor = build_engine("batch:sha1,bs=129")
    stats = benchmark.pedantic(
        lambda: run_search_trials(executor, sha1, distance=1, trials=80, rng=rng),
        rounds=1,
        iterations=1,
    )
    record_report(
        "ext_trials_real",
        "Real-executor stochastic trials (reduced scale):\n  " + stats.summary(),
    )
    assert 0.6 < stats.mean_vs_analytic < 1.5
