"""Fleet benchmark — multi-device scaling and hedged-straggler p99.

Two claims behind :mod:`repro.fleet`, measured on the real kernel:

* **Scaling** — adding a second modeled host device to the fleet does
  not regress throughput on a mixed planted workload (and usually
  improves it: the NumPy kernels release the GIL for the hash lanes, so
  two device loops overlap). The gate is deliberately loose
  (``ratio >= 0.9``) because a pure-Python dispatch layer under the GIL
  cannot promise linear scaling — the hard gates are the protocol ones:
  zero lost requests and zero false authentications, re-verified by
  re-hashing every found seed.

* **Hedging** — on a fleet with one throttled straggler device
  (``slow-host``), duplicating its overdue batches onto the idle fast
  device (first result wins) cuts the straggler-class p99 latency. The
  same workload runs with hedging disabled and enabled; the gate is
  ``hedged p99 <= unhedged p99`` with at least one hedge launched.

Runs standalone for CI (writes ``BENCH_fleet.json``, exits 1 on a lost
request, a false authentication, or a hedging regression) and under
pytest with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_fleet.py --help
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro.analysis.metrics import percentile
from repro.fleet import FleetSearchEngine
from repro.hashes.registry import get_hash
from repro.sched.errors import RequestShed
from repro.sched.workload import mixed_workload

FULL_SCALE = {
    "requests": 12,
    "depths": (1, 2, 2),
    "straggler_requests": 4,
    "batch_size": 8192,
}


def _run_workload(
    devices: tuple[str, ...],
    workload,
    algo,
    hash_name: str,
    batch_size: int,
    **engine_kwargs,
) -> dict:
    """Serve one workload through a fleet; return latencies + invariants."""
    engine = FleetSearchEngine(
        *devices, hash_name=hash_name, batch_size=batch_size, **engine_kwargs
    )
    latencies: list[float] = []
    lost = false_auths = shed = found = 0
    start = time.perf_counter()
    try:
        tickets = [
            (
                request,
                engine.submit(
                    request.base_seed,
                    request.target_digest,
                    request.max_distance,
                    client_id=request.client_id,
                ),
            )
            for request in workload
        ]
        for request, ticket in tickets:
            try:
                result = ticket.result(timeout=300.0)
            except RequestShed:
                shed += 1
                continue
            except TimeoutError:
                lost += 1
                continue
            latencies.append(time.perf_counter() - start)
            if result.found:
                found += 1
                if algo.hash_seed(result.seed) != request.target_digest:
                    false_auths += 1
        wall = time.perf_counter() - start
        snapshot = engine.scheduler.snapshot()
    finally:
        engine.close(drain=False)
    return {
        "devices": list(devices),
        "wall_seconds": wall,
        "resolved": len(latencies) + shed,
        "found": found,
        "shed": shed,
        "lost": lost,
        "false_authentications": false_auths,
        "p50_seconds": percentile(latencies, 50) if latencies else None,
        "p99_seconds": percentile(latencies, 99) if latencies else None,
        "throughput_rps": len(latencies) / wall if wall > 0 else 0.0,
        "hedges_launched": snapshot["hedges_launched"],
        "hedge_wins": snapshot["hedge_wins"],
        "redispatched_chunks": snapshot["redispatched_chunks"],
    }


def run_benchmark(
    hash_name: str = "sha1",
    requests: int = 12,
    depths: tuple[int, ...] = (1, 2, 2),
    straggler_requests: int = 4,
    batch_size: int = 8192,
    seed: int = 0,
    slow_factor: float = 30.0,
) -> dict:
    """Measure scaling + hedging; return the record."""
    algo = get_hash(hash_name)

    # -- scaling: the same planted workload on one device, then two --
    workload = mixed_workload(
        algo, requests=requests, depths=depths, seed=seed
    )
    single = _run_workload(
        ("host",), workload, algo, hash_name, batch_size
    )
    dual = _run_workload(
        ("host", "host"), workload, algo, hash_name, batch_size
    )
    scaling_ratio = (
        dual["throughput_rps"] / single["throughput_rps"]
        if single["throughput_rps"] > 0
        else None
    )

    # -- hedging: absent targets straggle on a throttled device --
    # Absent targets: the full d=2 shell must be swept, so per-request
    # latency is the straggler story, not where the seed was planted.
    absent = algo.hash_seed(b"\xa5" * 32)
    straggler_workload = [
        dataclasses.replace(request, target_digest=absent)
        for request in mixed_workload(
            algo, requests=straggler_requests, depths=(2,), seed=seed + 1
        )
    ]
    unhedged = _run_workload(
        ("host", "slow-host"),
        straggler_workload,
        algo,
        hash_name,
        batch_size,
        slow_factor=slow_factor,
        hedge_factor=0.0,  # disables hedging
    )
    hedged = _run_workload(
        ("host", "slow-host"),
        straggler_workload,
        algo,
        hash_name,
        batch_size,
        slow_factor=slow_factor,
        hedge_factor=1.0,
        hedge_min_seconds=0.02,
    )

    record = {
        "config": {
            "hash_name": hash_name,
            "requests": requests,
            "depths": list(depths),
            "straggler_requests": straggler_requests,
            "batch_size": batch_size,
            "seed": seed,
            "slow_factor": slow_factor,
        },
        "single_device": single,
        "dual_device": dual,
        "scaling_ratio": scaling_ratio,
        "unhedged": unhedged,
        "hedged": hedged,
    }
    record["lost_requests"] = sum(
        section["lost"]
        for section in (single, dual, unhedged, hedged)
    )
    record["false_authentications"] = sum(
        section["false_authentications"]
        for section in (single, dual, unhedged, hedged)
    )
    record["pass"] = (
        record["lost_requests"] == 0
        and record["false_authentications"] == 0
        and scaling_ratio is not None
        and scaling_ratio >= 0.9
        and hedged["hedges_launched"] > 0
        and hedged["p99_seconds"] <= unhedged["p99_seconds"]
    )
    return record


def format_record(record: dict) -> str:
    config = record["config"]

    def row(label: str, section: dict) -> str:
        p99 = section["p99_seconds"]
        p99_text = f"{p99:.3f}s" if p99 is not None else "n/a"
        return (
            f"    {label:<10} devices={','.join(section['devices']):<16} "
            f"wall={section['wall_seconds']:.2f}s p99={p99_text} "
            f"found={section['found']} shed={section['shed']} "
            f"lost={section['lost']} false={section['false_authentications']} "
            f"hedges={section['hedges_launched']}"
        )

    lines = [
        "Fleet — multi-device scaling and hedged-straggler p99",
        f"  {config['requests']} requests, depths {config['depths']}, "
        f"hash={config['hash_name']}, bs={config['batch_size']}",
        "  scaling (same planted workload):",
        row("1 device", record["single_device"]),
        row("2 devices", record["dual_device"]),
        f"    throughput ratio (2 dev / 1 dev): "
        f"{record['scaling_ratio']:.2f}x",
        f"  hedging ({config['straggler_requests']} exhaustive d=2 sweeps "
        f"on host + slow-host, x{config['slow_factor']:g} throttle):",
        row("unhedged", record["unhedged"]),
        row("hedged", record["hedged"]),
        f"    straggler p99: {record['unhedged']['p99_seconds']:.3f}s -> "
        f"{record['hedged']['p99_seconds']:.3f}s "
        f"({record['hedged']['hedges_launched']} hedges, "
        f"{record['hedged']['hedge_wins']} wins)",
        f"  lost={record['lost_requests']} "
        f"false_auths={record['false_authentications']} "
        f"verdict: {'PASS' if record['pass'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def test_fleet_scales_and_hedging_cuts_straggler_p99(report):
    """Reduced-scale pytest entry: the acceptance claims of the bench."""
    record = run_benchmark(
        requests=6, depths=(1, 2), straggler_requests=2, batch_size=4096
    )
    report("fleet", format_record(record))
    assert record["lost_requests"] == 0
    assert record["false_authentications"] == 0
    assert record["scaling_ratio"] >= 0.8  # looser at reduced scale
    assert record["hedged"]["hedges_launched"] > 0
    # Small margin at reduced scale: two requests, so p99 == max.
    assert record["hedged"]["p99_seconds"] <= (
        record["unhedged"]["p99_seconds"] * 1.2
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fleet scaling and hedged-straggler tail latency."
    )
    parser.add_argument("--hash", default="sha1", dest="hash_name")
    parser.add_argument(
        "--requests", type=int, default=FULL_SCALE["requests"]
    )
    parser.add_argument(
        "--depths", default=",".join(str(d) for d in FULL_SCALE["depths"])
    )
    parser.add_argument(
        "--straggler-requests", type=int,
        default=FULL_SCALE["straggler_requests"], dest="straggler_requests",
    )
    parser.add_argument(
        "--batch-size", type=int, default=FULL_SCALE["batch_size"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slow-factor", type=float, default=30.0,
                        dest="slow_factor")
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_fleet.json")
    )
    args = parser.parse_args(argv)

    record = run_benchmark(
        hash_name=args.hash_name,
        requests=args.requests,
        depths=tuple(int(d) for d in args.depths.split(",")),
        straggler_requests=args.straggler_requests,
        batch_size=args.batch_size,
        seed=args.seed,
        slow_factor=args.slow_factor,
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print(
            "REGRESSION: fleet gates failed "
            f"(lost={record['lost_requests']}, "
            f"false={record['false_authentications']}, "
            f"scaling={record['scaling_ratio']}, "
            f"hedges={record['hedged']['hedges_launched']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
