"""Experiment T5 — Table 5: end-to-end response times, all platforms.

Regenerates every row of Table 5 from the device models plus the
communication model, and cross-checks the qualitative findings (speedup
ratios between platforms) the paper derives from the table. A real
reduced-scale end-to-end run over the latency-modeled transport verifies
the 0.90 s communication figure with the actual protocol messages.
"""

import numpy as np
from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices import APUModel, COMM_TIME_SECONDS, CPUModel, GPUModel

#: (algorithm, hash, mode) -> (comm, search, total) from the paper.
PAPER_TABLE_5 = {
    ("gpu", "sha1", "exhaustive"): (0.90, 1.56, 2.46),
    ("apu", "sha1", "exhaustive"): (0.90, 1.62, 2.52),
    ("cpu", "sha1", "exhaustive"): (0.90, 12.09, 12.99),
    ("gpu", "sha1", "average"): (0.90, 0.85, 1.75),
    ("apu", "sha1", "average"): (0.90, 0.83, 1.73),
    ("cpu", "sha1", "average"): (0.90, 6.04, 6.94),
    ("gpu", "sha3-256", "exhaustive"): (0.90, 4.67, 5.57),
    ("apu", "sha3-256", "exhaustive"): (0.90, 13.95, 14.85),
    ("cpu", "sha3-256", "exhaustive"): (0.90, 60.68, 61.58),
    ("gpu", "sha3-256", "average"): (0.90, 2.42, 3.32),
    ("apu", "sha3-256", "average"): (0.90, 7.05, 7.95),
    ("cpu", "sha3-256", "average"): (0.90, 30.52, 31.42),
}


def reproduce_table5():
    models = {"gpu": GPUModel(), "apu": APUModel(), "cpu": CPUModel()}
    out = {}
    for (platform, hash_name, mode), _paper in PAPER_TABLE_5.items():
        search = models[platform].search_time(hash_name, 5, mode)
        out[(platform, hash_name, mode)] = (
            COMM_TIME_SECONDS,
            search,
            COMM_TIME_SECONDS + search,
        )
    return out


def test_table5_reproduction(benchmark, report):
    ours = benchmark(reproduce_table5)
    comparisons = []
    for key, (p_comm, p_search, p_total) in PAPER_TABLE_5.items():
        platform, hash_name, mode = key
        label = f"{platform}/{hash_name}/{mode[:4]}"
        comparisons.append((f"{label} search", p_search, ours[key][1]))
    report(
        "table5_end_to_end",
        comparison_table("Table 5 — end-to-end response time (s), d=5", comparisons),
    )
    for key, (p_comm, p_search, _p_total) in PAPER_TABLE_5.items():
        assert abs(ours[key][1] - p_search) / p_search < 0.05, key


def test_table5_derived_findings(benchmark, report):
    """Section 4.6's speedup claims derived from the table.

    Reproduction note: the paper's SHA-1 ratios only reconcile with its
    own Table 5 when computed on *total* (comm + search) time, while the
    SHA-3 ratios reconcile on *search-only* time (e.g. 0.99 = 1.73/1.75
    total; 12.61 = 30.52/2.42 search-only). We follow each claim's own
    arithmetic. The 5.54x SHA-1 CPU figure does not reconcile either way
    (Table 5 gives 12.99/2.46 = 5.28x total); we compare against 5.28.
    """

    def total(model, h, mode="exhaustive"):
        return COMM_TIME_SECONDS + model.search_time(h, 5, mode)

    gpu, apu, cpu = GPUModel(), APUModel(), CPUModel()
    benchmark(lambda: total(gpu, "sha3-256"))
    checks = [
        ("GPU vs APU, SHA-1 exh (total)", 1.02,
         total(apu, "sha1") / total(gpu, "sha1")),
        ("GPU vs APU, SHA-1 avg (total)", 0.99,
         total(apu, "sha1", "average") / total(gpu, "sha1", "average")),
        ("GPU vs CPU, SHA-1 exh (total)", 5.28,
         total(cpu, "sha1") / total(gpu, "sha1")),
        ("GPU vs CPU, SHA-1 avg (total)", 3.97,
         total(cpu, "sha1", "average") / total(gpu, "sha1", "average")),
        ("GPU vs APU, SHA-3 exh (search)", 2.99,
         apu.search_time("sha3-256", 5) / gpu.search_time("sha3-256", 5)),
        ("GPU vs APU, SHA-3 avg (search)", 2.91,
         apu.search_time("sha3-256", 5, "average") / gpu.search_time("sha3-256", 5, "average")),
        ("GPU vs CPU, SHA-3 exh (search)", 13.06,
         cpu.search_time("sha3-256", 5) / gpu.search_time("sha3-256", 5)),
        ("GPU vs CPU, SHA-3 avg (search)", 12.61,
         cpu.search_time("sha3-256", 5, "average") / gpu.search_time("sha3-256", 5, "average")),
    ]
    record_report(
        "table5_speedup_findings",
        comparison_table("Section 4.6 — cross-platform speedup factors", checks),
    )
    for name, paper, ours in checks:
        assert abs(ours - paper) / paper < 0.12, name


def test_real_communication_cost(benchmark, report):
    """The 0.90 s comm figure, measured with actual protocol messages."""
    from repro import quick_setup
    from repro.net import CAServer, InProcessTransport, NetworkClient, US_LINK

    authority, client, mask = quick_setup(seed=55, noise_target_distance=1)
    benchmark(lambda: US_LINK.message_cost(256))
    transport = InProcessTransport(latency=US_LINK)
    result = NetworkClient(client, transport, reference_mask=mask).authenticate(
        CAServer(authority)
    )
    assert result.authenticated
    breakdown = format_table(
        ["message", "bytes", "seconds"],
        [[label, size, f"{cost:.3f}"] for label, size, cost in transport.log],
        title="Communication breakdown of one real authentication round",
    )
    record_report(
        "table5_comm_breakdown",
        breakdown + f"\ntotal: {transport.elapsed_seconds:.3f} s (paper: 0.90 s)",
    )
    assert abs(transport.elapsed_seconds - 0.90) < 0.05
