"""Tenancy benchmark — noisy-neighbor isolation under per-tenant quotas.

The serving claim behind :mod:`repro.tenancy`: an in-quota tenant's tail
latency survives a neighbor slamming the same CA far past its admission
budget, because the neighbor's excess is refused at the front door with
a typed ``tenant_quota`` shed instead of queueing ahead of everyone
else. Three phases over the same planted two-tenant fleet
(:func:`repro.tenancy.workload.run_noisy_neighbor`):

* **baseline** — the victim tenant alone;
* **storm** — the aggressor fleet arrives in one burst at ~20x its token
  bucket, quotas enforced;
* **unprotected** — the identical storm with the quota removed (the
  damage the bucket exists to prevent; report-only, not gated).

Gates (:func:`repro.tenancy.workload.evaluate_gates`): the victim is
never shed and keeps authenticating, every aggressor rejection is typed
``tenant_quota``, and the victim's p99 stays within 25% of its baseline
(plus a small absolute allowance for CI clock noise). Runs standalone
for CI (writes ``BENCH_tenancy.json``, exits 1 on any gate failure) and
under pytest with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.tenancy.workload import (
    AGGRESSOR_TENANT,
    VICTIM_TENANT,
    evaluate_gates,
    run_noisy_neighbor,
)

#: Acceptance-scale defaults (also the workload's own): an 8-client
#: victim fleet against a 20-request aggressor burst on a 1-token/s
#: bucket.
FULL_SCALE = {
    "victims": 8,
    "aggressors": 20,
    "aggressor_rate": 1.0,
    "aggressor_burst": 1.0,
    "workers": 2,
}


def format_record(record: dict) -> str:
    config = record["config"]

    def row(phase: str, tenant: str) -> str:
        stats = record[phase].get(tenant)
        if stats is None:
            return f"    {phase:<12} {tenant:<10} (absent)"
        tail = (
            f"p50={stats['p50_seconds']:.3f}s p99={stats['p99_seconds']:.3f}s"
            if stats["served"]
            else "(nothing served)"
        )
        return (
            f"    {phase:<12} {tenant:<10} n={stats['count']:<3} "
            f"served={stats['served']:<3} shed={stats['shed']:<3} {tail}"
        )

    lines = [
        "Tenancy — noisy-neighbor isolation under per-tenant quotas",
        f"  {config['victims']} victim + {config['aggressors']} aggressor "
        f"requests, aggressor bucket {config['aggressor_rate']}/s "
        f"burst={config['aggressor_burst']}, workers={config['workers']}, "
        f"hash={config['hash_name']}",
        row("baseline", VICTIM_TENANT),
        row("storm", VICTIM_TENANT),
        row("storm", AGGRESSOR_TENANT),
        row("unprotected", VICTIM_TENANT),
        f"  aggressor: {record['aggressor_admitted']} admitted, "
        f"{record['aggressor_shed']} shed {record['aggressor_shed_reasons']}",
        f"  victim p99: baseline {record['victim_p99_baseline_seconds']:.3f}s"
        f" -> storm {record['victim_p99_storm_seconds']:.3f}s"
        + (
            f"  ({record['victim_p99_ratio']:.2f}x)"
            if record["victim_p99_ratio"] is not None
            else ""
        )
        + f"; unprotected {record['victim_p99_unprotected_seconds']:.3f}s",
    ]
    return "\n".join(lines)


def test_quotas_isolate_the_victim_tenant(report):
    """Pytest entry: the acceptance claims of the bench.

    Runs at acceptance scale — the victim fleet must be large enough
    that the one admitted aggressor search is small relative to the
    victim's own baseline tail, or clock noise dominates the ratio.
    """
    record = run_noisy_neighbor(victims=10, aggressors=12)
    report("tenancy", format_record(record))
    failures = evaluate_gates(record)
    assert not failures, failures
    # The quota refused real work: the unprotected phase served the whole
    # aggressor fleet, the protected storm only the bucket's worth.
    assert record["aggressor_admitted"] < record["config"]["aggressors"]
    unprotected = record["unprotected"][AGGRESSOR_TENANT]
    assert unprotected["shed"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Noisy-neighbor tenant isolation under quotas."
    )
    parser.add_argument("--hash", default="sha1", dest="hash_name")
    parser.add_argument("--victims", type=int, default=FULL_SCALE["victims"])
    parser.add_argument(
        "--aggressors", type=int, default=FULL_SCALE["aggressors"]
    )
    parser.add_argument(
        "--aggressor-rate", type=float,
        default=FULL_SCALE["aggressor_rate"],
        help="aggressor token-bucket refill rate (lookups/second)",
    )
    parser.add_argument(
        "--aggressor-burst", type=float,
        default=FULL_SCALE["aggressor_burst"],
        help="aggressor token-bucket capacity",
    )
    parser.add_argument("--workers", type=int, default=FULL_SCALE["workers"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ratio-limit", type=float, default=1.25,
        help="allowed victim p99 degradation under the storm",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_tenancy.json")
    )
    args = parser.parse_args(argv)

    record = run_noisy_neighbor(
        hash_name=args.hash_name,
        victims=args.victims,
        aggressors=args.aggressors,
        aggressor_rate=args.aggressor_rate,
        aggressor_burst=args.aggressor_burst,
        workers=args.workers,
        seed=args.seed,
    )
    failures = evaluate_gates(record, ratio_limit=args.ratio_limit)
    record["pass"] = not failures
    record["failures"] = failures
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
