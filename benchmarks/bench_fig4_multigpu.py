"""Experiment F4 — Figure 4: multi-GPU scalability, 1-3x A100.

Regenerates the four speedup series (SHA-1/SHA-3 x exhaustive/early-exit)
and checks the paper's reported endpoints and orderings. A real
multi-process strong-scaling run on this host cross-checks that the
data-parallel split + early-exit-flag structure actually scales.
"""

import numpy as np
from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices import speedup_curve

PAPER_ENDPOINTS = {
    ("sha3-256", "exhaustive"): 2.87,
    ("sha3-256", "average"): 2.66,
}


def all_curves():
    return {
        (h, mode): speedup_curve(h, mode, 3)
        for h in ("sha1", "sha3-256")
        for mode in ("exhaustive", "average")
    }


def test_fig4_reproduction(benchmark, report):
    curves = benchmark(all_curves)
    rows = []
    for (h, mode), points in curves.items():
        rows.append(
            [h, mode] + [f"{p.speedup:.2f}x" for p in points]
        )
    table = format_table(
        ["hash", "search type", "1 GPU", "2 GPUs", "3 GPUs"],
        rows,
        title="Figure 4 — multi-GPU speedup (search-only, d=5)",
    )
    endpoint_rows = [
        (f"{h}/{mode} @3 GPUs", paper, curves[(h, mode)][2].speedup)
        for (h, mode), paper in PAPER_ENDPOINTS.items()
    ]
    from repro.analysis.plots import line_plot

    plot = line_plot(
        {
            f"{h}/{mode[:4]}": [(p.num_gpus, p.speedup) for p in pts]
            for (h, mode), pts in curves.items()
        },
        title="Figure 4 (reproduced)",
        x_label="GPUs",
        y_label="speedup",
    )
    report(
        "fig4_multigpu",
        table
        + "\n\n"
        + comparison_table("Reported endpoints", endpoint_rows)
        + "\n\n"
        + plot,
    )

    for (h, mode), paper in PAPER_ENDPOINTS.items():
        assert abs(curves[(h, mode)][2].speedup - paper) / paper < 0.03

    # Orderings (Section 4.8): exhaustive scales better than early exit;
    # SHA-3 scales better than SHA-1 for a given search type.
    for h in ("sha1", "sha3-256"):
        assert curves[(h, "exhaustive")][2].speedup > curves[(h, "average")][2].speedup
    for mode in ("exhaustive", "average"):
        assert (
            curves[("sha3-256", mode)][2].speedup
            > curves[("sha1", mode)][2].speedup
        )


def test_real_multiprocess_scaling(benchmark, report):
    """Strong scaling of the real multiprocessing engine on this host.

    Reduced scale (exhaustive d=2 without a match, SHA-1) so the run
    stays in seconds; checks speedup > 1 and the early-exit flag works.
    """
    import multiprocessing
    import time

    from repro._bitutils import flip_bits
    from repro.hashes.sha1 import sha1
    from repro.engines import build_engine

    rng = np.random.default_rng(3)
    base = rng.bytes(32)
    absent = sha1(rng.bytes(32))
    benchmark(lambda: sha1(base))

    available = multiprocessing.cpu_count()
    worker_counts = [w for w in (1, 2, 4) if w <= available]
    times = {}
    for workers in worker_counts:
        executor = build_engine(f"parallel:sha1,w={workers},bs=2048")
        start = time.perf_counter()
        result = executor.search(base, absent, 2)
        times[workers] = time.perf_counter() - start
        assert not result.found

    rows = [
        [w, f"{times[w]:.2f}", f"{times[worker_counts[0]] / times[w]:.2f}x"]
        for w in worker_counts
    ]
    record_report(
        "fig4_real_host_scaling",
        format_table(
            ["workers", "seconds", "speedup"],
            rows,
            title="Real multiprocessing strong scaling (exhaustive d=2, this host)",
        ),
    )
    if len(worker_counts) > 1:
        # Process startup costs bound small-scale speedup; just require
        # parallelism to help at all.
        assert times[worker_counts[-1]] < times[1] * 1.05
