"""Experiment S3.2.3 — Chase state in shared memory (1.20x / 1.01x).

The paper keeps each GPU thread's Chase-sequence state in shared memory;
spilling it to global memory costs 1.20x for SHA-1 (memory-bound) and
1.01x for SHA-3 (compute-bound). The model reproduces both factors and
— the structural insight — their *ordering*: the cheaper the hash, the
more the state traffic matters.
"""

from conftest import comparison_table, record_report

from repro.devices import GPUModel

PAPER_FACTORS = {"sha1": 1.20, "sha3-256": 1.01}


def measure():
    gpu = GPUModel()
    out = {}
    for hash_name in PAPER_FACTORS:
        fast = gpu.search_time(hash_name, 5, shared_memory_state=True)
        slow = gpu.search_time(hash_name, 5, shared_memory_state=False)
        out[hash_name] = slow / fast
    return out


def test_s323_shared_memory_factors(benchmark, report):
    ratios = benchmark(measure)
    report(
        "s323_sharedmem",
        comparison_table(
            "Section 3.2.3 — slowdown with Chase state in global memory",
            [(h, PAPER_FACTORS[h], ratios[h]) for h in PAPER_FACTORS],
        )
        + "\nStructural check: the memory-bound hash (SHA-1) suffers more "
        "from state traffic than the compute-bound one (SHA-3).",
    )
    for h, paper in PAPER_FACTORS.items():
        assert abs(ratios[h] - paper) / paper < 0.03
    assert ratios["sha1"] > ratios["sha3-256"]


def test_s323_interacts_with_iterators(benchmark, report):
    """Extension ablation: the shared-memory choice only matters for the
    stateful iterator family — Algorithm 515 threads carry no state."""
    gpu = GPUModel()
    benchmark(lambda: gpu.search_time("sha1", 5, shared_memory_state=False))
    rows = []
    for iterator in ("chase", "alg515"):
        fast = gpu.search_time("sha1", 5, iterator=iterator, shared_memory_state=True)
        slow = gpu.search_time("sha1", 5, iterator=iterator, shared_memory_state=False)
        rows.append((f"sha1 + {iterator}", PAPER_FACTORS["sha1"], slow / fast))
    record_report(
        "s323_iterator_interaction",
        comparison_table(
            "Ablation — state placement x iterator (modeled; the model "
            "charges the factor uniformly, a documented simplification)",
            rows,
        ),
    )
