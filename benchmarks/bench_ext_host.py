"""Extension — this machine as a fourth platform.

Probes the host's real vectorized kernels, runs the same Table-5-shaped
comparison against the paper-calibrated platforms, and self-checks the
host model's prediction against an actually timed search — the bridge
between the measured world and the modeled one.
"""

from conftest import record_report

from repro.analysis.tables import format_table
from repro.devices import APUModel, CPUModel, GPUModel
from repro.devices.host import HostDeviceModel


def test_host_as_fourth_platform(benchmark, report):
    host = benchmark.pedantic(
        lambda: HostDeviceModel(
            hash_names=("sha1", "sha3-256"), probe_seeds=20000
        ),
        rounds=1,
        iterations=1,
    )
    platforms = [
        ("GPU (A100, modeled)", GPUModel()),
        ("APU (Gemini, modeled)", APUModel()),
        ("CPU (64c EPYC, modeled)", CPUModel()),
        ("This host (measured)", host),
    ]
    rows = []
    for label, model in platforms:
        for hash_name in ("sha1", "sha3-256"):
            seconds = model.search_time(hash_name, 5)
            rows.append(
                [label, hash_name, f"{seconds:,.1f}",
                 "yes" if seconds <= 20 else "no"]
            )
    tractable = {
        h: host.tractable_distance(h) for h in ("sha1", "sha3-256")
    }
    report(
        "ext_host_platform",
        format_table(
            ["platform", "hash", "exhaustive d=5 (s)", "meets T=20?"],
            rows,
            title="Table 5 extended with this machine",
        )
        + f"\nthis host's tractable d at T=20 s: sha1 -> {tractable['sha1']}, "
        f"sha3-256 -> {tractable['sha3-256']} "
        "(the planning rule of Section 3.1, applied live)",
    )
    # A NumPy host is far slower than an A100 but must still beat d=2.
    assert host.search_time("sha1", 2) < 20.0
    assert host.search_time("sha1", 5) > GPUModel().search_time("sha1", 5)


def test_host_prediction_self_check(benchmark, report):
    host = HostDeviceModel(hash_names=("sha1",), probe_seeds=20000)
    predicted, measured = benchmark.pedantic(
        lambda: host.verify_prediction("sha1", distance=2, tolerance=1.0),
        rounds=1,
        iterations=1,
    )
    record_report(
        "ext_host_selfcheck",
        f"host model self-check (sha1, exhaustive d=2): predicted "
        f"{predicted:.3f} s from probed throughput, measured {measured:.3f} s "
        f"on a real timed search ({measured / predicted:.2f}x) — the same "
        "model-vs-execution discipline DESIGN.md §5 applies to the paper's "
        "platforms.",
    )
    assert 0.3 < measured / predicted < 3.0