"""Deployment benchmark — end-to-end latency over real processes.

Everything else in ``benchmarks/`` measures the serving stack inside one
process. This bench deploys it: real ``repro.deploy.server`` and
``repro.deploy.loadgen`` OS processes over real TCP, one run per WAN
profile (``lan``, ``wan``, ``lossy-wan``), each driving the same
deterministic heavy-tailed/diurnal trace. Reported per profile:
end-to-end p50/p99 (client-observed wall clock, including WAN emulation
and retries), completed-request throughput, and the server-side
shed/redispatch/failover counters scraped over the admin metrics frame.

Gates (exit 1 on any):

* zero false authentications on every profile;
* zero untyped client-observed failures;
* every server drains and exits 0 under SIGTERM;
* the ``lan`` profile authenticates 100% of requests.

Runs standalone for CI (writes ``BENCH_deployment.json``) and under
pytest at reduced scale with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_deployment.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.deploy.storm import DEFAULT_PROFILES, run_deployment_storm
from repro.deploy.topology import TopologySpec

FULL_SCALE = {
    "requests": 36,
    "duration_seconds": 6.0,
    "clients": 8,
    "num_loadgens": 2,
}


def run_benchmark(
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    requests: int = FULL_SCALE["requests"],
    duration_seconds: float = FULL_SCALE["duration_seconds"],
    clients: int = FULL_SCALE["clients"],
    num_loadgens: int = FULL_SCALE["num_loadgens"],
    servers: int = 1,
    seed: int = 0,
    time_budget: float = 5.0,
    scratch_dir: Path | None = None,
    log=None,
) -> dict:
    topology = TopologySpec(
        servers=servers, clients=clients, time_budget=time_budget
    )
    report = run_deployment_storm(
        topology,
        profiles=profiles,
        seed=seed,
        requests=requests,
        duration_seconds=duration_seconds,
        num_loadgens=num_loadgens,
        scratch_dir=scratch_dir,
        log=log,
    )
    record = report.to_json()
    record["pass"] = report.passed
    return record


def format_record(record: dict) -> str:
    lines = [f"deployment storm: {record['topology']}"]
    for profile in record["profiles"]:
        outcomes = ", ".join(
            f"{k}={v}" for k, v in profile["outcomes"].items()
        )
        lines.append(
            f"  [{profile['profile']}] {outcomes}\n"
            f"    p50={profile['latency_p50_ms']:.1f}ms "
            f"p99={profile['latency_p99_ms']:.1f}ms "
            f"throughput={profile['throughput_rps']:.2f}req/s "
            f"false_auths={profile['false_authentications']} "
            f"drained={profile['drained']}"
        )
        for failure in profile["gate_failures"]:
            lines.append(f"    GATE: {failure}")
    lines.append(f"  verdict: {'PASS' if record['pass'] else 'FAIL'}")
    return "\n".join(lines)


def test_deployment_lan_storm(report, tmp_path):
    """Reduced-scale pytest entry: lan-only, real processes end to end."""
    record = run_benchmark(
        profiles=("lan",),
        requests=6,
        duration_seconds=1.5,
        clients=4,
        num_loadgens=1,
        time_budget=3.0,
        scratch_dir=tmp_path,
    )
    report("deployment", format_record(record))
    assert record["pass"], record["profiles"][0]["gate_failures"]
    lan = record["profiles"][0]
    assert lan["false_authentications"] == 0
    assert lan["outcomes"].get("authenticated", 0) == lan["requests"]
    assert lan["drained"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="End-to-end deployment storm over real processes."
    )
    parser.add_argument("--profiles",
                        default=",".join(DEFAULT_PROFILES))
    parser.add_argument("--requests", type=int,
                        default=FULL_SCALE["requests"])
    parser.add_argument("--duration", type=float,
                        default=FULL_SCALE["duration_seconds"])
    parser.add_argument("--clients", type=int,
                        default=FULL_SCALE["clients"])
    parser.add_argument("--loadgens", type=int,
                        default=FULL_SCALE["num_loadgens"])
    parser.add_argument("--servers", type=int, default=1)
    parser.add_argument("--budget", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_deployment.json"))
    args = parser.parse_args(argv)

    record = run_benchmark(
        profiles=tuple(
            p.strip() for p in args.profiles.split(",") if p.strip()
        ),
        requests=args.requests,
        duration_seconds=args.duration,
        clients=args.clients,
        num_loadgens=args.loadgens,
        servers=args.servers,
        seed=args.seed,
        time_budget=args.budget,
        log=print,
    )
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print("REGRESSION: deployment gates failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
