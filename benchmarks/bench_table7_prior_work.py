"""Experiment T7 — Table 7: RBC-SALTED vs prior algorithm-aware RBC.

Two reproductions:

1. *Modeled*: authentication times of the prior-work engines (AES-128
   d=5, LightSABER d=4, Dilithium3 d=4) from their calibrated keygen
   rates, against this work's SHA-3 d=5 on CPU/GPU/APU.
2. *Measured on this host*: the per-candidate cost asymmetry that makes
   the table — real keygen rates of the from-scratch AES and toy-PQC
   implementations vs the real batched SHA-3 hash rate, run through the
   actual original-RBC and RBC-SALTED engines at reduced scale.
"""

import time

import numpy as np
from conftest import comparison_table, record_report

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.combinatorics.binomial import exhaustive_seed_count
from repro.core.original_rbc import OriginalRBCSearch
from repro.devices import APUModel, CPUModel, GPUModel
from repro.devices.calibration import PRIOR_WORK_KEYGEN_RATE, U4, U5
from repro.keygen.interface import get_keygen
from repro.engines import build_engine

#: Table 7 rows: (ref, algorithm, d, cpu_s, gpu_s, apu_s)
PAPER_TABLE_7 = [
    ("[39]", "aes-128", 5, 44.7, 2.56, None),
    ("[29]", "lightsaber", 4, 44.58, 14.03, None),
    ("[40]", "dilithium3", 4, 204.92, 27.91, None),
    ("This work", "sha3-256", 5, 60.68, 4.67, 13.95),
]


def reproduce_table7():
    gpu, cpu, apu = GPUModel(), CPUModel(), APUModel()
    rows = []
    for ref, algorithm, d, _pc, _pg, _pa in PAPER_TABLE_7:
        if algorithm == "sha3-256":
            cpu_s = cpu.search_time("sha3-256", d)
            gpu_s = gpu.search_time("sha3-256", d)
            apu_s = apu.search_time("sha3-256", d)
        else:
            seeds = exhaustive_seed_count(d)
            cpu_s = seeds / PRIOR_WORK_KEYGEN_RATE[(algorithm, "cpu")]
            gpu_s = seeds / PRIOR_WORK_KEYGEN_RATE[(algorithm, "gpu")]
            apu_s = None
        rows.append((ref, algorithm, d, cpu_s, gpu_s, apu_s))
    return rows


def test_table7_reproduction(benchmark, report):
    ours = benchmark(reproduce_table7)
    comparisons = []
    for (ref, algo, d, pc, pg, pa), (_, _, _, oc, og, oa) in zip(PAPER_TABLE_7, ours):
        comparisons.append((f"{algo} d={d} CPU", pc, oc))
        comparisons.append((f"{algo} d={d} GPU", pg, og))
        if pa is not None:
            comparisons.append((f"{algo} d={d} APU", pa, oa))
    report(
        "table7_prior_work",
        comparison_table("Table 7 — prior RBC engines vs this work (s)", comparisons),
    )
    for (_, _, _, pc, pg, pa), (_, _, _, oc, og, oa) in zip(PAPER_TABLE_7, ours):
        assert abs(oc - pc) / pc < 0.05
        assert abs(og - pg) / pg < 0.05

    # The headline: SALTED searches d=5 faster than the PQC engines
    # search d=4, on both CPU-platform and GPU-platform numbers.
    salted_gpu = ours[3][4]
    assert salted_gpu < ours[1][4] and salted_gpu < ours[2][4]
    # And the AES engine remains faster (the paper concedes ~45.2%) but
    # is symmetric-only.
    assert ours[0][4] < salted_gpu < 2.2 * ours[0][4]


def test_real_cost_asymmetry(benchmark, report):
    """Real per-candidate costs on this host: hash vs key generation."""
    hash_rate = build_engine("batch:sha3-256").throughput_probe(30000)
    benchmark(lambda: get_keygen("aes-128").public_key(b"\x07" * 32))
    rows = [["sha3-256 (batched hash)", f"{hash_rate:12,.0f}", "1.0x"]]
    for name in ("aes-128", "lightsaber", "dilithium3"):
        engine = OriginalRBCSearch(get_keygen(name))
        samples = 40 if name == "aes-128" else 3
        rate = engine.measure_keygen_rate(samples)
        rows.append(
            [f"{name} (keygen)", f"{rate:12,.0f}", f"{hash_rate / rate:.0f}x slower"]
        )
    record_report(
        "table7_real_asymmetry",
        format_table(
            ["operation", "ops/s (this host)", "vs hash"],
            rows,
            title="Per-candidate cost, real implementations",
        ),
    )


def test_salted_vs_original_same_search(benchmark, report):
    """Run both engines on the identical d=1 problem, real code."""
    rng = np.random.default_rng(9)
    base = rng.bytes(32)
    client = flip_bits(base, [200])
    benchmark(lambda: flip_bits(base, [200]))

    from repro.hashes.sha3 import sha3_256

    salted = build_engine("batch:sha3-256,bs=512")
    start = time.perf_counter()
    r1 = salted.search(base, sha3_256(client), 1)
    salted_seconds = time.perf_counter() - start

    keygen = get_keygen("lightsaber")
    original = OriginalRBCSearch(keygen)
    start = time.perf_counter()
    r2 = original.search(base, keygen.public_key(client), 1)
    original_seconds = time.perf_counter() - start

    assert r1.found and r2.found and r1.seed == r2.seed == client
    record_report(
        "table7_live_comparison",
        f"Identical d=1 search, real engines on this host:\n"
        f"  RBC-SALTED (SHA-3 hash search):      {salted_seconds:8.3f} s\n"
        f"  Original RBC (LightSABER keygen/seed): {original_seconds:8.3f} s\n"
        f"  advantage: {original_seconds / salted_seconds:.0f}x "
        "(the paper's core optimization, observed live)",
    )
    assert salted_seconds < original_seconds
