"""Extension — environmental operating margin.

Field conditions (temperature, voltage, age) raise the PUF's effective
bit-error rate; RBC converts that into search time. This bench sweeps
operating points over a real (simulated) SRAM device, computes the
expected Hamming distance after TAPKI masking, and asks each platform
whether the resulting search still fits T = 20 s — the deployment-
envelope question behind the paper's noise-injection future work.
"""

import math

import numpy as np
from conftest import record_report

from repro.analysis.tables import format_table
from repro.devices import CPUModel, GPUModel
from repro.puf.environment import EnvironmentalConditions, EnvironmentalPuf
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking

OPERATING_POINTS = [
    ("enrollment 25C", EnvironmentalConditions()),
    ("40C", EnvironmentalConditions(temperature_c=40.0)),
    ("70C", EnvironmentalConditions(temperature_c=70.0)),
    ("105C", EnvironmentalConditions(temperature_c=105.0)),
    ("105C + 5y age", EnvironmentalConditions(temperature_c=105.0, age_years=5.0)),
    ("brown-out 0.85V", EnvironmentalConditions(supply_voltage=0.85)),
]


def sweep():
    puf = SRAMPuf(num_cells=8192, stable_error=0.004, seed=2027)
    mask = enroll_with_masking(puf, 0, 8192, reads=48, instability_threshold=0.03)
    gpu, cpu = GPUModel(), CPUModel()
    rows = []
    for label, conditions in OPERATING_POINTS:
        env = EnvironmentalPuf(
            puf, conditions, base_noise_rate=0.01,
            aging_drift_per_year=0.001, rng=np.random.default_rng(5),
        )
        expected_d = env.expected_distance(mask)
        # Search radius: expected distance plus a two-bit tail margin
        # (the CA can always re-handshake on the rare deeper excursion).
        search_d = min(6, max(1, math.ceil(expected_d) + 2))
        gpu_ok = search_d <= 5 and gpu.search_time("sha3-256", search_d) <= 20.0
        cpu_ok = search_d <= 5 and cpu.search_time("sha3-256", search_d) <= 20.0
        rows.append(
            [label, f"{env.stress:.2f}x", f"{expected_d:.2f}", search_d,
             "yes" if gpu_ok else "NO", "yes" if cpu_ok else "NO"]
        )
    return rows


def test_environment_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ext_environment",
        format_table(
            ["operating point", "stress", "E[d]", "search d",
             "GPU meets T?", "CPU meets T?"],
            rows,
            title="Environmental margin: field conditions -> search radius -> "
            "T=20 s verdict (SHA-3)",
        )
        + "\n(the GPU's d=5 headroom buys environmental tolerance the "
        "CPU does not have — the operational face of Table 5)",
    )
    verdicts = {row[0]: (row[4], row[5]) for row in rows}
    # Nominal conditions are fine everywhere.
    assert verdicts["enrollment 25C"] == ("yes", "yes")
    # Some harsh point must separate GPU from CPU.
    assert any(gpu == "yes" and cpu == "NO" for gpu, cpu in verdicts.values())
