"""Directory benchmark — hot-cache latency and availability under shard loss.

Two claims behind :mod:`repro.directory`, measured on synthetic
enrollment images (the directory stores and serves ciphertext; no PUF or
search is needed to characterize it):

* **Caching** — a steady-state working set is served from the per-shard
  hot caches at a >= 90% hit rate (the gate), even with enrollment churn
  invalidating entries mid-stream, and a hot hit is cheaper than the
  cold quorum read it replaces (decrypt + replica walk).

* **Availability** — with R-way replication, losing any **one** shard
  leaves every key readable (failover carries the primaries of the dead
  shard); losing a key's **entire replica set** makes exactly the doomed
  keys unavailable — typed, counted, and nothing else — and reviving the
  shards restores full availability with read repair healing the
  divergence accumulated while they were dark.

Runs standalone for CI (writes ``BENCH_directory.json``, exits 1 on a
gate failure) and under pytest with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_directory.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.metrics import percentile
from repro.directory import DirectoryUnavailable, ShardedEnrollmentDirectory
from repro.directory.storm import _pick_victims
from repro.puf.ternary import TernaryMask

FULL_SCALE = {
    "clients": 512,
    "shards": 8,
    "replication": 2,
    "cache_capacity": 128,
    "rounds": 10,
    "churn_per_round": 8,
    "latency_sample": 64,
}


def _synthetic_mask(rng: np.random.Generator, cells: int = 512) -> TernaryMask:
    """A directory-sized enrollment image without running a PUF model."""
    usable = rng.random(cells) > 0.03
    return TernaryMask(
        address=0,
        usable=usable,
        reference=(rng.random(cells) > 0.5),
        instability=np.zeros(cells),
    )


def _build_directory(
    clients: int, shards: int, replication: int, cache_capacity: int, seed: int
) -> tuple[ShardedEnrollmentDirectory, list[str], np.random.Generator]:
    rng = np.random.default_rng(seed)
    directory = ShardedEnrollmentDirectory(
        master_key=b"bench-master-k!!",
        shards=shards,
        replication=replication,
        cache_capacity=cache_capacity,
    )
    client_ids = [f"client-{index:05d}" for index in range(clients)]
    masks = {c: _synthetic_mask(rng) for c in client_ids}
    for client_id in client_ids:
        directory.enroll(client_id, masks[client_id])
    return directory, client_ids, rng


def _latency_section(
    directory: ShardedEnrollmentDirectory, sample: list[str]
) -> dict:
    """Cold quorum-read latency vs hot-cache hit latency, same keys."""
    directory.drop_hot_caches()
    cold = []
    for client_id in sample:
        start = time.perf_counter()
        _mask, stats = directory.lookup_with_stats(client_id)
        cold.append(time.perf_counter() - start)
        assert not stats.hot_hit
    hot = []
    for client_id in sample:
        start = time.perf_counter()
        _mask, stats = directory.lookup_with_stats(client_id)
        hot.append(time.perf_counter() - start)
        assert stats.hot_hit
    return {
        "sample": len(sample),
        "cold_mean_us": float(np.mean(cold) * 1e6),
        "cold_p99_us": float(percentile(cold, 99.0) * 1e6),
        "hot_mean_us": float(np.mean(hot) * 1e6),
        "hot_p99_us": float(percentile(hot, 99.0) * 1e6),
        "speedup": float(np.mean(cold) / np.mean(hot)),
    }


def _steady_state_section(
    directory: ShardedEnrollmentDirectory,
    client_ids: list[str],
    rounds: int,
    churn_per_round: int,
    rng: np.random.Generator,
) -> dict:
    """Hit rate over repeated working-set rounds with enrollment churn.

    Round 0 warms the caches and is excluded from the steady-state rate;
    every later round re-enrolls ``churn_per_round`` random clients first
    (invalidating their cached entry — a miss the cache must re-absorb).
    """
    directory.drop_hot_caches()
    hits = lookups = 0
    for round_index in range(rounds):
        if round_index > 0 and churn_per_round:
            for client_id in rng.choice(
                client_ids, size=churn_per_round, replace=False
            ):
                directory.enroll(
                    str(client_id), directory.lookup(str(client_id))
                )
        for client_id in client_ids:
            _mask, stats = directory.lookup_with_stats(client_id)
            if round_index > 0:
                lookups += 1
                hits += 1 if stats.hot_hit else 0
    hit_rate = hits / lookups if lookups else 0.0
    return {
        "rounds": rounds,
        "churn_per_round": churn_per_round,
        "steady_lookups": lookups,
        "steady_hits": hits,
        "hit_rate": hit_rate,
    }


def _availability_sweep(
    directory: ShardedEnrollmentDirectory, client_ids: list[str]
) -> tuple[int, int, int]:
    """(served, typed_unavailable, errors) over one full lookup sweep."""
    served = unavailable = errors = 0
    for client_id in client_ids:
        try:
            directory.lookup(client_id)
            served += 1
        except DirectoryUnavailable:
            unavailable += 1
        except Exception:
            errors += 1
    return served, unavailable, errors


def _availability_section(
    directory: ShardedEnrollmentDirectory, client_ids: list[str]
) -> dict:
    victim, partner, doomed = _pick_victims(directory, client_ids)
    total = len(client_ids)

    directory.kill_shard(victim)
    directory.drop_hot_caches()
    failovers_before = directory.failovers
    served_1, unavailable_1, errors_1 = _availability_sweep(
        directory, client_ids
    )
    failovers = directory.failovers - failovers_before

    directory.kill_shard(partner)
    directory.drop_hot_caches()
    served_2, unavailable_2, errors_2 = _availability_sweep(
        directory, client_ids
    )

    repairs_before = directory.read_repairs
    directory.revive_shard(victim)
    directory.revive_shard(partner)
    directory.drop_hot_caches()
    served_3, unavailable_3, errors_3 = _availability_sweep(
        directory, client_ids
    )

    return {
        "victim": victim,
        "partner": partner,
        "doomed_keys": len(doomed),
        "one_shard_down": {
            "served": served_1,
            "unavailable": unavailable_1,
            "errors": errors_1,
            "availability": served_1 / total,
            "failovers": failovers,
        },
        "replica_set_down": {
            "served": served_2,
            "unavailable": unavailable_2,
            "errors": errors_2,
            "availability": served_2 / total,
        },
        "recovered": {
            "served": served_3,
            "unavailable": unavailable_3,
            "errors": errors_3,
            "availability": served_3 / total,
            "read_repairs": directory.read_repairs - repairs_before,
        },
    }


def run_benchmark(
    clients: int = FULL_SCALE["clients"],
    shards: int = FULL_SCALE["shards"],
    replication: int = FULL_SCALE["replication"],
    cache_capacity: int = FULL_SCALE["cache_capacity"],
    rounds: int = FULL_SCALE["rounds"],
    churn_per_round: int = FULL_SCALE["churn_per_round"],
    latency_sample: int = FULL_SCALE["latency_sample"],
    seed: int = 0,
) -> dict:
    directory, client_ids, rng = _build_directory(
        clients, shards, replication, cache_capacity, seed
    )
    start = time.perf_counter()
    latency = _latency_section(directory, client_ids[:latency_sample])
    steady = _steady_state_section(
        directory, client_ids, rounds, churn_per_round, rng
    )
    availability = _availability_section(directory, client_ids)
    record = {
        "config": {
            "clients": clients,
            "shards": shards,
            "replication": replication,
            "cache_capacity": cache_capacity,
            "rounds": rounds,
            "churn_per_round": churn_per_round,
            "seed": seed,
        },
        "latency": latency,
        "steady_state": steady,
        "availability": availability,
        "wall_seconds": time.perf_counter() - start,
        "directory": {
            key: value
            for key, value in directory.snapshot().items()
            if key != "shards_detail"
        },
    }
    one_down = availability["one_shard_down"]
    two_down = availability["replica_set_down"]
    recovered = availability["recovered"]
    record["pass"] = (
        steady["hit_rate"] >= 0.9
        and latency["speedup"] > 1.0
        # one shard down: every key still served, via real failover.
        and one_down["availability"] == 1.0
        and one_down["errors"] == 0
        and one_down["failovers"] > 0
        # replica set down: exactly the doomed keys go (typed) unavailable.
        and two_down["unavailable"] == availability["doomed_keys"]
        and two_down["errors"] == 0
        # revive restores full availability.
        and recovered["availability"] == 1.0
        and recovered["errors"] == 0
    )
    return record


def format_record(record: dict) -> str:
    config = record["config"]
    latency = record["latency"]
    steady = record["steady_state"]
    availability = record["availability"]
    one_down = availability["one_shard_down"]
    two_down = availability["replica_set_down"]
    recovered = availability["recovered"]
    lines = [
        "Directory — hot-cache latency and availability under shard loss",
        f"  {config['clients']} clients over {config['shards']} shards, "
        f"r={config['replication']}, cache={config['cache_capacity']}/shard",
        f"  latency (n={latency['sample']}): "
        f"cold quorum read {latency['cold_mean_us']:.0f}us "
        f"(p99 {latency['cold_p99_us']:.0f}us) -> hot hit "
        f"{latency['hot_mean_us']:.0f}us "
        f"(p99 {latency['hot_p99_us']:.0f}us), "
        f"{latency['speedup']:.1f}x",
        f"  steady state ({steady['rounds']} rounds, "
        f"{steady['churn_per_round']} re-enrolls/round): "
        f"hit rate {steady['hit_rate']:.1%} "
        f"({steady['steady_hits']}/{steady['steady_lookups']})",
        f"  1-of-N loss ({availability['victim']}): "
        f"availability {one_down['availability']:.1%}, "
        f"{one_down['failovers']} failovers, {one_down['errors']} errors",
        f"  replica-set loss (+{availability['partner']}): "
        f"availability {two_down['availability']:.1%}, "
        f"{two_down['unavailable']} typed unavailable "
        f"(= {availability['doomed_keys']} doomed keys), "
        f"{two_down['errors']} errors",
        f"  recovered: availability {recovered['availability']:.1%}, "
        f"{recovered['read_repairs']} read repairs, "
        f"{recovered['errors']} errors",
        f"  wall: {record['wall_seconds']:.2f}s  "
        f"verdict: {'PASS' if record['pass'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def test_directory_cache_and_availability(report):
    """Reduced-scale pytest entry: the acceptance claims of the bench."""
    record = run_benchmark(
        clients=96, cache_capacity=48, rounds=4, churn_per_round=2,
        latency_sample=24,
    )
    report("directory", format_record(record))
    assert record["steady_state"]["hit_rate"] >= 0.9
    assert record["latency"]["speedup"] > 1.0
    assert record["availability"]["one_shard_down"]["availability"] == 1.0
    assert record["availability"]["replica_set_down"]["errors"] == 0
    assert record["availability"]["recovered"]["availability"] == 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Directory hot-cache latency and shard-loss availability."
    )
    parser.add_argument("--clients", type=int, default=FULL_SCALE["clients"])
    parser.add_argument("--shards", type=int, default=FULL_SCALE["shards"])
    parser.add_argument(
        "--replication", type=int, default=FULL_SCALE["replication"]
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=FULL_SCALE["cache_capacity"],
        dest="cache_capacity",
    )
    parser.add_argument("--rounds", type=int, default=FULL_SCALE["rounds"])
    parser.add_argument(
        "--churn-per-round", type=int, default=FULL_SCALE["churn_per_round"],
        dest="churn_per_round",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_directory.json")
    )
    args = parser.parse_args(argv)

    record = run_benchmark(
        clients=args.clients,
        shards=args.shards,
        replication=args.replication,
        cache_capacity=args.cache_capacity,
        rounds=args.rounds,
        churn_per_round=args.churn_per_round,
        seed=args.seed,
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print(
            "REGRESSION: directory gates failed "
            f"(hit_rate={record['steady_state']['hit_rate']:.3f}, "
            f"one_down={record['availability']['one_shard_down']}, "
            f"two_down={record['availability']['replica_set_down']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
