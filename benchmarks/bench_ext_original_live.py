"""Extension — live algorithm-aware RBC vs RBC-SALTED (Table 7 companion).

The calibrated Table 7 bench reproduces the paper's numbers; this one
runs the *actual engines* head-to-head on this host with the vectorized
key-agile cipher kernels, at reduced Hamming distance. It shows where
the paper's conclusion is platform-dependent: on CUDA, AES beat SHA-3 by
~45%; on NumPy lanes the cheap ARX ciphers (SPECK/ChaCha) also beat the
batched SHA-3 hash, while AES's table gathers make it slower — the
*structure* (original RBC pays per-candidate keygen; SALTED pays one
hash) is what carries across platforms, and the PQC rows show it.
"""

import time

import numpy as np
from conftest import record_report

from repro._bitutils import flip_bits
from repro.analysis.tables import format_table
from repro.hashes.sha3 import sha3_256
from repro.keygen.interface import get_keygen
from repro.engines import build_engine
from repro.runtime.original_batch import BATCH_KEYGEN_CHOICES, BatchOriginalRBCSearch


def test_live_engine_comparison(benchmark, report):
    """Identical exhaustive d=1 miss for every engine, real code."""
    rng = np.random.default_rng(41)
    base = rng.bytes(32)
    absent_seed = rng.bytes(32)

    rows = []
    # RBC-SALTED (the hash search).
    salted = build_engine("batch:sha3-256,bs=257")
    start = time.perf_counter()
    result = salted.search(base, sha3_256(absent_seed), 1)
    salted_seconds = time.perf_counter() - start
    assert not result.found
    rows.append(["RBC-SALTED (sha3-256)", f"{salted_seconds * 1e3:8.1f}",
                 f"{result.seeds_hashed / salted_seconds:12,.0f}"])

    # Original RBC with each batched cipher.
    for name in BATCH_KEYGEN_CHOICES:
        engine = BatchOriginalRBCSearch(name, batch_size=257)
        target = get_keygen(name).public_key(absent_seed)
        start = time.perf_counter()
        result = engine.search(base, target[: engine._response_size], 1)
        seconds = time.perf_counter() - start
        assert not result.found
        rows.append([f"Original RBC ({name})", f"{seconds * 1e3:8.1f}",
                     f"{result.seeds_hashed / seconds:12,.0f}"])

    report(
        "ext_original_live",
        format_table(
            ["engine", "exhaustive d=1 (ms)", "candidates/s"],
            rows,
            title="Live engines on this host — identical d=1 exhaustive miss",
        )
        + "\n(PQC original-RBC is benchmarked scalar in table7_real_asymmetry:"
        "\n ~60 keygens/s vs ~290k hashes/s — the regime Table 7 reports.)",
    )

    benchmark(lambda: salted.search(base, sha3_256(absent_seed), 1))


def test_structural_claim_holds_for_pqc(benchmark, report):
    """RBC-SALTED vs original RBC with PQC keygen: the paper's actual
    comparison, live, planted at d=1 (average case)."""
    rng = np.random.default_rng(43)
    base = rng.bytes(32)
    client = flip_bits(base, [128])

    salted = build_engine("batch:sha3-256,bs=512")
    start = time.perf_counter()
    r1 = salted.search(base, sha3_256(client), 1)
    salted_seconds = time.perf_counter() - start

    from repro.core.original_rbc import OriginalRBCSearch

    keygen = get_keygen("dilithium3")
    original = OriginalRBCSearch(keygen)
    start = time.perf_counter()
    r2 = original.search(base, keygen.public_key(client), 1)
    original_seconds = time.perf_counter() - start

    assert r1.found and r2.found and r1.seed == r2.seed
    advantage = original_seconds / salted_seconds
    record_report(
        "ext_pqc_advantage",
        f"Dilithium3-original vs SHA3-SALTED, same planted d=1 seed:\n"
        f"  original {original_seconds:.2f} s vs salted {salted_seconds:.4f} s "
        f"-> {advantage:,.0f}x advantage (paper's GPU ratio at d=4: "
        f"27.91/4.67 = 6.0x across a 50x larger relative space)",
    )
    assert advantage > 10

    benchmark(lambda: sha3_256(client))
