"""Experiment T6 — Table 6: GPU vs APU energy on the exhaustive d=5 search.

Regenerates total joules, max watts, and idle watts per (device, hash)
and checks the paper's two findings: the APU needs only ~39% of the
GPU's energy on SHA-1, and the two are roughly equal on SHA-3 (the APU's
3x runtime deficit cancels its power advantage).
"""

from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices import APUModel, GPUModel
from repro.devices.energy import EnergyModel, idle_adjusted_energy

PAPER_TABLE_6 = {
    ("gpu", "sha1"): (317.20, 253.43, 31.53),
    ("apu", "sha1"): (124.43, 83.81, 22.10),
    ("gpu", "sha3-256"): (946.55, 258.29, 31.53),
    ("apu", "sha3-256"): (974.06, 83.63, 22.10),
}


def reproduce_table6():
    models = {"gpu": GPUModel(), "apu": APUModel()}
    out = {}
    for (platform, hash_name), _paper in PAPER_TABLE_6.items():
        model = models[platform]
        timing = model.simulate_search(hash_name, 5)
        energy = EnergyModel(model.spec).report(timing)
        out[(platform, hash_name)] = energy
    return out


def test_table6_reproduction(benchmark, report):
    ours = benchmark(reproduce_table6)
    comparisons = []
    for key, (p_joules, p_max, p_idle) in PAPER_TABLE_6.items():
        platform, hash_name = key
        comparisons.append((f"{platform}/{hash_name} joules", p_joules, ours[key].total_joules))
        comparisons.append((f"{platform}/{hash_name} max W", p_max, ours[key].max_watts))
        comparisons.append((f"{platform}/{hash_name} idle W", p_idle, ours[key].idle_watts))
    report(
        "table6_energy",
        comparison_table("Table 6 — search-only energy, exhaustive d=5", comparisons),
    )
    for key, (p_joules, _p_max, _p_idle) in PAPER_TABLE_6.items():
        assert abs(ours[key].total_joules - p_joules) / p_joules < 0.05, key


def test_table6_findings(benchmark, report):
    gpu, apu = GPUModel(), APUModel()
    benchmark(lambda: gpu.simulate_search("sha1", 5).energy_joules)
    sha1_ratio = (
        apu.simulate_search("sha1", 5).energy_joules
        / gpu.simulate_search("sha1", 5).energy_joules
    )
    sha3_ratio = (
        apu.simulate_search("sha3-256", 5).energy_joules
        / gpu.simulate_search("sha3-256", 5).energy_joules
    )
    record_report(
        "table6_findings",
        comparison_table(
            "Section 4.7 — energy ratios (APU / GPU)",
            [
                ("SHA-1 (paper: 39.2%)", 0.392, sha1_ratio),
                ("SHA-3 (roughly equal)", 974.06 / 946.55, sha3_ratio),
            ],
        ),
    )
    assert abs(sha1_ratio - 0.392) < 0.05
    assert 0.9 < sha3_ratio < 1.15


def test_energy_per_seed_ablation(benchmark, report):
    """Extension: joules per hashed seed with and without the idle floor —
    the architecture-level efficiency the paper's Section 4.7 argues from."""
    benchmark(lambda: EnergyModel.energy_per_seed(GPUModel().simulate_search("sha1", 5)))
    rows = []
    for label, model in (("GPU", GPUModel()), ("APU", APUModel())):
        for hash_name in ("sha1", "sha3-256"):
            timing = model.simulate_search(hash_name, 5)
            with_idle = EnergyModel.energy_per_seed(timing) * 1e9
            without = (
                idle_adjusted_energy(model, timing, include_idle=False)
                / timing.seeds_searched
                * 1e9
            )
            rows.append(
                [label, hash_name, f"{with_idle:.2f}", f"{without:.2f}"]
            )
    record_report(
        "table6_energy_per_seed",
        format_table(
            ["device", "hash", "nJ/seed (incl. idle)", "nJ/seed (active only)"],
            rows,
            title="Ablation — energy per hashed seed",
        ),
    )
    # The APU's compute-in-memory advantage survives idle accounting on SHA-1.
    gpu_sha1 = EnergyModel.energy_per_seed(GPUModel().simulate_search("sha1", 5))
    apu_sha1 = EnergyModel.energy_per_seed(APUModel().simulate_search("sha1", 5))
    assert apu_sha1 < gpu_sha1
