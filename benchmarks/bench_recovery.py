"""Recovery benchmark — kill-9 crash-restart storm over real processes.

The durability tentpole's acceptance rig: real ``repro.deploy.server``
processes with WAL-backed enrollment stores are SIGKILLed mid-burst,
restarted under the supervisor's backoff/budget policy, and held to the
crash-consistency contract. Reported per kill-9 round: records replayed
at recovery and the recovery wall time; overall: acknowledged-enrollment
throughput under ``fsync=always`` versus the no-fsync lossy baseline
(the price of durability), restart count, and total backoff slept.

Gates (exit 1 on any):

* zero acknowledged enrollments lost across all kill-9 rounds;
* zero nonce-reuse tripwire firings (the crypto-safety invariant);
* zero false authentications, and every post-recovery authentication
  succeeds;
* every surviving server drains and exits 0 under SIGTERM.

Runs standalone for CI (writes ``BENCH_recovery.json``) and under pytest
at reduced scale with the usual report plumbing::

    PYTHONPATH=src python benchmarks/bench_recovery.py --help
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.deploy.storm import run_crash_storm
from repro.deploy.supervisor import RestartPolicy
from repro.deploy.topology import TopologySpec

FULL_SCALE = {
    "clients": 8,
    "crashes": 3,
    "auth_requests": 4,
}


def run_benchmark(
    clients: int = FULL_SCALE["clients"],
    crashes: int = FULL_SCALE["crashes"],
    auth_requests: int = FULL_SCALE["auth_requests"],
    servers: int = 1,
    fsync: str = "always",
    seed: int = 0,
    scratch_dir: Path | None = None,
    log=None,
) -> dict:
    topology = TopologySpec(
        servers=servers,
        engine="fifo",
        wan_profile="lan",
        clients=clients,
        durability=fsync,
    )
    report = run_crash_storm(
        topology,
        seed=seed,
        crashes=crashes,
        auth_requests=auth_requests,
        restart_policy=RestartPolicy(max_restarts=2 * crashes + 2, seed=seed),
        scratch_dir=scratch_dir,
        log=log,
    )
    record = report.to_json()
    record["pass"] = report.passed
    return record


def format_record(record: dict) -> str:
    lines = [f"crash-restart storm: {record['topology']}"]
    for entry in record["rounds"]:
        lines.append(
            f"  round {entry['round']}: {entry['victim']} killed after "
            f"{entry['acked_before_kill']} ack(s), recovered "
            f"{entry['recovered_records']} record(s) in "
            f"{entry['recovery_seconds'] * 1000:.1f}ms, "
            f"lost {entry['lost_acknowledged']}"
        )
    lines.append(
        f"  acked={record['acknowledged_total']} "
        f"lost={record['lost_acknowledged']} "
        f"nonce_reuse={record['nonce_reuse_trips']} "
        f"false_auths={record['false_authentications']} "
        f"restarts={record['restarts']} drained={record['drained']}"
    )
    lines.append(
        f"  durable={record['durable_enroll_rps']:.1f} enroll/s "
        f"lossy={record['lossy_enroll_rps']:.1f} enroll/s "
        f"fsync_cost={record['durability_overhead_pct']:+.1f}%"
    )
    for failure in record["gate_failures"]:
        lines.append(f"  GATE: {failure}")
    lines.append(f"  verdict: {'PASS' if record['pass'] else 'FAIL'}")
    return "\n".join(lines)


def test_recovery_crash_storm(report, tmp_path):
    """Reduced-scale pytest entry: 2 kill-9 rounds, real processes."""
    record = run_benchmark(
        clients=4,
        crashes=2,
        auth_requests=2,
        scratch_dir=tmp_path,
    )
    report("recovery", format_record(record))
    assert record["pass"], record["gate_failures"]
    assert record["lost_acknowledged"] == 0
    assert record["nonce_reuse_trips"] == 0
    assert record["false_authentications"] == 0
    assert all(r["recovered_records"] > 0 for r in record["rounds"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill-9 crash-restart storm over real processes."
    )
    parser.add_argument("--clients", type=int,
                        default=FULL_SCALE["clients"])
    parser.add_argument("--crashes", type=int,
                        default=FULL_SCALE["crashes"])
    parser.add_argument("--auth-requests", type=int,
                        default=FULL_SCALE["auth_requests"],
                        dest="auth_requests")
    parser.add_argument("--servers", type=int, default=1)
    parser.add_argument("--fsync", default="always",
                        help="WAL fsync policy: always or interval[:secs]")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_recovery.json"))
    args = parser.parse_args(argv)

    record = run_benchmark(
        clients=args.clients,
        crashes=args.crashes,
        auth_requests=args.auth_requests,
        servers=args.servers,
        fsync=args.fsync,
        seed=args.seed,
        log=print,
    )
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(format_record(record))
    print(f"  wrote {args.output}")
    if not record["pass"]:
        print("REGRESSION: recovery gates failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
