"""Experiment F3 — Figure 3: grid search over (seeds/thread n, threads/block b).

Regenerates the heatmap of exhaustive SHA-3 d=5 search time on the GPU
model and checks the paper's two findings: the optimum sits at
(n=100, b=128), and a wide parameter range performs similarly.
"""

from conftest import record_report

from repro.analysis.tables import format_heatmap
from repro.devices import GPUModel

N_VALUES = (10, 25, 50, 100, 200, 400, 800)
B_VALUES = (32, 64, 128, 256, 512, 1024)


def grid(gpu: GPUModel) -> dict[tuple[int, int], float]:
    return {
        (n, b): gpu.search_time(
            "sha3-256", 5, seeds_per_thread=n, threads_per_block=b
        )
        for n in N_VALUES
        for b in B_VALUES
    }


def test_fig3_heatmap(benchmark, report):
    gpu = GPUModel()
    times = benchmark(grid, gpu)

    heat = format_heatmap(
        N_VALUES,
        B_VALUES,
        [[times[(n, b)] for b in B_VALUES] for n in N_VALUES],
        row_axis="n",
        col_axis="b",
    )
    best = min(times, key=times.get)
    lines = [
        "Figure 3 — exhaustive SHA-3 d=5 search time (s) over (n, b)",
        heat,
        f"minimum at n={best[0]}, b={best[1]} "
        f"({times[best]:.3f} s; paper: n=100, b=128, 4.67 s)",
    ]
    # The paper's flat-plateau observation: how many configs are within 2%.
    plateau = sum(1 for v in times.values() if v / times[best] < 1.02)
    lines.append(
        f"{plateau}/{len(times)} configurations within 2% of the optimum "
        "(paper: 'parameters can be selected in a large range')"
    )
    report("fig3_gridsearch", "\n".join(lines))

    assert best == (100, 128)
    assert abs(times[best] - 4.67) / 4.67 < 0.05
    assert plateau >= 8


def test_fig3_total_threads_annotation(benchmark, report):
    """The heatmap's secondary axis: total threads implied by each n."""
    import math

    from repro.combinatorics.binomial import binomial

    shell = benchmark(binomial, 256, 5)
    rows = [f"Figure 3 annotation — total threads p = ceil(C(256,5)/n):"]
    for n in N_VALUES:
        rows.append(f"  n={n:4d}: p = {math.ceil(shell / n):,}")
    record_report("fig3_thread_counts", "\n".join(rows))
    assert math.ceil(shell / 100) == 88095491  # ~88M threads at the optimum
