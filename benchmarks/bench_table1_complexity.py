"""Experiment T1 — Table 1: seeds searched per Hamming distance.

Pure math (Equations 1 and 3); the reproduction is exact. The benchmark
times the exact-arithmetic computation of the full table.
"""

from conftest import comparison_table, record_report

from repro.core.complexity import table1_rows

#: Table 1 as printed in the paper (d -> (exhaustive, average)).
PAPER_TABLE_1 = {
    1: (256, 129),
    2: (3.3e4, 1.7e4),
    3: (2.8e6, 1.4e6),
    4: (1.8e8, 9.0e7),
    5: (9.0e9, 4.6e9),
}


def test_table1_reproduction(benchmark, report):
    rows = benchmark(table1_rows, 5)
    comparisons = []
    for row in rows:
        paper_exh, paper_avg = PAPER_TABLE_1[row.d]
        comparisons.append((f"exhaustive d={row.d}", paper_exh, float(row.exhaustive)))
        comparisons.append((f"average    d={row.d}", paper_avg, float(row.average)))
    report(
        "table1_complexity",
        comparison_table("Table 1 — seeds searched (Eqs. 1 & 3)", comparisons),
    )
    # The paper rounds to 2 significant figures; exact values must agree
    # to that precision. (d=1 exhaustive: the paper prints the shell 256.)
    assert rows[4].exhaustive == 8987138113
    assert rows[4].average == 4582363585
    for row in rows[1:]:
        paper_exh, paper_avg = PAPER_TABLE_1[row.d]
        assert abs(row.exhaustive - paper_exh) / paper_exh < 0.05
        assert abs(row.average - paper_avg) / paper_avg < 0.05
