"""Experiment T4 — Table 4: seed-iterator comparison.

Two reproductions:

1. *Modeled* (calibrated GPU): total exhaustive SHA-3 d=5 time for
   Chase's Algorithm 382, Algorithm 515, and prior work's Gosper hack.
2. *Measured on this host*: raw combination-generation rates of the real
   implementations at 256-bit width — checking that the paper's ordering
   (minimal-change Chase beats index unranking; multiword Gosper pays for
   256-bit arithmetic) is not an artifact of the calibration.
"""

import time

from conftest import comparison_table, record_report

from repro.combinatorics import (
    Algorithm382Iterator,
    Algorithm515Iterator,
    GosperIterator,
)
from repro.devices import GPUModel

PAPER_TABLE_4 = {"chase": 4.67, "alg515": 7.53, "gosper": 6.04}


def test_table4_modeled(benchmark, report):
    gpu = GPUModel()

    def run():
        return {
            it: gpu.search_time("sha3-256", 5, iterator=it) for it in PAPER_TABLE_4
        }

    times = benchmark(run)
    report(
        "table4_iterators_modeled",
        comparison_table(
            "Table 4 — exhaustive SHA-3 d=5 search-only time (s), 1x GPU",
            [
                ("Alg 382 (Chase)", PAPER_TABLE_4["chase"], times["chase"]),
                ("Alg 515", PAPER_TABLE_4["alg515"], times["alg515"]),
                ("Prior work (Gosper)", PAPER_TABLE_4["gosper"], times["gosper"]),
            ],
        ),
    )
    assert times["chase"] < times["gosper"] < times["alg515"]


def _generation_rate(iterator, sample: int) -> float:
    """Combinations *materialized* per second.

    ``current()`` is included on purpose: Algorithm 515's ``advance`` is
    just a rank increment — its real per-combination work (the unranking
    descent) happens when the combination is produced.
    """
    start = time.perf_counter()
    produced = 1
    iterator.current()
    while produced < sample and iterator.advance():
        iterator.current()
        produced += 1
    return produced / (time.perf_counter() - start)


def test_table4_measured_host_rates(benchmark, report):
    """Real 256-bit generators on this host: does Chase still win?"""
    sample = 30_000
    benchmark(lambda: Algorithm382Iterator(256, 5).advance())
    rates = {
        "chase": _generation_rate(Algorithm382Iterator(256, 5), sample),
        "gosper": _generation_rate(GosperIterator(256, 5), sample),
        "alg515": _generation_rate(Algorithm515Iterator(256, 5), sample),
    }
    lines = [
        "Table 4 cross-check — combination generation rate on this host",
        "(pure-Python scalar implementations, 5-subsets of {0..255})",
    ]
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:7s}: {rate:12,.0f} combos/s")
    lines.append(
        "paper ordering chase > gosper > alg515 "
        f"{'HOLDS' if rates['chase'] > rates['gosper'] > rates['alg515'] else 'DIFFERS'}"
        " on this host"
    )
    record_report("table4_iterators_measured", "\n".join(lines))
    # The load-bearing claims: work-efficient Chase beats per-combination
    # unranking, and beats multiword Gosper.
    assert rates["chase"] > rates["alg515"]
    assert rates["chase"] > rates["gosper"]


def test_chase_stepping_benchmark(benchmark):
    """pytest-benchmark datum: per-step cost of Chase at 256-bit width."""
    iterator = Algorithm382Iterator(256, 5)

    def step():
        if not iterator.advance():
            iterator.reset()

    benchmark(step)


def test_alg515_unranking_benchmark(benchmark):
    """pytest-benchmark datum: per-combination cost of 515 unranking."""
    iterator = Algorithm515Iterator(256, 5, use_lookup_table=True)
    state = {"rank": 0}

    def unrank():
        iterator.skip_to(state["rank"] % 1_000_000)
        state["rank"] += 1
        return iterator.current()

    benchmark(unrank)


def test_gosper_stepping_benchmark(benchmark):
    """pytest-benchmark datum: per-step cost of 256-bit Gosper."""
    iterator = GosperIterator(256, 5)

    def step():
        if not iterator.advance():
            iterator.reset()

    benchmark(step)
