"""Benchmark harness plumbing.

Each bench regenerates one table or figure of the paper and registers a
paper-vs-measured report. Reports are printed in the terminal summary
(so they survive pytest's output capture) and written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_REPORTS: list[tuple[str, str]] = []


def record_report(name: str, text: str) -> None:
    """Register a report for terminal display and write it to disk."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def report():
    """Fixture alias for record_report."""
    return record_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name, text in _REPORTS:
        terminalreporter.write_sep("=", f"report: {name}")
        terminalreporter.write_line(text)


def comparison_table(title: str, rows: list[tuple[str, float, float]]) -> str:
    """Render (quantity, paper, measured) rows with deviation column."""
    from repro.analysis.tables import format_table

    body = []
    for quantity, paper, measured in rows:
        deviation = (measured / paper - 1.0) * 100.0 if paper else float("nan")
        body.append(
            [quantity, f"{paper:g}", f"{measured:.4g}", f"{deviation:+.1f}%"]
        )
    return format_table(["quantity", "paper", "reproduced", "dev"], body, title=title)
