"""Extension — APU cost structure from the functional bit-serial simulator.

The calibrated APU model consumes per-PE throughputs derived from the
paper; this bench *derives* the same structure from first principles:
bit-sliced SHA-1 and Keccak implementations (validated against hashlib)
executed on the associative-processor simulator, counting column
operations and live state columns.

Reproduced findings:

* SHA-3 costs ~3x the column ops of SHA-1 per hash — the paper's per-PE
  rate ratio is 84.6k/24.6k = 3.44x;
* SHA-3 needs ~3.5x SHA-1's live state columns — the paper allocates
  2.5x the bit-processors per SHA-3 PE (its 80-vs-32-bit state metric);
* combining both, the whole-chip SHA-3:SHA-1 throughput ratio lands
  within a factor ~1.5 of the paper's measured 8.6x — emergent, not
  calibrated.
"""

from conftest import comparison_table, record_report

from repro.analysis.tables import format_table
from repro.devices.bitserial import hash_cost_profile
from repro.devices.calibration import APU_PE_COUNT, APU_PE_THROUGHPUT


def test_bitserial_cost_structure(benchmark, report):
    profile = benchmark.pedantic(
        lambda: hash_cost_profile(num_pes=2), rounds=1, iterations=1
    )

    rows = [
        [name, f"{p['ops_per_hash']:,.0f}", f"{p['peak_columns']:,.0f}"]
        for name, p in profile.items()
    ]
    op_ratio = profile["sha3-256"]["ops_per_hash"] / profile["sha1"]["ops_per_hash"]
    col_ratio = (
        profile["sha3-256"]["peak_columns"] / profile["sha1"]["peak_columns"]
    )

    paper_rate_ratio = (
        APU_PE_THROUGHPUT["sha1"] / APU_PE_THROUGHPUT["sha3-256"]
    )
    paper_footprint_ratio = 5 / 2  # BPs per PE, Section 3.3
    # Whole-chip throughput ratio combines per-PE rate and PE count.
    paper_chip_ratio = (
        APU_PE_THROUGHPUT["sha1"] * APU_PE_COUNT["sha1"]
    ) / (APU_PE_THROUGHPUT["sha3-256"] * APU_PE_COUNT["sha3-256"])
    emergent_chip_ratio = op_ratio * col_ratio  # ops/hash x PEs displaced

    report(
        "ext_bitserial",
        format_table(
            ["hash", "column ops / hash", "peak live columns"],
            rows,
            title="Bit-serial hash programs on the associative simulator "
            "(hashlib-validated)",
        )
        + "\n\n"
        + comparison_table(
            "Emergent vs paper-calibrated APU cost structure",
            [
                ("SHA-3/SHA-1 per-PE cost ratio", paper_rate_ratio, op_ratio),
                ("SHA-3/SHA-1 state footprint ratio", paper_footprint_ratio, col_ratio),
                ("whole-chip throughput ratio", paper_chip_ratio, emergent_chip_ratio),
            ],
        )
        + "\n(emergent values come from counted column operations of real "
        "bit-sliced programs; 'dev' here measures how well first-principles "
        "simulation explains the paper's measurement)",
    )

    # Same regime: within a factor of 1.6 on each axis.
    assert 1 / 1.6 < op_ratio / paper_rate_ratio < 1.6
    assert 1 / 1.6 < col_ratio / paper_footprint_ratio < 1.6


def test_bitserial_explains_why_rotations_are_free(benchmark, report):
    """Keccak's rho step costs zero ops on this machine; SHA-1's adds
    dominate — the architectural inversion the APU exposes."""
    import numpy as np

    from repro.devices.associative import AssociativeProcessor
    from repro.devices.bitserial import sha1_bitserial, sha3_256_bitserial

    seeds = np.zeros((1, 4), dtype=np.uint64)

    proc1 = AssociativeProcessor(1)
    sha1_bitserial(proc1, seeds)
    adder_ops = (80 * 4 + 5) * 5 * 32
    sha1_adder_fraction = adder_ops / proc1.op_count

    proc3 = AssociativeProcessor(1)
    sha3_256_bitserial(proc3, seeds)

    record_report(
        "ext_bitserial_structure",
        f"SHA-1 on associative hardware: {proc1.op_count:,} ops, "
        f"{sha1_adder_fraction:.0%} spent in ripple-carry adders.\n"
        f"Keccak on associative hardware: {proc3.op_count:,} ops, "
        "0% in adders (none exist), all rho/pi rotations free.\n"
        "Keccak still loses per-PE because theta+chi touch 1600 state "
        "columns 24 times — width, not arithmetic, is its cost.",
    )
    assert sha1_adder_fraction > 0.7

    benchmark(lambda: AssociativeProcessor(1).stats())
