"""Fault-tolerant multi-device dispatch for the search scheduler.

The fleet layer places :mod:`repro.sched` work units across several
modeled device backends, health-checks them with heartbeat probes and
per-device circuit breakers, re-dispatches chunks orphaned by a device
failure onto survivors (preserving the byte-equivalence contract), and
hedges straggler batches onto idle devices with first-result-wins
settlement.

Quick start::

    from repro.engines import build_engine

    engine = build_engine("fleet:host,host,hash=sha1,bs=8192")
    ticket = engine.submit(seed, digest, 3)
    result = ticket.result()
    print(result.fleet.batches_by_device)

Chaos harness::

    from repro.fleet import run_device_loss_storm

    report = run_device_loss_storm(seed=0)
    assert report.passed, report.render()
"""

from __future__ import annotations

from repro.fleet.device import FleetDevice
from repro.fleet.dispatcher import FleetScheduler, FleetSearch
from repro.fleet.engine import DEVICE_WEIGHTS, FleetSearchEngine
from repro.fleet.storm import DeviceLossStormReport, run_device_loss_storm

__all__ = [
    "FleetDevice",
    "FleetScheduler",
    "FleetSearch",
    "FleetSearchEngine",
    "DEVICE_WEIGHTS",
    "DeviceLossStormReport",
    "run_device_loss_storm",
]
