"""Device-loss chaos storm: kill a fleet device mid-run, prove nothing broke.

The scenario the fleet layer exists for: a multi-client serving burst is
in flight when one device abruptly dies (at 25% of completions), stays
dark, and comes back (at 75%). The storm then asserts the protocol-level
invariants:

* **zero lost requests** — every submission resolves to a result or a
  typed :class:`~repro.sched.errors.RequestShed`, never hangs;
* **zero false authentications** — every ``found`` seed re-hashes to its
  client's digest;
* **byte equivalence** — every fleet outcome (found flag, seed bytes,
  distance) matches a single-device
  :class:`~repro.runtime.executor.BatchSearchExecutor` reference run;
* **recovery really happened** — re-dispatched chunks > 0 (orphaned work
  was replayed on survivors) and the killed device is reinstated by the
  health monitor before the fleet closes.

Deterministic by construction: the workload is seeded, the kill/revive
points are completion *counts* (not wall-clock), and the single surviving
host device makes the candidate order the single-engine order.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.engines.registry import build_engine
from repro.hashes.registry import get_hash

from repro.sched.errors import RequestShed
from repro.sched.workload import WorkloadRequest, mixed_workload

from repro.fleet.engine import FleetSearchEngine

__all__ = ["DeviceLossStormReport", "run_device_loss_storm"]


@dataclass
class DeviceLossStormReport:
    """Outcome of one device-loss storm, renderable and assertable."""

    seed: int
    requests: int
    devices: tuple[str, ...]
    victim: str
    killed_after: int
    revived_after: int
    resolved: int = 0
    found: int = 0
    shed: int = 0
    lost_requests: int = 0
    false_authentications: int = 0
    byte_mismatches: int = 0
    redispatched_chunks: int = 0
    reassigned_requests: int = 0
    hedges_launched: int = 0
    quarantines: int = 0
    reinstatements: int = 0
    victim_reinstated: bool = False
    wall_seconds: float = 0.0
    snapshot: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """The storm's hard invariants, as one flag."""
        return (
            self.lost_requests == 0
            and self.false_authentications == 0
            and self.byte_mismatches == 0
            and self.redispatched_chunks > 0
            and self.victim_reinstated
        )

    def render(self) -> str:
        lines = [
            f"device-loss storm  seed={self.seed}  devices={','.join(self.devices)}",
            f"  requests: {self.requests}  resolved: {self.resolved}  "
            f"found: {self.found}  shed: {self.shed}",
            f"  victim {self.victim!r}: killed after {self.killed_after} "
            f"completions, revived after {self.revived_after}",
            f"  re-dispatched chunks: {self.redispatched_chunks}  "
            f"reassigned requests: {self.reassigned_requests}  "
            f"hedges: {self.hedges_launched}",
            f"  quarantines: {self.quarantines}  "
            f"reinstatements: {self.reinstatements}  "
            f"victim reinstated: {self.victim_reinstated}",
            f"  lost: {self.lost_requests}  "
            f"false auths: {self.false_authentications}  "
            f"byte mismatches: {self.byte_mismatches}",
            f"  wall: {self.wall_seconds:.2f}s  "
            f"verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


def _reference_outcomes(
    workload: list[WorkloadRequest], hash_name: str, batch_size: int
) -> dict[str, tuple[bool, bytes | None, int | None]]:
    """Single-device byte-truth: what each search must return."""
    engine = build_engine("batch", hash_name=hash_name, batch_size=batch_size)
    truth = {}
    for request in workload:
        result = engine.search(
            request.base_seed, request.target_digest, request.max_distance
        )
        truth[request.client_id] = (result.found, result.seed, result.distance)
    return truth


def run_device_loss_storm(
    seed: int = 0,
    requests: int = 10,
    depths: tuple[int, ...] = (1, 2, 2, 3),
    hash_name: str = "sha1",
    batch_size: int = 4096,
    devices: tuple[str, ...] = ("host", "host"),
    kill_fraction: float = 0.25,
    revive_fraction: float = 0.75,
    heartbeat_seconds: float = 0.01,
    recovery_seconds: float = 0.1,
    reinstate_timeout: float = 3.0,
) -> DeviceLossStormReport:
    """Kill ``devices[-1]`` at 25% of completions, revive at 75%, verify.

    Kill/revive points are completion counts so the storm is seeded and
    repeatable; the victim is the *last* device so device 0 always
    survives to replay orphaned chunks.
    """
    if len(devices) < 2:
        raise ValueError("the storm needs at least two devices (one survives)")
    algo = get_hash(hash_name)
    workload = mixed_workload(algo, requests, depths, seed)
    truth = _reference_outcomes(workload, hash_name, batch_size)

    engine = FleetSearchEngine(
        *devices,
        hash_name=hash_name,
        batch_size=batch_size,
        heartbeat_seconds=heartbeat_seconds,
        recovery_seconds=recovery_seconds,
        fault_seed=seed,
    )
    fleet = engine.scheduler
    victim = fleet.devices[-1].name
    kill_after = max(1, math.ceil(kill_fraction * requests))
    revive_after = max(kill_after + 1, math.ceil(revive_fraction * requests))
    report = DeviceLossStormReport(
        seed=seed,
        requests=requests,
        devices=tuple(devices),
        victim=victim,
        killed_after=kill_after,
        revived_after=revive_after,
    )

    completions = 0
    switch_lock = threading.Lock()

    def _on_done(_ticket) -> None:
        nonlocal completions
        with switch_lock:
            completions += 1
            count = completions
        if count == kill_after:
            fleet.kill_device(victim)
        elif count == revive_after:
            fleet.revive_device(victim)

    start = time.perf_counter()
    tickets = []
    for request in workload:
        ticket = engine.submit(
            request.base_seed,
            request.target_digest,
            request.max_distance,
            client_id=request.client_id,
        )
        ticket.add_done_callback(_on_done)
        tickets.append((request, ticket))

    for request, ticket in tickets:
        try:
            result = ticket.result(timeout=120.0)
        except RequestShed:
            report.resolved += 1
            report.shed += 1
            continue
        except TimeoutError:
            report.lost_requests += 1
            continue
        report.resolved += 1
        if result.found:
            report.found += 1
            assert result.seed is not None
            if algo.hash_seed(result.seed) != request.target_digest:
                report.false_authentications += 1
        expected = truth[request.client_id]
        if (result.found, result.seed, result.distance) != expected:
            report.byte_mismatches += 1

    # The storm may finish before 75% of completions (all resolved while
    # the victim was dark) — make sure the revive switch has flipped,
    # then give the monitor a bounded window to reinstate the victim.
    fleet.revive_device(victim)
    deadline = time.perf_counter() + reinstate_timeout
    while time.perf_counter() < deadline:
        if fleet.device(victim).health == "healthy":
            break
        time.sleep(heartbeat_seconds)
    report.victim_reinstated = fleet.device(victim).health == "healthy"
    report.wall_seconds = time.perf_counter() - start

    snapshot = fleet.snapshot()
    engine.close()
    report.snapshot = snapshot
    report.redispatched_chunks = int(snapshot["redispatched_chunks"])
    report.reassigned_requests = int(snapshot["reassigned_requests"])
    report.hedges_launched = int(snapshot["hedges_launched"])
    report.quarantines = int(snapshot["quarantines"])
    report.reinstatements = int(snapshot["reinstatements"])
    return report
