"""One fleet member: a device slot with health, faults, and accounting.

A :class:`FleetDevice` bundles everything the dispatcher needs to know
about one modeled accelerator:

* its own :class:`~repro.sched.batcher.ContinuousBatcher` (the kernel
  path — per-device so batch counters and fairness state stay local);
* an optional :class:`~repro.devices.base.DeviceModel` whose fault
  injector (if any) schedules failures and slowdowns per batch;
* a per-device :class:`~repro.reliability.breaker.CircuitBreaker` that
  turns consecutive failures into quarantine (open), probation
  (half-open), and reinstatement (closed) — the same machine the serving
  layer already uses for backend failover;
* a ``kill()`` / ``revive()`` switch the chaos harness flips mid-run.

The kill switch is checked *twice* per batch — before the kernel and
again after it. The second check is what guarantees re-dispatch of
in-flight work: a device killed mid-hash discards its results and raises
:class:`~repro.devices.flaky.DeviceFailure`, so the dispatcher replays
the batch's chunks on a survivor instead of trusting output from a
device that died under it.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque

import numpy as np

from repro.devices.base import DeviceModel
from repro.devices.flaky import DeviceFailure
from repro.hashes.registry import HashAlgorithm
from repro.reliability.breaker import BreakerState, CircuitBreaker

from repro.sched.batcher import BatchSlice, ContinuousBatcher, SliceOutcome

__all__ = ["FleetDevice"]

#: EWMA weight of the newest batch in per-device latency/rate estimates.
_EWMA_ALPHA = 0.3

#: Cap on injected slow-down sleep per batch, so a misconfigured factor
#: cannot wedge a device loop.
_MAX_THROTTLE_SLEEP = 1.0


class FleetDevice:
    """A health-checked device slot the fleet dispatcher places work on."""

    def __init__(
        self,
        name: str,
        algo: HashAlgorithm,
        *,
        fixed_padding: bool = True,
        model: DeviceModel | None = None,
        weight: float = 1.0,
        fairness_window: int = 64,
        breaker: CircuitBreaker | None = None,
    ):
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.name = name
        self.algo = algo
        self.batcher = ContinuousBatcher(algo, fixed_padding)
        self.model = model
        #: Fault stream discovered on the model (FlakyDeviceModel), if any.
        self.injector = getattr(model, "injector", None)
        self.weight = weight
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=2, recovery_seconds=0.25)
        )
        self.killed = False
        #: Set once per quarantine episode; cleared on reinstatement.
        self.was_quarantined = False
        # -- dispatcher state (guarded by the scheduler's lock) --
        self.inflight = None  # the device's current _InflightBatch, if any
        self.recent_lanes: deque[str] = deque(maxlen=fairness_window)
        self.last_primary = None
        # -- accounting --
        self.batches = 0
        self.rows_hashed = 0
        self.failures = 0
        self.slowdowns = 0
        self.probes = 0
        self.ewma_batch_seconds: float | None = None
        self.ewma_rate: float | None = None

    # -- chaos switch ----------------------------------------------------

    def kill(self) -> None:
        """Simulate abrupt device loss; in-flight work will be discarded."""
        self.killed = True

    def revive(self) -> None:
        """Bring the hardware back; the breaker still gates reinstatement."""
        self.killed = False

    # -- health ----------------------------------------------------------

    @property
    def health(self) -> str:
        """``healthy`` / ``quarantined`` (open) / ``probation`` (half-open)."""
        state = self.breaker.state
        if state == BreakerState.OPEN:
            return "quarantined"
        if state == BreakerState.HALF_OPEN:
            return "probation"
        return "healthy"

    @property
    def placeable(self) -> bool:
        """Whether the dispatcher may assign new work to this device."""
        return self.breaker.state == BreakerState.CLOSED

    def probe(self) -> bool:
        """One heartbeat: a real (tiny) hash through this device's path.

        Records the outcome on the breaker, so failed probes quarantine
        an idle dead device and successful probes close a half-open one
        (probation -> reinstatement). The fault injector is *not*
        consulted: probes observe health, they do not advance which
        searches fail.
        """
        self.probes += 1
        ok = not self.killed
        if ok and self.model is not None:
            ok = bool(self.model.health_probe())
        if ok:
            try:
                self.algo.hash_seeds_batch(np.zeros((1, 4), dtype=np.uint64))
            except Exception:
                ok = False
        if ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        return ok

    # -- the kernel path -------------------------------------------------

    def run_batch(self, slices: tuple[BatchSlice, ...]) -> list[SliceOutcome]:
        """Run one fused batch, subject to this device's faults.

        Raises :class:`DeviceFailure` (and records a breaker failure)
        when the device is killed or its fault stream schedules a
        failure; a scheduled slowdown stretches real wall time and the
        reported per-slice seconds.
        """
        if self.killed:
            self._fail()
        fault = self.injector.next() if self.injector is not None else None
        if fault == "fail":
            self._fail()
        start = time.perf_counter()
        outcomes = self.batcher.run(list(slices))
        if fault == "slow":
            self.slowdowns += 1
            factor = getattr(
                getattr(self.injector, "spec", None), "device_slow_factor", 4.0
            )
            elapsed = time.perf_counter() - start
            time.sleep(min(elapsed * (factor - 1.0), _MAX_THROTTLE_SLEEP))
            outcomes = [
                dataclasses.replace(o, seconds=o.seconds * factor)
                for o in outcomes
            ]
        if self.killed:
            # Killed mid-hash: the results are from a dead device — drop
            # them and let the dispatcher re-dispatch the chunks.
            self._fail()
        self.breaker.record_success()
        wall = time.perf_counter() - start
        rows = sum(o.rows for o in outcomes)
        self.batches += 1
        self.rows_hashed += rows
        rate = rows / max(wall, 1e-9)
        self.ewma_batch_seconds = (
            wall
            if self.ewma_batch_seconds is None
            else (1 - _EWMA_ALPHA) * self.ewma_batch_seconds + _EWMA_ALPHA * wall
        )
        self.ewma_rate = (
            rate
            if self.ewma_rate is None
            else (1 - _EWMA_ALPHA) * self.ewma_rate + _EWMA_ALPHA * rate
        )
        return outcomes

    def _fail(self) -> None:
        self.failures += 1
        self.breaker.record_failure()
        raise DeviceFailure(self.name, self.batches)

    # -- observation -----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Per-device counters for the fleet snapshot."""
        return {
            "health": self.health,
            "killed": self.killed,
            "weight": self.weight,
            "batches": self.batches,
            "rows_hashed": self.rows_hashed,
            "failures": self.failures,
            "slowdowns": self.slowdowns,
            "probes": self.probes,
            "ewma_batch_seconds": self.ewma_batch_seconds,
            "ewma_rate": self.ewma_rate,
            "breaker_transitions": self.breaker.transition_names(),
        }
