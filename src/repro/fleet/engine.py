"""``fleet:`` engine: the multi-device dispatcher behind the engine protocol.

Device tokens compose in the spec string, so a mixed fleet is one line::

    fleet:host,host                    # two identical host devices
    fleet:gpu,flaky-apu,hash=sha1      # healthy GPU + fault-injected APU
    fleet:host,slow-host,hedge=6       # a straggler to exercise hedging

Token grammar (resolved per device, left to right):

* ``host`` / ``gpu`` / ``apu`` / ``cpu`` — a healthy device; the name
  picks the placement weight (host/gpu 1.0, apu 0.6, cpu 0.3);
* ``flaky-<name>`` — the same device wrapped in
  :meth:`~repro.devices.flaky.FlakyDeviceModel.from_token`, scheduling
  deterministic failure episodes from ``fault_seed``;
* ``slow-<name>`` — permanently throttled (every batch slowed by
  ``slow_factor``), never failing — the canonical hedging straggler.
"""

from __future__ import annotations

from repro.devices.flaky import FlakyDeviceModel
from repro.engines.hooks import EngineHooks
from repro.engines.result import SearchResult
from repro.runtime.executor import BatchSearchExecutor
from repro.tenancy.context import TenantContext
from repro.tenancy.registry import TenantRegistry

from repro.sched.policy import PolicyConfig, SchedulingPolicy
from repro.sched.units import DEFAULT_CHUNK_RANKS

from repro.fleet.device import FleetDevice
from repro.fleet.dispatcher import FleetScheduler, FleetSearch

__all__ = ["FleetSearchEngine", "DEVICE_WEIGHTS"]

#: Placement weight per base device name (relative modeled throughput).
DEVICE_WEIGHTS = {"host": 1.0, "gpu": 1.0, "apu": 0.6, "cpu": 0.3}


def _base_name(token: str) -> str:
    for prefix in ("flaky-", "slow-"):
        if token.startswith(prefix):
            return token[len(prefix) :]
    return token


def _build_device(
    token: str,
    index: int,
    algo,
    *,
    fixed_padding: bool,
    fairness_window: int,
    fault_seed: int,
    episodes: int,
    episode_length: int,
    slow_factor: float,
    failure_threshold: int,
    recovery_seconds: float,
) -> FleetDevice:
    base = _base_name(token)
    if base not in DEVICE_WEIGHTS:
        raise ValueError(
            f"unknown device token {token!r}; base must be one of: "
            f"{', '.join(sorted(DEVICE_WEIGHTS))}"
        )
    model = None
    if token != base:
        model = FlakyDeviceModel.from_token(
            token,
            seed=fault_seed + index,
            episodes=episodes,
            episode_length=episode_length,
            slow_factor=slow_factor,
        )
    from repro.reliability.breaker import CircuitBreaker

    return FleetDevice(
        f"{token}-{index}",
        algo,
        fixed_padding=fixed_padding,
        model=model,
        weight=DEVICE_WEIGHTS[base],
        fairness_window=fairness_window,
        breaker=CircuitBreaker(
            failure_threshold=failure_threshold,
            recovery_seconds=recovery_seconds,
        ),
    )


class FleetSearchEngine:
    """Health-checked multi-device dispatch as a drop-in engine."""

    def __init__(
        self,
        *devices: str,
        hash_name: str = "sha3-256",
        batch_size: int = 8192,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
        cache: bool = True,
        warm: int = 0,
        chunk_ranks: int = DEFAULT_CHUNK_RANKS,
        max_queue: int = 256,
        deep_distance: int = 3,
        fairness_cap: float = 0.75,
        aging_seconds: float = 30.0,
        heartbeat_seconds: float = 0.02,
        hedge_factor: float = 4.0,
        hedge_min_seconds: float = 0.05,
        no_device_grace: float = 2.0,
        failure_threshold: int = 2,
        recovery_seconds: float = 0.25,
        fault_seed: int = 0,
        fault_episodes: int = 1,
        fault_episode_length: int = 6,
        slow_factor: float = 8.0,
        scheduler: FleetScheduler | None = None,
        tenants: TenantRegistry | None = None,
    ):
        if scheduler is not None:
            self.scheduler = scheduler
            return
        tokens = tuple(devices) if devices else ("host", "host")
        executor = BatchSearchExecutor(
            hash_name=hash_name,
            batch_size=batch_size,
            iterator=iterator,
            fixed_padding=fixed_padding,
            hooks=None,
            cache=cache,
            warm=warm,
        )
        policy = SchedulingPolicy(
            PolicyConfig(
                deep_distance=deep_distance,
                fairness_cap=fairness_cap,
                aging_seconds=aging_seconds if aging_seconds > 0 else None,
            ),
            tenants=tenants,
        )
        fleet_devices = [
            _build_device(
                token,
                index,
                executor.algo,
                fixed_padding=fixed_padding,
                fairness_window=policy.config.fairness_window,
                fault_seed=fault_seed,
                episodes=fault_episodes,
                episode_length=fault_episode_length,
                slow_factor=slow_factor,
                failure_threshold=failure_threshold,
                recovery_seconds=recovery_seconds,
            )
            for index, token in enumerate(tokens)
        ]
        spec = f"fleet:{','.join(tokens)},hash={executor.hash_name},bs={batch_size}"
        self.scheduler = FleetScheduler(
            fleet_devices,
            executor,
            hooks=hooks,
            chunk_ranks=max(chunk_ranks, batch_size),
            max_queue=max_queue,
            policy=policy,
            heartbeat_seconds=heartbeat_seconds,
            hedge_factor=hedge_factor if hedge_factor > 0 else None,
            hedge_min_seconds=hedge_min_seconds,
            no_device_grace=no_device_grace,
            spec_string=spec,
        )

    # -- engine geometry (what wrappers and engine_target read) ---------

    @property
    def algo(self):
        """The hash algorithm every fleet device searches with."""
        return self.scheduler.executor.algo

    @property
    def hash_name(self) -> str:
        return self.scheduler.hash_name

    @property
    def batch_size(self) -> int:
        return self.scheduler.batch_size

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        return self.scheduler.describe()

    def throughput_probe(self, num_seeds: int = 50000, **kwargs) -> object:
        """Kernel throughput of one device's path (see executor)."""
        return self.scheduler.executor.throughput_probe(num_seeds, **kwargs)

    # -- searching ------------------------------------------------------

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """One blocking search through the fleet's shared work stream."""
        ticket = self.scheduler.submit(
            base_seed,
            target_digest,
            max_distance,
            time_budget=time_budget,
        )
        return ticket.result()

    def submit(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        *,
        time_budget: float | None = None,
        deadline_seconds: float | None = None,
        client_id: str = "",
        tenant: TenantContext | str | None = None,
    ) -> FleetSearch:
        """Non-blocking admission; returns the fleet's ticket."""
        return self.scheduler.submit(
            base_seed,
            target_digest,
            max_distance,
            time_budget=time_budget,
            deadline_seconds=deadline_seconds,
            client_id=client_id,
            tenant=tenant,
        )

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Close the underlying fleet (see ``FleetScheduler.close``)."""
        self.scheduler.close(drain=drain)

    def __enter__(self) -> "FleetSearchEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
