"""Fault-tolerant multi-device dispatch over the scheduler's work units.

:class:`FleetScheduler` is the multi-device sibling of
:class:`~repro.sched.scheduler.SearchScheduler`: the same admission
policy, lanes, chunk cursors, and continuous batcher — but with one
dispatcher thread *per device* plus a monitor thread, so several modeled
accelerators serve the shared request stream concurrently.

Placement and recovery rules:

* **Affinity** — each admitted request is assigned to the least-loaded
  placeable device and stays there; all of a request's batches run on
  its device, so the within-request candidate order is the single-engine
  order and results stay byte-identical.
* **At most one in-flight batch per request** — assembly skips requests
  whose previous batch has not settled, so outcomes commit in protocol
  order even when a hedge is racing the primary.
* **Re-dispatch** — a device that fails mid-batch (fault injection or
  the chaos kill switch) discards its results; the batch's chunk slices
  are pushed back onto each request's cursor *front*, so a survivor
  replays exactly the orphaned candidates before advancing.
* **Quarantine / probation** — each device's circuit breaker turns
  consecutive failures into quarantine; the monitor probes half-open
  devices and reinstates them on a successful heartbeat, re-placing any
  parked requests.
* **Hedging** — an idle device duplicates another device's unsettled
  batch once it is past the straggler latency threshold; the first
  result wins (a settle flag CASed under the fleet lock), the loser's
  output is discarded.
* **Grace shedding** — when every device has been quarantined for
  longer than the grace window, queued requests are shed with the typed
  reason ``no_healthy_devices`` instead of hanging their callers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Sequence

from repro._bitutils import seed_to_words
from repro.devices.flaky import DeviceFailure
from repro.engines.hooks import EngineHooks
from repro.engines.result import (
    AmortizationStats,
    FleetStats,
    SearchResult,
    ShellStats,
)
from repro.runtime.executor import BatchSearchExecutor
from repro.tenancy.context import DEFAULT_TENANT, TenantContext

from repro.sched.batcher import BatchSlice, SliceOutcome, UnitCursor
from repro.sched.errors import (
    SHED_DEADLINE_EXPIRED,
    SHED_NO_DEVICES,
    SHED_SHUTDOWN,
    RequestShed,
    SchedulerClosed,
)
from repro.sched.policy import SchedulingPolicy
from repro.sched.scheduler import ScheduledSearch
from repro.sched.units import DEFAULT_CHUNK_RANKS, decompose_search

from repro.fleet.device import FleetDevice

__all__ = ["FleetSearch", "FleetScheduler"]

#: EWMA weight of the newest batch in the fleet throughput estimate.
_THROUGHPUT_ALPHA = 0.3


class FleetSearch(ScheduledSearch):
    """One admitted request plus its fleet placement state."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        #: Current device affinity (a FleetDevice), or None while parked.
        self.device: FleetDevice | None = None
        #: The unsettled batch carrying this request's chunks, if any.
        self.inflight_batch: "_InflightBatch | None" = None
        self.batches_by_device: dict[str, int] = {}
        self.finder_device: str | None = None
        self.redispatched = 0
        self.hedged = 0
        self.reassignments = 0

    def fleet_stats(self) -> FleetStats:
        """This request's :class:`FleetStats`."""
        return FleetStats(
            devices=tuple(sorted(self.batches_by_device)),
            finder_device=self.finder_device,
            batches_by_device=tuple(sorted(self.batches_by_device.items())),
            redispatched_chunks=self.redispatched,
            hedged_batches=self.hedged,
            reassignments=self.reassignments,
        )


class _InflightBatch:
    """One fused batch handed to a device; settle-once under the lock."""

    __slots__ = (
        "device",
        "slices",
        "started",
        "settled",
        "hedge_device",
        "primary_failed",
    )

    def __init__(
        self, device: FleetDevice, slices: tuple[BatchSlice, ...], started: float
    ):
        self.device = device
        self.slices = slices
        self.started = started
        #: True once exactly one runner committed (or the batch was
        #: pushed back); every other runner discards its results.
        self.settled = False
        #: The device hedging this batch, if a hedge was launched.
        self.hedge_device: FleetDevice | None = None
        #: The primary died while a hedge was live; the hedge resolves
        #: the batch (commit on success, push-back on its own failure).
        self.primary_failed = False

    @property
    def requests(self) -> list[FleetSearch]:
        return [piece.key for piece in self.slices]  # type: ignore[misc]


class FleetScheduler:
    """Health-checked multi-device dispatch with re-dispatch and hedging."""

    def __init__(
        self,
        devices: Sequence[FleetDevice],
        executor: BatchSearchExecutor,
        *,
        hooks: EngineHooks | None = None,
        chunk_ranks: int = DEFAULT_CHUNK_RANKS,
        max_queue: int = 256,
        policy: SchedulingPolicy | None = None,
        throughput_hint: float | None = None,
        heartbeat_seconds: float = 0.02,
        hedge_factor: float | None = 4.0,
        hedge_min_seconds: float = 0.05,
        no_device_grace: float = 2.0,
        tick_seconds: float = 0.005,
        spec_string: str | None = None,
    ):
        if not devices:
            raise ValueError("a fleet needs at least one device")
        if len({d.name for d in devices}) != len(devices):
            raise ValueError("device names must be unique")
        if chunk_ranks < executor.batch_size:
            raise ValueError("chunk_ranks must be at least batch_size")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.devices: tuple[FleetDevice, ...] = tuple(devices)
        #: Shared mask/plan pipeline; masks are pure combinatorics, so
        #: one executor feeds every device's cursor identically.
        self._executor = executor
        self.hooks = hooks
        self.chunk_ranks = chunk_ranks
        self.max_queue = max_queue
        self.policy = policy if policy is not None else SchedulingPolicy()
        self._heartbeat = heartbeat_seconds
        self._hedge_factor = (
            hedge_factor if hedge_factor is not None and hedge_factor > 0 else None
        )
        self._hedge_min_seconds = hedge_min_seconds
        self._no_device_grace = no_device_grace
        self._tick = tick_seconds
        self._spec = spec_string
        self._wake = threading.Condition()
        self._active: list[FleetSearch] = []
        #: Fleet-wide (tenant_id, rows) outcome window: fair share is
        #: enforced over the whole fleet's capacity, not per device.
        self._recent_tenant_rows: deque[tuple[str, int]] = deque(
            maxlen=self.policy.config.fairness_window
        )
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._drain = True
        self._seq = 0
        self._throughput: float | None = throughput_hint
        self._no_healthy_since: float | None = None
        # -- counters (guarded by _wake's lock) --
        self._admitted = 0
        self._completed = 0
        self._found = 0
        self._timed_out = 0
        self._shed: dict[str, int] = {}
        self._preempted = 0
        self._aged_promotions = 0
        self._peak_depth = 0
        self._batches_by_lane: dict[str, int] = {}
        self._redispatched = 0
        self._reassigned = 0
        self._hedges_launched = 0
        self._hedge_wins = 0
        self._hedges_cancelled = 0
        self._quarantines = 0
        self._reinstatements = 0
        self._tenant_admitted: dict[str, int] = {}
        self._tenant_shed: dict[str, int] = {}
        self._tenant_rows: dict[str, int] = {}

    # -- public geometry ------------------------------------------------

    @property
    def executor(self) -> BatchSearchExecutor:
        """The shared mask/plan pipeline behind every device cursor."""
        return self._executor

    @property
    def batch_size(self) -> int:
        return self._executor.batch_size

    @property
    def hash_name(self) -> str:
        return self._executor.hash_name

    def describe(self) -> str:
        """Canonical ``fleet:`` spec string for this configuration."""
        if self._spec is not None:
            return self._spec
        names = ",".join(d.name for d in self.devices)
        return (
            f"fleet:{names},hash={self.hash_name},bs={self.batch_size}"
        )

    def device(self, name: str) -> FleetDevice:
        """The fleet member called ``name`` (raises ``KeyError``)."""
        for candidate in self.devices:
            if candidate.name == name:
                return candidate
        raise KeyError(
            f"no device {name!r}; fleet has: "
            f"{', '.join(d.name for d in self.devices)}"
        )

    def kill_device(self, name: str) -> None:
        """Chaos switch: abruptly lose one device (in-flight work too)."""
        self.device(name).kill()
        with self._wake:
            self._wake.notify_all()

    def revive_device(self, name: str) -> None:
        """Bring a killed device back; probes reinstate it via probation."""
        self.device(name).revive()
        with self._wake:
            self._wake.notify_all()

    def prime_throughput(self, hashes_per_second: float) -> None:
        """Seed the admission controller's fleet-throughput estimate."""
        if hashes_per_second <= 0:
            raise ValueError("throughput must be positive")
        with self._wake:
            self._throughput = hashes_per_second

    # -- submission -----------------------------------------------------

    def submit(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        *,
        time_budget: float | None = None,
        deadline_seconds: float | None = None,
        client_id: str = "",
        tenant: TenantContext | str | None = None,
    ) -> FleetSearch:
        """Admit one search and place it on the least-loaded device.

        Same contract as :meth:`SearchScheduler.submit`; when no device
        is placeable the request is *parked* and either placed on the
        next reinstatement or shed (``no_healthy_devices``) once the
        whole fleet stays dark past the grace window.
        """
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if isinstance(tenant, TenantContext):
            tenant_id = tenant.tenant_id
        else:
            tenant_id = tenant or DEFAULT_TENANT
        now = time.perf_counter()
        units = decompose_search(max_distance, self.chunk_ranks)
        with self._wake:
            if self._closed:
                raise SchedulerClosed("fleet scheduler is closed")
            reason = self.policy.admission_shed_reason(
                queue_depth=len(self._active),
                max_queue=self.max_queue,
                deadline_seconds=deadline_seconds,
                throughput=self._throughput,
                tenant_id=tenant_id,
            )
            if reason is not None:
                self._shed[reason] = self._shed.get(reason, 0) + 1
                self._tenant_shed[tenant_id] = (
                    self._tenant_shed.get(tenant_id, 0) + 1
                )
                raise RequestShed(reason, f"client {client_id!r}")
            self._seq += 1
            request = FleetSearch(
                seq=self._seq,
                client_id=client_id,
                base_words=seed_to_words(base_seed),
                target_words=self._executor.algo.digest_to_words(target_digest),
                max_distance=max_distance,
                lane=self.policy.lane_of(max_distance, deadline_seconds),
                submitted_at=now,
                time_budget=time_budget,
                expiry=None if time_budget is None else now + time_budget,
                deadline=(
                    None if deadline_seconds is None else now + deadline_seconds
                ),
                deadline_seconds=deadline_seconds,
                cursor=UnitCursor(self._executor, units),
                chunks_total=len(units),
                tenant_id=tenant_id,
            )
            request.device = self._place_locked()
            self._admitted += 1
            self._tenant_admitted[tenant_id] = (
                self._tenant_admitted.get(tenant_id, 0) + 1
            )
            self._active.append(request)
            self._peak_depth = max(self._peak_depth, len(self._active))
            self._ensure_threads_locked()
            self._wake.notify_all()
        return request

    def _place_locked(self) -> FleetDevice | None:
        placeable = [d for d in self.devices if d.placeable]
        if not placeable:
            return None
        return min(placeable, key=self._load_locked)

    def _load_locked(self, device: FleetDevice) -> float:
        load = sum(
            r.remaining_work for r in self._active if r.device is device
        )
        return load / device.weight

    def _ensure_threads_locked(self) -> None:
        if self._threads:
            return
        for device in self.devices:
            thread = threading.Thread(
                target=self._device_loop,
                args=(device,),
                name=f"rbc-fleet-{device.name}",
                daemon=True,
            )
            self._threads.append(thread)
        monitor = threading.Thread(
            target=self._monitor_loop, name="rbc-fleet-monitor", daemon=True
        )
        self._threads.append(monitor)
        for thread in self._threads:
            thread.start()

    # -- device loops ---------------------------------------------------

    def _exit_locked(self) -> bool:
        return self._closed and (not self._drain or not self._active)

    def _device_loop(self, device: FleetDevice) -> None:
        while True:
            expired: list[tuple[FleetSearch, str]] = []
            drained: list[FleetSearch] = []
            kind: str | None = None
            inflight: _InflightBatch | None = None
            with self._wake:
                if self._exit_locked():
                    return
                now = time.perf_counter()
                expired = self._expire_locked(now)
                if not expired:
                    kind, inflight, drained = self._assemble_locked(device, now)
                    if kind is None and not drained:
                        self._wake.wait(timeout=self._tick)
                        if self._exit_locked():
                            return
            for request, why in expired:
                if why == "deadline":
                    self._finalize_shed(request, SHED_DEADLINE_EXPIRED)
                else:
                    self._finalize_result(request, timed_out=True)
            for request in drained:
                self._finalize_result(request, timed_out=False)
            if kind == "batch":
                assert inflight is not None
                self._run_primary(device, inflight)
            elif kind == "hedge":
                assert inflight is not None
                self._run_hedge(device, inflight)

    def _expire_locked(
        self, now: float
    ) -> list[tuple[FleetSearch, str]]:
        """Deadline/budget expiry for settled requests (lock held)."""
        expired: list[tuple[FleetSearch, str]] = []
        for request in self._active:
            if request.inflight_batch is not None:
                continue
            if request.deadline is not None and now > request.deadline:
                expired.append((request, "deadline"))
            elif (
                request.expiry is not None
                and now > request.expiry
                and (
                    request.batches >= 1
                    or now > request.expiry + (request.time_budget or 0.0)
                )
            ):
                expired.append((request, "budget"))
        for request, _ in expired:
            self._active.remove(request)
        return expired

    def _assemble_locked(
        self, device: FleetDevice, now: float
    ) -> tuple[str | None, _InflightBatch | None, list[FleetSearch]]:
        """Build this device's next batch, or find a hedge (lock held)."""
        if not device.placeable:
            return None, None, []
        runnable = [
            r
            for r in self._active
            if r.device is device and r.inflight_batch is None
        ]
        if not runnable:
            hedge = self._find_hedge_locked(device, now)
            if hedge is not None:
                return "hedge", hedge, []
            return None, None, []
        self._aged_promotions += self.policy.apply_aging(runnable, now)
        primary = self.policy.pick(
            runnable, device.recent_lanes, self._recent_tenant_rows
        )
        last = device.last_primary
        if (
            last is not None
            and last is not primary
            and not last.done()
            and last in runnable
        ):
            last.preemptions += 1
            self._preempted += 1
        device.last_primary = primary

        slices: list[BatchSlice] = []
        drained: list[FleetSearch] = []
        room = self.batch_size
        for request in self.policy.fill_order(
            runnable, primary, self._recent_tenant_rows
        ):
            if room <= 0:
                break
            taken = request.cursor.take(room)
            if taken is None:
                drained.append(request)
                continue
            distance, masks = taken
            slices.append(
                BatchSlice(
                    key=request,
                    distance=distance,
                    masks=masks,
                    base_words=request.base_words,
                    target_words=request.target_words,
                )
            )
            room -= masks.shape[0]
        for request in drained:
            self._active.remove(request)
        if not slices:
            return None, None, drained
        inflight = _InflightBatch(device, tuple(slices), now)
        for request in inflight.requests:
            request.inflight_batch = inflight
        device.inflight = inflight
        device.recent_lanes.append(primary.lane)
        self._batches_by_lane[primary.lane] = (
            self._batches_by_lane.get(primary.lane, 0) + 1
        )
        return "batch", inflight, drained

    def _find_hedge_locked(
        self, device: FleetDevice, now: float
    ) -> _InflightBatch | None:
        """An unsettled straggler batch on another device worth hedging."""
        if self._hedge_factor is None:
            return None
        ewmas = [
            d.ewma_batch_seconds
            for d in self.devices
            if d.ewma_batch_seconds is not None
        ]
        threshold = self._hedge_min_seconds
        if ewmas:
            threshold = max(
                threshold, self._hedge_factor * (sum(ewmas) / len(ewmas))
            )
        for other in self.devices:
            if other is device:
                continue
            inflight = other.inflight
            if (
                inflight is None
                or inflight.settled
                or inflight.hedge_device is not None
                or inflight.primary_failed
            ):
                continue
            if now - inflight.started >= threshold:
                inflight.hedge_device = device
                self._hedges_launched += 1
                for request in inflight.requests:
                    request.hedged += 1
                return inflight
        return None

    def _run_primary(self, device: FleetDevice, inflight: _InflightBatch) -> None:
        try:
            outcomes = device.run_batch(inflight.slices)
        except DeviceFailure:
            self._on_device_failure(device, inflight)
            return
        self._commit(inflight, outcomes, device)

    def _run_hedge(self, device: FleetDevice, inflight: _InflightBatch) -> None:
        # The early-exit check: the primary may have settled the batch
        # while this hedge was queued behind the lock — cancel before
        # paying for the kernel.
        with self._wake:
            if inflight.settled:
                inflight.hedge_device = None
                self._hedges_cancelled += 1
                return
        try:
            outcomes = device.run_batch(inflight.slices)
        except DeviceFailure:
            self._on_device_failure(device, inflight)
            return
        self._commit(inflight, outcomes, device)

    # -- settlement -----------------------------------------------------

    def _commit(
        self,
        inflight: _InflightBatch,
        outcomes: list[SliceOutcome],
        winner: FleetDevice,
    ) -> None:
        """First-result-wins settlement plus per-request accounting."""
        found: list[tuple[FleetSearch, SliceOutcome]] = []
        hook_calls: list[tuple[int, int]] = []
        with self._wake:
            if inflight.settled:
                # Lost the race: the other runner already committed.
                self._hedges_cancelled += 1
                return
            inflight.settled = True
            if inflight.device.inflight is inflight:
                inflight.device.inflight = None
            hedge_won = winner is not inflight.device
            if hedge_won:
                self._hedge_wins += 1
            now = time.perf_counter()
            shared = len(inflight.slices) > 1
            total_rows = sum(outcome.rows for outcome in outcomes)
            total_seconds = max(
                sum(outcome.seconds for outcome in outcomes), 1e-9
            )
            rate = total_rows / total_seconds
            self._throughput = (
                rate
                if self._throughput is None
                else (1 - _THROUGHPUT_ALPHA) * self._throughput
                + _THROUGHPUT_ALPHA * rate
            )
            for outcome in outcomes:
                request: FleetSearch = outcome.key  # type: ignore[assignment]
                request.inflight_batch = None
                if request.device is not winner and (
                    hedge_won or request.device is None
                ):
                    # The winner proved responsive — move affinity there.
                    if request.device is not None:
                        request.reassignments += 1
                        self._reassigned += 1
                    request.device = winner
                if request.first_batch_at is None:
                    request.first_batch_at = now
                request.batches += 1
                if shared:
                    request.shared_batches += 1
                request.seeds_hashed += outcome.rows
                request.remaining_work = max(
                    0, request.remaining_work - outcome.rows
                )
                request.shell_hashed[outcome.distance] = (
                    request.shell_hashed.get(outcome.distance, 0) + outcome.rows
                )
                request.shell_seconds[outcome.distance] = (
                    request.shell_seconds.get(outcome.distance, 0.0)
                    + outcome.seconds
                )
                request.batches_by_device[winner.name] = (
                    request.batches_by_device.get(winner.name, 0) + 1
                )
                self._recent_tenant_rows.append(
                    (request.tenant_id, outcome.rows)
                )
                self._tenant_rows[request.tenant_id] = (
                    self._tenant_rows.get(request.tenant_id, 0) + outcome.rows
                )
                hook_calls.append((outcome.distance, outcome.rows))
                if outcome.seed is not None:
                    request.finder_device = winner.name
                    self._active.remove(request)
                    found.append((request, outcome))
            self._wake.notify_all()
        on_batch = self.hooks.on_batch if self.hooks is not None else None
        if on_batch is not None:
            for distance, rows in hook_calls:
                on_batch(distance, rows)
        for request, outcome in found:
            self._finalize_result(
                request,
                timed_out=False,
                seed=outcome.seed,
                distance=outcome.distance,
            )

    def _on_device_failure(
        self, device: FleetDevice, inflight: _InflightBatch
    ) -> None:
        """A device raised mid-batch: re-dispatch, maybe quarantine."""
        with self._wake:
            is_primary = inflight.device is device
            if is_primary and device.inflight is inflight:
                device.inflight = None
            if not inflight.settled:
                if is_primary:
                    if inflight.hedge_device is not None:
                        # A hedge is racing: it commits on success or
                        # pushes the chunks back on its own failure.
                        inflight.primary_failed = True
                    else:
                        self._push_back_locked(inflight)
                else:
                    inflight.hedge_device = None
                    if inflight.primary_failed:
                        # Both runners died: the chunks are orphaned.
                        self._push_back_locked(inflight)
            self._note_quarantine_locked(device)
            self._wake.notify_all()

    def _push_back_locked(self, inflight: _InflightBatch) -> None:
        """Replay the batch's chunk slices at each cursor's front."""
        inflight.settled = True
        for piece in reversed(inflight.slices):
            request: FleetSearch = piece.key  # type: ignore[assignment]
            request.cursor.push_back(piece.distance, piece.masks)
            request.redispatched += 1
            self._redispatched += 1
        for request in inflight.requests:
            request.inflight_batch = None

    def _note_quarantine_locked(self, device: FleetDevice) -> None:
        if device.breaker.state == "closed":
            return
        if not device.was_quarantined:
            device.was_quarantined = True
            self._quarantines += 1
        self._reassign_away_locked(device)

    def _reassign_away_locked(self, device: FleetDevice) -> None:
        """Move a quarantined device's queued requests to survivors."""
        survivors = [
            d for d in self.devices if d is not device and d.placeable
        ]
        for request in self._active:
            if request.device is not device or request.inflight_batch is not None:
                continue
            if survivors:
                target = min(survivors, key=self._load_locked)
                request.device = target
                request.reassignments += 1
                self._reassigned += 1
                moved = request.cursor.pending_chunks
                request.redispatched += moved
                self._redispatched += moved
            else:
                request.device = None

    # -- monitor --------------------------------------------------------

    def _monitor_loop(self) -> None:
        while True:
            to_probe: list[FleetDevice] = []
            with self._wake:
                if self._exit_locked():
                    return
                self._wake.wait(timeout=self._heartbeat)
                if self._exit_locked():
                    return
                for device in self.devices:
                    state = device.breaker.state
                    if state == "half_open":
                        if device.breaker.allow_request():
                            to_probe.append(device)
                    elif state == "closed" and device.inflight is None and not any(
                        r.device is device for r in self._active
                    ):
                        # Idle healthy devices heartbeat too, so a dead
                        # device without work is still detected.
                        to_probe.append(device)
            for device in to_probe:
                device.probe()
            shed: list[FleetSearch] = []
            with self._wake:
                for device in to_probe:
                    state = device.breaker.state
                    if state == "closed" and device.was_quarantined:
                        device.was_quarantined = False
                        self._reinstatements += 1
                    elif state != "closed":
                        self._note_quarantine_locked(device)
                placeable = [d for d in self.devices if d.placeable]
                now = time.perf_counter()
                if placeable:
                    self._no_healthy_since = None
                    for request in self._active:
                        if request.device is None:
                            request.device = min(
                                placeable, key=self._load_locked
                            )
                else:
                    if self._no_healthy_since is None:
                        self._no_healthy_since = now
                    elif now - self._no_healthy_since > self._no_device_grace:
                        shed = [
                            r
                            for r in self._active
                            if r.inflight_batch is None
                        ]
                        for request in shed:
                            self._active.remove(request)
                self._wake.notify_all()
            for request in shed:
                self._finalize_shed(request, SHED_NO_DEVICES)

    # -- finalization ---------------------------------------------------

    def _amortization(self, request: FleetSearch) -> AmortizationStats | None:
        cache = self._executor.plan_cache
        if cache is None:
            return None
        hits, misses = request.cursor.counters
        return AmortizationStats(
            plan_hits=hits, plan_misses=misses, plan_bytes=cache.bytes_in_use
        )

    def _finalize_result(
        self,
        request: FleetSearch,
        *,
        timed_out: bool,
        seed: bytes | None = None,
        distance: int | None = None,
    ) -> None:
        now = time.perf_counter()
        found = seed is not None
        shells = tuple(
            ShellStats(d, request.shell_hashed[d], request.shell_seconds[d])
            for d in sorted(request.shell_hashed)
        )
        scheduling = request.scheduling_stats(now)
        fleet = request.fleet_stats()
        amortized = self._amortization(request)
        result = SearchResult(
            found=found,
            seed=seed,
            distance=distance,
            seeds_hashed=request.seeds_hashed,
            elapsed_seconds=now - request.submitted_at,
            timed_out=timed_out,
            shells=shells,
            engine=self.describe(),
            amortized=amortized,
            scheduling=scheduling,
            fleet=fleet,
        )
        with self._wake:
            self._completed += 1
            if found:
                self._found += 1
            if timed_out:
                self._timed_out += 1
        hooks = self.hooks
        if hooks is not None:
            for shell in shells:
                hooks.on_shell_complete(shell)
            if amortized is not None:
                on_amortization = getattr(hooks, "on_amortization", None)
                if on_amortization is not None:
                    on_amortization(amortized)
            on_schedule = getattr(hooks, "on_schedule", None)
            if on_schedule is not None:
                on_schedule(scheduling)
            on_fleet = getattr(hooks, "on_fleet", None)
            if on_fleet is not None:
                on_fleet(fleet)
        request._resolve(result, None)

    def _finalize_shed(self, request: FleetSearch, reason: str) -> None:
        now = time.perf_counter()
        scheduling = request.scheduling_stats(now)
        with self._wake:
            self._shed[reason] = self._shed.get(reason, 0) + 1
            self._tenant_shed[request.tenant_id] = (
                self._tenant_shed.get(request.tenant_id, 0) + 1
            )
        on_schedule = getattr(self.hooks, "on_schedule", None)
        if on_schedule is not None:
            on_schedule(scheduling)
        request._resolve(
            None, RequestShed(reason, f"client {request.client_id!r}")
        )

    # -- observation ----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A consistent copy of the fleet's counters."""
        with self._wake:
            shed_reasons = dict(self._shed)
            tenant_ids = sorted(
                set(self._tenant_admitted)
                | set(self._tenant_shed)
                | set(self._tenant_rows)
            )
            total_tenant_rows = sum(self._tenant_rows.values())
            tenants = {
                tenant_id: {
                    "admitted": self._tenant_admitted.get(tenant_id, 0),
                    "shed": self._tenant_shed.get(tenant_id, 0),
                    "rows": self._tenant_rows.get(tenant_id, 0),
                    "device_share": (
                        self._tenant_rows.get(tenant_id, 0)
                        / total_tenant_rows
                        if total_tenant_rows
                        else 0.0
                    ),
                }
                for tenant_id in tenant_ids
            }
            return {
                "admitted": self._admitted,
                "completed": self._completed,
                "found": self._found,
                "timed_out": self._timed_out,
                "shed": sum(shed_reasons.values()),
                "shed_reasons": shed_reasons,
                "preempted": self._preempted,
                "aged_promotions": self._aged_promotions,
                "queue_depth": len(self._active),
                "peak_queue_depth": self._peak_depth,
                "batches": sum(d.batcher.batches for d in self.devices),
                "shared_batches": sum(
                    d.batcher.shared_batches for d in self.devices
                ),
                "batches_by_lane": dict(self._batches_by_lane),
                "throughput": self._throughput,
                "redispatched_chunks": self._redispatched,
                "reassigned_requests": self._reassigned,
                "hedges_launched": self._hedges_launched,
                "hedge_wins": self._hedge_wins,
                "hedges_cancelled": self._hedges_cancelled,
                "quarantines": self._quarantines,
                "reinstatements": self._reinstatements,
                "probes": sum(d.probes for d in self.devices),
                "devices": {d.name: d.snapshot() for d in self.devices},
                "tenants": tenants,
            }

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admissions and retire every device loop deterministically.

        With ``drain=True`` in-flight requests run to their natural
        outcome on whatever devices survive (grace shedding still
        applies if the whole fleet is dark); with ``drain=False``
        pending requests are shed with reason ``"shutdown"``. When this
        method returns, every thread has exited and every ticket is
        resolved. Idempotent.
        """
        with self._wake:
            if not self._closed:
                self._closed = True
                self._drain = drain
            threads = list(self._threads)
            self._wake.notify_all()
        for thread in threads:
            thread.join()
        leftovers: list[FleetSearch] = []
        with self._wake:
            if self._active:
                leftovers = list(self._active)
                self._active.clear()
        for request in leftovers:
            self._finalize_shed(request, SHED_SHUTDOWN)

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
