"""One shard of the enrollment directory.

A shard is an :class:`~repro.puf.image_db.EncryptedImageDatabase`
holding the slice of the keyspace the consistent-hash ring assigns it,
guarded by two failure-domain mechanisms:

* a per-shard :class:`~repro.reliability.breaker.CircuitBreaker` — a
  shard that keeps failing is refused instantly (``CircuitOpenError``)
  instead of burning the quorum read's retry budget on it, and its
  half-open probes are what detect the shard rejoining;
* a seeded :class:`~repro.reliability.faults.ShardFaultInjector` — the
  deterministic source of transient timeouts and slow reads, so a chaos
  run over the directory is a regression test, not a dice roll.

``kill()``/``revive()`` model whole-shard loss (process crash, network
partition): a dead shard fails every operation with
:class:`~repro.directory.errors.ShardDown` until revived. Its *data* is
not destroyed — the interesting failure mode is unavailability plus the
staleness it causes (writes that landed on the surviving replicas while
this shard was dark), which read-repair heals after the rejoin.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from repro.directory.errors import ShardDown, ShardTimeout
from repro.durability.log import RecoveryResult, ShardLog, replay_into
from repro.puf.image_db import EncryptedImageDatabase
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import ShardFaultInjector

__all__ = ["ShardStore"]

T = TypeVar("T")


class ShardStore:
    """One breaker-guarded, fault-injectable enrollment shard.

    With a :class:`~repro.durability.log.ShardLog` attached the shard is
    *durable*: construction recovers checkpoint + WAL into the store,
    and every install/repair is appended to the log before the call
    returns (= before the directory acknowledges the write).
    """

    def __init__(
        self,
        name: str,
        master_key: bytes,
        breaker: CircuitBreaker | None = None,
        injector: ShardFaultInjector | None = None,
        sleep: Callable[[float], None] = time.sleep,
        log: ShardLog | None = None,
    ):
        self.name = name
        self.store = EncryptedImageDatabase(master_key)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, recovery_seconds=0.05
        )
        self.injector = injector
        self._sleep = sleep
        self._lock = threading.Lock()
        self._alive = True
        self.reads = 0
        self.writes = 0
        self.repairs_received = 0
        self.timeouts_injected = 0
        self.kills = 0
        #: Durable log (None = the pre-durability in-memory shard).
        self.log = log
        self.recovery: RecoveryResult | None = None
        if log is not None:
            self.recovery = self._recover(log)

    def _recover(self, log: ShardLog) -> RecoveryResult:
        """Checkpoint + WAL replay into the store, tripwire floor included."""
        started = time.perf_counter()
        result = log.recover()
        if result.checkpoint is not None:
            self.store.restore(result.checkpoint)
        result.applied = replay_into(self.store, result.records)
        for record in result.records:
            self.store.register_used_version(record.client_id, record.version)
        result.recovery_seconds = time.perf_counter() - started
        return result

    # -- availability ----------------------------------------------------

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    def kill(self) -> None:
        """Take the shard offline; every operation now fails ShardDown."""
        with self._lock:
            if self._alive:
                self._alive = False
                self.kills += 1

    def revive(self) -> None:
        """Bring the shard back; the breaker's probes re-admit it."""
        with self._lock:
            self._alive = True

    # -- guarded operations ----------------------------------------------

    def _call(self, operation: str, fn: Callable[[], T]) -> T:
        """Run one store operation through faults, liveness, and breaker."""

        def guarded() -> T:
            with self._lock:
                alive = self._alive
            if not alive:
                raise ShardDown(self.name)
            if self.injector is not None:
                fault = self.injector.next()
                if fault == "timeout":
                    with self._lock:
                        self.timeouts_injected += 1
                    raise ShardTimeout(self.name, operation)
                if fault == "slow":
                    self._sleep(self.injector.spec.shard_slow_seconds)
            return fn()

        return self.breaker.call(guarded)

    def read(self, client_id: str) -> tuple[bytes, int] | None:
        """The still-encrypted ``(record, version)``; None if not held.

        A missing record is a *clean* answer, not a shard failure — it
        must not trip the breaker (the replica may simply have missed a
        write while it was down; read-repair fixes that).
        """

        def op() -> tuple[bytes, int] | None:
            with self._lock:
                self.reads += 1
            if client_id not in self.store:
                return None
            return self.store.export_record(client_id)

        return self._call("read", op)

    def install(self, client_id: str, blob: bytes, version: int) -> None:
        """Replicated write: store a directory-encrypted record verbatim.

        The directory is the version authority — every replica of a key
        holds the identical ciphertext under the identical version, so
        replicas stay byte-comparable and records stay portable.
        """

        def op() -> None:
            with self._lock:
                self.writes += 1
            self.store.import_record(client_id, blob, version)
            if self.log is not None:
                self.log.append(client_id, version, blob)

        self._call("write", op)

    def repair(self, client_id: str, blob: bytes, version: int) -> None:
        """Install a newer still-encrypted record from a peer replica."""

        def op() -> None:
            with self._lock:
                self.repairs_received += 1
            self.store.import_record(client_id, blob, version)
            if self.log is not None:
                self.log.append(client_id, version, blob)

        self._call("repair", op)

    def version_of(self, client_id: str) -> int | None:
        """The held record version without decrypting (None if absent)."""

        def op() -> int | None:
            if client_id not in self.store:
                return None
            return self.store.version_of(client_id)

        return self._call("version", op)

    # -- cloning (records stay encrypted) --------------------------------

    def clone_snapshot(self) -> bytes:
        """The shard's whole store as a still-encrypted snapshot blob."""
        return self.store.snapshot()

    def restore_snapshot(self, snapshot: bytes) -> None:
        """Replace the shard's store from a peer's snapshot blob."""
        self.store.restore(snapshot)

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> None:
        """Compact this shard's WAL into a fresh encrypted checkpoint."""
        if self.log is not None:
            self.log.checkpoint(self.store.snapshot())

    def close(self) -> None:
        """Release the durable log's file handle (no-op when in-memory)."""
        if self.log is not None:
            self.log.close()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    def snapshot(self) -> dict[str, object]:
        """Operational counters for the directory-wide snapshot."""
        with self._lock:
            counters: dict[str, object] = {
                "alive": self._alive,
                "records": len(self.store),
                "reads": self.reads,
                "writes": self.writes,
                "repairs_received": self.repairs_received,
                "timeouts_injected": self.timeouts_injected,
                "kills": self.kills,
                "breaker_state": self.breaker.state,
            }
        if self.log is not None:
            counters["durability"] = self.log.counters()
            if self.recovery is not None:
                counters["recovered_records"] = self.recovery.recovered_records
        return counters
