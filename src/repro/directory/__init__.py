"""Sharded, replicated enrollment directory with shard-loss failover.

The missing refactor between "one engine" and "a service millions of
users hit": the CA's enrolled-image lookup becomes an explicitly
fault-modeled subsystem instead of an implicit in-memory dict.

* :mod:`repro.directory.hashring` — consistent hashing of client ids
  onto shards (cheap membership changes, stable replica sets).
* :mod:`repro.directory.shard` — one breaker-guarded, fault-injectable
  shard store with kill/revive for whole-shard loss.
* :mod:`repro.directory.cache` — per-shard LRU hot cache with
  hit/miss/stale/eviction and prefetch-drop telemetry.
* :mod:`repro.directory.sharded` — the directory proper: R-way
  replication, quorum reads with retry/backoff, replica failover,
  read-repair, batched prefetch, typed degraded mode.
* :mod:`repro.directory.prefetch` — background batcher warming caches
  for queued admission requests.
* :mod:`repro.directory.storm` — the deterministic shard-loss chaos
  storm (also reachable as
  :func:`repro.reliability.chaos.run_shard_loss_storm`).
"""

from repro.directory.cache import HotCache
from repro.directory.errors import (
    ClientNotEnrolled,
    DirectoryError,
    DirectoryUnavailable,
    ShardDown,
    ShardTimeout,
)
from repro.directory.hashring import ConsistentHashRing
from repro.directory.prefetch import DirectoryPrefetcher
from repro.directory.shard import ShardStore
from repro.directory.sharded import ShardedEnrollmentDirectory

__all__ = [
    "ConsistentHashRing",
    "HotCache",
    "ShardStore",
    "ShardedEnrollmentDirectory",
    "DirectoryPrefetcher",
    "DirectoryError",
    "ClientNotEnrolled",
    "ShardDown",
    "ShardTimeout",
    "DirectoryUnavailable",
]
