"""Consistent hashing of client identifiers onto shard stores.

Classic ring construction: each shard contributes ``vnodes`` virtual
points placed by hashing ``"{shard}#{replica_index}"``; a key is owned
by the first point clockwise from its own hash. Replica sets walk the
ring onward, skipping points until ``r`` *distinct* shards are
collected, so replicas of one key land on different stores by
construction.

Consistent hashing is what makes shard membership changes cheap: adding
or removing one shard reassigns only the keys adjacent to its points,
not the whole keyspace — the property the million-client ROADMAP target
needs when a directory tier is resized under load.
"""

from __future__ import annotations

import bisect

from repro.hashes.sha3 import sha3_256

__all__ = ["ConsistentHashRing"]


def _point(label: str) -> int:
    """Ring position of a label: the first 8 bytes of its SHA3-256."""
    return int.from_bytes(sha3_256(label.encode())[:8], "big")


class ConsistentHashRing:
    """An immutable-after-build consistent-hash ring over shard names."""

    def __init__(self, shard_names: list[str] | tuple[str, ...], vnodes: int = 64):
        if not shard_names:
            raise ValueError("ring needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.shard_names = tuple(shard_names)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for name in self.shard_names:
            for replica_index in range(vnodes):
                points.append((_point(f"{name}#{replica_index}"), name))
        points.sort()
        self._points = [p for p, _name in points]
        self._owners = [name for _p, name in points]

    def replicas_for(self, key: str, r: int) -> tuple[str, ...]:
        """The ``r`` distinct shards owning ``key``, primary first."""
        if not 1 <= r <= len(self.shard_names):
            raise ValueError(
                f"replication {r} impossible with {len(self.shard_names)} shards"
            )
        start = bisect.bisect_right(self._points, _point(key))
        owners: list[str] = []
        for offset in range(len(self._points)):
            name = self._owners[(start + offset) % len(self._points)]
            if name not in owners:
                owners.append(name)
                if len(owners) == r:
                    break
        return tuple(owners)

    def primary_for(self, key: str) -> str:
        """The shard owning ``key`` (first on the ring)."""
        return self.replicas_for(key, 1)[0]
