"""Batched background prefetch of enrollment images for queued requests.

Admission control should never stall on a cold directory lookup: while a
request waits in the server's queue, its enrollment image can already be
on its way into the per-shard hot cache. The prefetcher is a single
daemon thread draining a queue of client identifiers; everything pending
is coalesced into one :meth:`ShardedEnrollmentDirectory.prefetch` batch,
so a burst of admissions costs one grouped sweep over the shards rather
than one cold quorum read per request.

Strictly best-effort: noting an identifier never blocks, a failed
prefetch is only a counter, and closing the prefetcher never loses the
serving path anything — the demand lookup falls back to the quorum read
it would have done anyway.
"""

from __future__ import annotations

import queue
import threading

__all__ = ["DirectoryPrefetcher"]

# Sentinel posted to wake the worker for shutdown.
_STOP = object()


class DirectoryPrefetcher:
    """Daemon thread coalescing queued client ids into prefetch batches."""

    def __init__(self, directory, max_batch: int = 64):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.directory = directory
        self.max_batch = max_batch
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self.batches = 0
        self.ids_noted = 0
        self.ids_prefetched = 0
        self.ids_dropped = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="directory-prefetch", daemon=True
        )
        self._thread.start()

    def note(self, client_id: str) -> None:
        """Register one queued identifier for speculative warming."""
        with self._lock:
            if self._closed:
                return
            self.ids_noted += 1
            # Same lock as the worker's idle check: either the put lands
            # before the worker's emptiness test, or the clear lands
            # after its set — flush() can never observe a false idle.
            self._idle.clear()
            self._queue.put(client_id)

    def _drain_batch(self, first) -> list[str]:
        """The first id plus everything else currently pending."""
        batch = [first]
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                # Preserve the shutdown signal for the outer loop.
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._idle.set()
                return
            batch = self._drain_batch(item)
            try:
                report = self.directory.prefetch(batch)
                with self._lock:
                    self.batches += 1
                    self.ids_prefetched += report.get("loaded", 0)
                    self.ids_dropped += report.get("dropped", 0)
            except Exception:
                # Speculation must never take the serving path down.
                pass
            with self._lock:
                if self._queue.empty():
                    self._idle.set()

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until everything noted so far has been attempted."""
        return self._idle.wait(timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; pending identifiers are abandoned."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)
        self._thread.join(timeout)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "ids_noted": self.ids_noted,
                "ids_prefetched": self.ids_prefetched,
                "ids_dropped": self.ids_dropped,
            }
