"""Typed enrollment-directory failures.

The directory never fails silently and never leaks a raw ``KeyError``
or shard exception into the serving path: a lookup either returns the
enrollment image, raises :class:`ClientNotEnrolled` (the key genuinely
does not exist anywhere), or raises :class:`DirectoryUnavailable` (the
key exists but every replica holding it is unreachable right now). The
serving layer converts the latter into a typed shed
(``SHED_DIRECTORY_UNAVAILABLE``) so a storm can tell "degraded but
correct" apart from "broken".
"""

from __future__ import annotations

__all__ = [
    "DirectoryError",
    "ClientNotEnrolled",
    "ShardDown",
    "ShardTimeout",
    "DirectoryUnavailable",
]


class DirectoryError(Exception):
    """Base class for enrollment-directory failures."""


class ClientNotEnrolled(DirectoryError, KeyError):
    """The identifier is not enrolled on any shard (a true miss)."""

    def __init__(self, client_id: str):
        super().__init__(f"client {client_id!r} not enrolled")
        self.client_id = client_id


class ShardDown(DirectoryError):
    """The shard is administratively or catastrophically offline.

    Not retryable against the same shard — the caller should fail over
    to a replica.
    """

    def __init__(self, shard: str):
        super().__init__(f"shard {shard!r} is down")
        self.shard = shard


class ShardTimeout(DirectoryError):
    """A shard operation timed out (transient; retry with backoff)."""

    def __init__(self, shard: str, operation: str):
        super().__init__(f"shard {shard!r} timed out during {operation}")
        self.shard = shard
        self.operation = operation


class DirectoryUnavailable(DirectoryError):
    """Every replica holding this key is unreachable.

    The degraded-mode signal: the serving layer sheds the request with
    reason ``SHED_DIRECTORY_UNAVAILABLE`` instead of erroring, because
    the failure is the directory's, not the client's.
    """

    def __init__(self, client_id: str, shards_tried: tuple[str, ...]):
        super().__init__(
            f"no live replica for client {client_id!r} "
            f"(tried {', '.join(shards_tried) or 'no shards'})"
        )
        self.client_id = client_id
        self.shards_tried = shards_tried
