"""Shard-loss chaos storm: kill directory shards mid-serve, prove the CA degrades.

The scenario the directory layer exists for: an authentication burst is
in flight when a whole enrollment shard drops (crash / partition). The
storm drives four deterministic waves through a real
:class:`~repro.net.concurrent.ConcurrentCAServer` and asserts the
protocol-level invariants at each step:

* **wave 1 (healthy)** — every client authenticates;
* **wave 2 (one shard dark)** — the hot caches are dropped, one shard is
  killed, and every client must *still* authenticate: zero failures,
  zero sheds, and the report proves replica failover actually carried
  the reads (``failovers > 0``);
* **wave 3 (replica set dark)** — the dead shard's replica partner is
  killed too, so some keys have **no** live replica. Exactly those
  clients must be shed with the typed ``SHED_DIRECTORY_UNAVAILABLE``
  reason — never an unhandled error, never a false authentication —
  while every other client keeps authenticating. While the shards are
  dark, a few surviving clients re-enroll, deliberately diverging the
  dead replicas;
* **wave 4 (recovered)** — both shards revive, caches are dropped, and
  every client (including the previously doomed ones) authenticates
  again; the divergence planted in wave 3 must be healed through read
  repair (``read_repairs > 0``).

A false-authentication tripwire re-hashes every found seed against the
digest the client actually submitted — the zero-false-auth invariant is
checked locally, not assumed from ``authenticated`` flags.

Deterministic by construction: the fleet is seeded, the victim/partner
shards are chosen from the seeded ring, kill points are wave boundaries
(not wall-clock), and the optional transient-timeout noise comes from a
seeded :class:`~repro.reliability.faults.FaultPlan`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import CertificateAuthority, RegistrationAuthority
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.core.search import RBCSearchService
from repro.directory.sharded import ShardedEnrollmentDirectory
from repro.engines.registry import build_engine
from repro.hashes.registry import get_hash
from repro.keygen.interface import get_keygen
from repro.net.concurrent import ConcurrentCAServer
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.sched.errors import SHED_DIRECTORY_UNAVAILABLE, RequestShed

__all__ = ["ShardLossStormReport", "run_shard_loss_storm"]


@dataclass
class ShardLossStormReport:
    """Outcome of one shard-loss storm, renderable and assertable."""

    seed: int
    clients: int
    shards: int
    replication: int
    victim: str
    partner: str
    doomed: tuple[str, ...] = ()
    re_enrolled: tuple[str, ...] = ()
    #: Per-wave (authenticated, failed, shed) triples, in wave order.
    waves: list[tuple[int, int, int]] = field(default_factory=list)
    failovers: int = 0
    read_repairs: int = 0
    retries: int = 0
    shed_typed: int = 0
    shed_untyped: int = 0
    unexpected_sheds: int = 0
    false_authentications: int = 0
    shed_rate: float = 0.0
    shed_ceiling: float = 0.5
    wall_seconds: float = 0.0
    directory_snapshot: dict = field(default_factory=dict)
    server_metrics: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """The storm's hard invariants, as one flag."""
        if len(self.waves) != 4:
            return False
        healthy, one_down, two_down, recovered = self.waves
        return (
            self.false_authentications == 0
            # waves 1, 2, 4: every client authenticates, nothing fails.
            and healthy == (self.clients, 0, 0)
            and one_down == (self.clients, 0, 0)
            and recovered == (self.clients, 0, 0)
            # wave 2 really ran on replicas, not on luck.
            and self.failovers > 0
            # wave 3: exactly the doomed keys shed, all of them typed.
            and two_down[2] == len(self.doomed)
            and two_down[0] == self.clients - len(self.doomed)
            and two_down[1] == 0
            and self.shed_untyped == 0
            and self.unexpected_sheds == 0
            and self.shed_rate <= self.shed_ceiling
            # the divergence planted while shards were dark was healed.
            and self.read_repairs > 0
        )

    def render(self) -> str:
        wave_names = ("healthy", "1-shard-down", "replica-set-down",
                      "recovered")
        lines = [
            f"shard-loss storm  seed={self.seed}  "
            f"shards={self.shards} r={self.replication}  "
            f"clients={self.clients}",
            f"  victim: {self.victim}  partner: {self.partner}  "
            f"doomed keys: {len(self.doomed)}",
        ]
        for name, triple in zip(wave_names, self.waves):
            ok, failed, shed = triple
            lines.append(
                f"  wave {name}: authenticated={ok} failed={failed} "
                f"shed={shed}"
            )
        lines += [
            f"  failovers: {self.failovers}  read repairs: "
            f"{self.read_repairs}  retries: {self.retries}",
            f"  sheds: {self.shed_typed} typed / {self.shed_untyped} "
            f"untyped  unexpected: {self.unexpected_sheds}  "
            f"rate: {self.shed_rate:.2f} (ceiling {self.shed_ceiling:.2f})",
            f"  false auths: {self.false_authentications}",
            f"  wall: {self.wall_seconds:.2f}s  "
            f"verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


class _SeedTripwire:
    """Re-hash every found seed against the digest the client submitted."""

    def __init__(self, authority: CertificateAuthority):
        self._authority = authority
        self.false_authentications = 0
        self._digests: dict[str, bytes] = {}

    def __getattr__(self, name):
        return getattr(self._authority, name)

    def expect(self, client_id: str, digest: bytes) -> None:
        self._digests[client_id] = digest

    def run_search(self, client_id, client_digest, deadline_seconds=None):
        self.expect(client_id, client_digest)
        result = self._authority.run_search(
            client_id, client_digest, deadline_seconds=deadline_seconds
        )
        if result.found:
            algo = get_hash(self._authority.hash_name)
            if algo.scalar(result.seed) != client_digest:
                self.false_authentications += 1
        return result

    def issue_public_key(self, client_id: str, found_seed: bytes) -> bytes:
        expected = self._digests.get(client_id)
        if expected is not None:
            algo = get_hash(self._authority.hash_name)
            if algo.scalar(found_seed) != expected:
                self.false_authentications += 1
        return self._authority.issue_public_key(client_id, found_seed)


def _pick_victims(
    directory: ShardedEnrollmentDirectory, client_ids: list[str]
) -> tuple[str, str, list[str]]:
    """The victim shard, its partner, and the keys doomed by losing both.

    The victim is the shard holding the most primaries (so wave 2 forces
    real failover traffic); the partner is the most common second
    replica among the victim's keys (so wave 3 dooms at least one key).
    """
    primaries: dict[str, list[str]] = {}
    for client_id in client_ids:
        replicas = directory.replicas_for(client_id)
        primaries.setdefault(replicas[0], []).append(client_id)
    victim = max(primaries, key=lambda name: len(primaries[name]))
    partner_counts: dict[str, int] = {}
    for client_id in primaries[victim]:
        for name in directory.replicas_for(client_id)[1:]:
            partner_counts[name] = partner_counts.get(name, 0) + 1
    partner = max(partner_counts, key=lambda name: partner_counts[name])
    dead = {victim, partner}
    doomed = [
        client_id
        for client_id in client_ids
        if set(directory.replicas_for(client_id)) <= dead
    ]
    return victim, partner, doomed


def run_shard_loss_storm(
    seed: int = 0,
    clients: int = 24,
    shards: int = 8,
    replication: int = 2,
    hash_name: str = "sha1",
    num_cells: int = 1024,
    max_distance: int = 2,
    workers: int = 2,
    cache_capacity: int = 64,
    shard_timeout_rate: float = 0.05,
    shed_ceiling: float = 0.5,
    re_enroll: int = 3,
) -> ShardLossStormReport:
    """Four deterministic waves against a sharded directory; see module doc."""
    algo_seed = seed * 1_000_003
    directory = ShardedEnrollmentDirectory(
        master_key=b"storm-master-k!!",
        shards=shards,
        replication=replication,
        cache_capacity=cache_capacity,
        fault_plan=FaultPlan(
            FaultSpec(shard_timeout_rate=shard_timeout_rate), seed
        ),
    )
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            build_engine("batch", hash_name=hash_name, batch_size=16384),
            max_distance=max_distance,
        ),
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=directory,
        hash_name=hash_name,
    )

    fleet: dict[str, ClientDevice] = {}
    masks = {}
    challenges = {}
    for index in range(clients):
        client_id = f"client-{index:04d}"
        puf = SRAMPuf(
            num_cells=num_cells,
            stable_error=0.001,
            seed=algo_seed + index,
        )
        mask = enroll_with_masking(
            puf, address=0, window=num_cells, reads=32,
            instability_threshold=0.02,
        )
        authority.enroll(client_id, mask)
        # Noise target one below the search radius: the PUF's natural
        # noise occasionally lands a read a bit past the injected target,
        # and the storm's invariants are about the directory, not about
        # honest-failure statistics.
        fleet[client_id] = ClientDevice(
            client_id,
            puf,
            noise_target_distance=max(0, max_distance - 1),
            rng=np.random.default_rng((seed, index)),
        )
        masks[client_id] = mask
        # Challenges are deterministic per client; capturing them at
        # enrollment keeps the handshake off the directory so the storm
        # measures the *search path's* degradation, not the handshake's.
        challenges[client_id] = authority.issue_challenge(client_id)

    client_ids = sorted(fleet)
    victim, partner, doomed = _pick_victims(directory, client_ids)
    report = ShardLossStormReport(
        seed=seed,
        clients=clients,
        shards=shards,
        replication=replication,
        victim=victim,
        partner=partner,
        doomed=tuple(doomed),
        shed_ceiling=shed_ceiling,
    )

    tripwire = _SeedTripwire(authority)
    start = time.perf_counter()
    with ConcurrentCAServer(tripwire, workers=workers,
                            max_queue=max(64, clients)) as server:

        def wave(expect_shed: set[str]) -> tuple[int, int, int]:
            authenticated = failed = shed = 0
            futures = []
            for client_id in client_ids:
                digest = fleet[client_id].respond(
                    challenges[client_id], reference_mask=masks[client_id]
                )
                tripwire.expect(client_id, digest)
                futures.append((client_id, server.submit(client_id, digest)))
            for client_id, future in futures:
                try:
                    result = future.result(timeout=120.0)
                except RequestShed as exc:
                    shed += 1
                    if exc.reason == SHED_DIRECTORY_UNAVAILABLE:
                        report.shed_typed += 1
                    else:
                        report.shed_untyped += 1
                    if client_id not in expect_shed:
                        report.unexpected_sheds += 1
                    continue
                except Exception:
                    failed += 1
                    continue
                if result.authenticated:
                    authenticated += 1
                else:
                    failed += 1
            return authenticated, failed, shed

        # wave 1: healthy baseline.
        report.waves.append(wave(set()))

        # wave 2: one whole shard dark, caches cold — replicas must carry.
        directory.kill_shard(victim)
        directory.drop_hot_caches()
        report.waves.append(wave(set()))

        # wave 3: the replica partner dies too; the doomed keys must shed
        # typed, everyone else keeps authenticating.
        directory.kill_shard(partner)
        directory.drop_hot_caches()
        report.waves.append(wave(set(doomed)))

        # While the shards are dark, survivors re-enroll: their writes
        # land only on live replicas, planting divergence the recovery
        # wave must heal through read repair.
        survivors = [c for c in client_ids if c not in doomed]
        stale_writes = [
            c for c in survivors
            if {victim, partner} & set(directory.replicas_for(c))
        ][:re_enroll]
        for client_id in stale_writes:
            authority.enroll(client_id, masks[client_id])
        report.re_enrolled = tuple(stale_writes)

        # wave 4: both shards revive; everyone authenticates again and
        # the planted divergence is read-repaired away.
        repairs_before = directory.read_repairs
        directory.revive_shard(victim)
        directory.revive_shard(partner)
        directory.drop_hot_caches()
        report.waves.append(wave(set()))
        report.read_repairs = directory.read_repairs - repairs_before

        report.server_metrics = server.metrics.snapshot()

    report.wall_seconds = time.perf_counter() - start
    report.false_authentications = tripwire.false_authentications
    report.failovers = directory.failovers
    report.retries = directory.retries
    total = 4 * clients
    report.shed_rate = (report.shed_typed + report.shed_untyped) / total
    report.directory_snapshot = directory.snapshot()
    return report
