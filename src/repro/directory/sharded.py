"""The sharded, replicated enrollment directory.

At the million-client scale the ROADMAP targets, "look up the client's
enrolled PUF image" is its own distributed system, and this module makes
its failure model explicit instead of assuming the image is at hand:

* client identifiers are **consistent-hashed** across N
  :class:`~repro.directory.shard.ShardStore` instances;
* every record is written to **R distinct replicas** — the directory
  assigns the record version and installs the identical ciphertext on
  each replica, so replicas are byte-comparable;
* reads are **quorum reads with retry/backoff**: transient shard
  timeouts are retried, dead or breaker-open shards are skipped, and
  the read **fails over** to replicas until it finds the *current*
  version of the record (the directory is the version authority, so a
  stale replica can never be served as fresh);
* replicas observed stale or missing during a read are **read-repaired**
  in place — this is how a shard that rejoined after downtime catches up
  on the writes it missed;
* each shard's working set has a **per-shard LRU hot cache** with
  hit/miss/stale telemetry, plus a speculative **batched prefetch** path
  that fills spare cache capacity for queued admission requests;
* when a key's entire replica set is down, the lookup raises the typed
  :class:`~repro.directory.errors.DirectoryUnavailable` — the serving
  layer converts it into a ``SHED_DIRECTORY_UNAVAILABLE`` shed so the
  CA degrades instead of erroring.

The directory duck-types :class:`~repro.puf.image_db.EncryptedImageDatabase`
(``enroll`` / ``lookup`` / ``__contains__`` / ``__len__``), so it drops
into :class:`~repro.core.authentication.CertificateAuthority.image_db`
unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from repro.directory.cache import HotCache
from repro.directory.errors import (
    ClientNotEnrolled,
    DirectoryUnavailable,
    ShardDown,
    ShardTimeout,
)
from repro.directory.hashring import ConsistentHashRing
from repro.directory.shard import ShardStore
from repro.durability.log import ShardLog
from repro.durability.wal import FsyncPolicy
from repro.engines.result import DirectoryStats
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.ternary import TernaryMask
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.reliability.faults import FaultPlan
from repro.tenancy.context import tenant_of_key
from repro.tenancy.errors import TenantQuotaExceeded
from repro.tenancy.registry import TenantRegistry

__all__ = ["ShardedEnrollmentDirectory"]


class ShardedEnrollmentDirectory:
    """N consistent-hash shards, R-way replication, quorum reads."""

    def __init__(
        self,
        master_key: bytes,
        shards: int = 8,
        replication: int = 2,
        read_quorum: int = 1,
        cache_capacity: int = 256,
        vnodes: int = 64,
        fault_plan: FaultPlan | None = None,
        retry_attempts: int = 3,
        backoff_seconds: float = 0.002,
        breaker_failure_threshold: int = 3,
        breaker_recovery_seconds: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tenants: TenantRegistry | None = None,
        data_dir: str | None = None,
        fsync: FsyncPolicy | str | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        if not 1 <= replication <= shards:
            raise ValueError(
                f"replication {replication} impossible with {shards} shards"
            )
        if not 1 <= read_quorum <= replication:
            raise ValueError("read_quorum must be in [1, replication]")
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be positive")
        self.replication = replication
        self.read_quorum = read_quorum
        self.retry_attempts = retry_attempts
        self.backoff_seconds = backoff_seconds
        self._sleep = sleep
        #: Stateless record codec (encrypt-once, install-everywhere).
        self._codec = EncryptedImageDatabase(master_key)
        if isinstance(fsync, str):
            fsync = FsyncPolicy.parse(fsync)
        #: Root of the per-shard durable logs (None = in-memory shards).
        self.data_dir = data_dir
        names = [f"shard-{index:02d}" for index in range(shards)]
        self.ring = ConsistentHashRing(names, vnodes=vnodes)
        self._shards: dict[str, ShardStore] = {
            name: ShardStore(
                name,
                master_key,
                breaker=CircuitBreaker(
                    failure_threshold=breaker_failure_threshold,
                    recovery_seconds=breaker_recovery_seconds,
                    clock=clock,
                ),
                injector=(
                    fault_plan.shard_injector(index)
                    if fault_plan is not None
                    else None
                ),
                sleep=sleep,
                log=(
                    ShardLog(f"{data_dir}/{name}", fsync=fsync)
                    if data_dir is not None
                    else None
                ),
            )
            for index, name in enumerate(names)
        }
        self._caches: dict[str, HotCache[TernaryMask]] = {
            name: HotCache(cache_capacity) for name in names
        }
        #: The directory's authoritative key -> current-version map. This
        #: is metadata (no plaintext, no ciphertext); it is what lets a
        #: quorum read reject a stale replica outright.
        self._known: dict[str, int] = {}
        #: Optional tenant registry: when present, enrollments of *new*
        #: keys are checked against the owning tenant's enrollment cap.
        self.tenants = tenants
        #: Records / lookups per tenant namespace (keys are split with
        #: :func:`~repro.tenancy.context.tenant_of_key`; bare keys count
        #: under the default tenant).
        self._tenant_counts: dict[str, int] = {}
        self._tenant_lookups: dict[str, int] = {}
        self._lock = threading.Lock()
        # -- directory-level counters ------------------------------------
        self.hot_hits = 0
        self.hot_misses = 0
        self.quorum_reads = 0
        self.failovers = 0
        self.read_repairs = 0
        self.retries = 0
        self.unavailable_lookups = 0
        self.prefetch_batches = 0
        self.anti_entropy_sweeps = 0
        self.anti_entropy_repairs = 0
        if data_dir is not None:
            self._rebuild_from_recovery()

    def _rebuild_from_recovery(self) -> None:
        """Re-derive the authority map from what the shards recovered.

        Each shard recovered its own durable slice; the directory's
        version authority for a key is the max version any replica
        holds. Tenant record counts are re-derived from the same map, so
        quota accounting survives the restart too. Reads go straight to
        the recovered stores (construction time: all shards alive, no
        faults injected yet), bypassing the breaker.
        """
        for shard in self._shards.values():
            for client_id in shard.store.client_ids():
                version = shard.store.version_of(client_id)
                if version > self._known.get(client_id, -1):
                    self._known[client_id] = version
        for client_id in self._known:
            tenant = tenant_of_key(client_id)
            self._tenant_counts[tenant] = (
                self._tenant_counts.get(tenant, 0) + 1
            )

    # -- topology --------------------------------------------------------

    @property
    def shard_names(self) -> tuple[str, ...]:
        return self.ring.shard_names

    def shard(self, name: str) -> ShardStore:
        return self._shards[name]

    def replicas_for(self, client_id: str) -> tuple[str, ...]:
        """The key's replica set, primary first."""
        return self.ring.replicas_for(client_id, self.replication)

    def kill_shard(self, name: str) -> None:
        """Model whole-shard loss (crash / partition); data survives."""
        self._shards[name].kill()

    def revive_shard(self, name: str) -> None:
        """Bring a shard back; breaker probes re-admit it, reads repair it."""
        self._shards[name].revive()

    def drop_hot_caches(self) -> None:
        """Cold-start the caching tier (entries only; telemetry survives)."""
        for cache in self._caches.values():
            cache.clear()

    # -- EncryptedImageDatabase surface ----------------------------------

    def __contains__(self, client_id: str) -> bool:
        with self._lock:
            return client_id in self._known

    def __len__(self) -> int:
        with self._lock:
            return len(self._known)

    def client_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._known))

    def version_of(self, client_id: str) -> int:
        with self._lock:
            if client_id not in self._known:
                raise ClientNotEnrolled(client_id)
            return self._known[client_id]

    def tenant_record_count(self, tenant_id: str) -> int:
        """How many records this tenant currently holds in the directory."""
        with self._lock:
            return self._tenant_counts.get(tenant_id, 0)

    def enroll(self, client_id: str, mask: TernaryMask) -> None:
        """Encrypt once, install on all R replicas, bump the version.

        The key may be tenant-namespaced (``tenant::client``); installing
        a *new* key counts against the owning tenant's ``max_enrollments``
        quota when a registry is attached, raising
        :class:`~repro.tenancy.errors.TenantQuotaExceeded` at the door —
        no replica is touched for an over-quota install. Re-enrolling an
        existing key never hits the cap (it replaces, not grows).

        Tolerates partial replica outage: the write succeeds if at least
        one replica accepts it (survivors re-seed the others through
        read-repair once they rejoin). Raises
        :class:`DirectoryUnavailable` only when *every* replica refuses.
        """
        tenant = tenant_of_key(client_id)
        replicas = self.replicas_for(client_id)
        with self._lock:
            is_new = client_id not in self._known
            if is_new and self.tenants is not None:
                cap = self.tenants.enrollment_cap(tenant)
                held = self._tenant_counts.get(tenant, 0)
                if cap is not None and held >= cap:
                    raise TenantQuotaExceeded(
                        tenant,
                        "max_enrollments",
                        f"{held}/{cap} records already enrolled",
                    )
            version = self._known.get(client_id, -1) + 1
        blob = self._codec.encrypt_record(client_id, mask, version)
        accepted = 0
        for name in replicas:
            try:
                self._install_replica(name, client_id, blob, version)
                accepted += 1
            except (ShardDown, ShardTimeout, CircuitOpenError):
                continue
        if accepted == 0:
            raise DirectoryUnavailable(client_id, replicas)
        with self._lock:
            if client_id not in self._known:
                self._tenant_counts[tenant] = (
                    self._tenant_counts.get(tenant, 0) + 1
                )
            self._known[client_id] = version
        # A write makes any cached copy stale — count it as such.
        self._caches[replicas[0]].invalidate(client_id)

    def _install_replica(
        self, name: str, client_id: str, blob: bytes, version: int
    ) -> None:
        """One replica install with the same retry budget reads get.

        A transient timeout must not demote a write to fewer replicas —
        that would manufacture divergence read repair then has to clean
        up — so installs retry/backoff exactly like ``_read_replica``.
        """
        last: Exception | None = None
        for attempt in range(self.retry_attempts):
            try:
                self._shards[name].install(client_id, blob, version)
                return
            except ShardTimeout as exc:
                last = exc
                with self._lock:
                    self.retries += 1
                self._sleep(self.backoff_seconds * (2**attempt))
            except (ShardDown, CircuitOpenError):
                raise
        assert last is not None
        raise last

    def lookup(self, client_id: str) -> TernaryMask:
        """Decrypt and return the enrollment image for ``client_id``."""
        mask, _stats = self.lookup_with_stats(client_id)
        return mask

    def lookup_with_stats(
        self, client_id: str
    ) -> tuple[TernaryMask, DirectoryStats]:
        """Lookup plus the per-lookup telemetry the serving layer records."""
        start = time.perf_counter()
        tenant = tenant_of_key(client_id)
        with self._lock:
            if client_id not in self._known:
                raise ClientNotEnrolled(client_id)
            current_version = self._known[client_id]
            self._tenant_lookups[tenant] = (
                self._tenant_lookups.get(tenant, 0) + 1
            )
        replicas = self.replicas_for(client_id)
        primary = replicas[0]
        cache = self._caches[primary]
        entry = cache.get(client_id)
        if entry is not None and entry[1] == current_version:
            with self._lock:
                self.hot_hits += 1
            return entry[0], DirectoryStats(
                source="hot-cache",
                tenant=tenant,
                hot_hit=True,
                lookup_seconds=time.perf_counter() - start,
            )
        if entry is not None:
            # Version raced ahead of the cache (write-through invalidation
            # lost the race with this read) — treat as stale, not hit.
            cache.invalidate(client_id)
        with self._lock:
            self.hot_misses += 1
        mask, stats = self._quorum_read(
            client_id, replicas, current_version, start
        )
        cache.put(client_id, mask, current_version)
        return mask, stats

    # -- quorum read ------------------------------------------------------

    def _read_replica(self, name: str, client_id: str) -> tuple[bytes, int] | None:
        """One replica read with retry/backoff on transient timeouts.

        Returns the replica's ``(record, version)`` (or None when the
        replica does not hold the key); raises ``ShardDown`` /
        ``CircuitOpenError`` / ``ShardTimeout`` when the replica stayed
        unreachable through the retry budget.
        """
        last: Exception | None = None
        for attempt in range(self.retry_attempts):
            try:
                return self._shards[name].read(client_id)
            except ShardTimeout as exc:
                last = exc
                with self._lock:
                    self.retries += 1
                self._sleep(self.backoff_seconds * (2**attempt))
            except (ShardDown, CircuitOpenError):
                raise
        assert last is not None
        raise last

    def _quorum_read(
        self,
        client_id: str,
        replicas: tuple[str, ...],
        current_version: int,
        start: float,
    ) -> tuple[TernaryMask, DirectoryStats]:
        """Walk the replica set until the current record version is found."""
        with self._lock:
            self.quorum_reads += 1
        responses: dict[str, tuple[bytes, int] | None] = {}
        winner: tuple[str, bytes] | None = None
        retries_before = self.retries
        for name in replicas:
            try:
                response = self._read_replica(name, client_id)
            except (ShardDown, ShardTimeout, CircuitOpenError):
                continue
            responses[name] = response
            if (
                winner is None
                and response is not None
                and response[1] == current_version
            ):
                winner = (name, response[0])
            if winner is not None and len(responses) >= self.read_quorum:
                break
        if winner is None:
            # Live replicas may have answered, but none held the current
            # version — serving a stale enrollment image could fail an
            # honest client, so degrade instead.
            with self._lock:
                self.unavailable_lookups += 1
            raise DirectoryUnavailable(client_id, replicas)
        winner_shard, blob = winner
        observed: dict[str, int | None] = {
            name: (response[1] if response is not None else None)
            for name, response in responses.items()
        }
        # Replicas the quorum never consulted still get a cheap version
        # probe: this is what lets a shard that rejoined after downtime
        # catch up on the writes it missed, even though the primary
        # satisfied the read. The probe doubles as the breaker's
        # half-open test for a recovering shard.
        for name in replicas:
            if name in observed:
                continue
            try:
                observed[name] = self._shards[name].version_of(client_id)
            except (ShardDown, ShardTimeout, CircuitOpenError):
                continue
        repairs = self._read_repair(
            client_id, blob, current_version, observed, winner_shard
        )
        if winner_shard != replicas[0]:
            with self._lock:
                self.failovers += 1
        mask = self._codec.decrypt_record(client_id, blob, current_version)
        with self._lock:
            retries = self.retries - retries_before
        return mask, DirectoryStats(
            source="primary" if winner_shard == replicas[0] else "replica",
            tenant=tenant_of_key(client_id),
            shard=winner_shard,
            replicas_read=len(responses),
            retries=retries,
            read_repairs=repairs,
            hot_hit=False,
            lookup_seconds=time.perf_counter() - start,
        )

    def _read_repair(
        self,
        client_id: str,
        blob: bytes,
        version: int,
        observed: dict[str, int | None],
        winner_shard: str,
    ) -> int:
        """Install the winning record on observed stale/missing replicas."""
        repaired = 0
        for name, replica_version in observed.items():
            if name == winner_shard:
                continue
            if replica_version is not None and replica_version >= version:
                continue
            try:
                self._shards[name].repair(client_id, blob, version)
                repaired += 1
            except (ShardDown, ShardTimeout, CircuitOpenError):
                continue
        if repaired:
            with self._lock:
                self.read_repairs += repaired
        return repaired

    # -- durability / anti-entropy -----------------------------------------

    def checkpoint_all(self) -> None:
        """Compact every durable shard's WAL into a fresh checkpoint."""
        for shard in self._shards.values():
            shard.checkpoint()

    def close(self) -> None:
        """Release every durable shard's log handle (no-op in-memory)."""
        for shard in self._shards.values():
            shard.close()

    def anti_entropy(self) -> dict[str, int]:
        """One catch-up sweep: heal replicas that missed durable writes.

        A replica that recovered from an older checkpoint — or lost its
        data directory entirely — holds stale versions of keys the rest
        of the replica set acknowledged. The sweep walks the authority
        map, probes each key's replica versions, and pushes the winning
        still-encrypted record through the existing version-authoritative
        read-repair path. Best-effort by design: unreachable replica
        sets are counted, never raised, and a later sweep (or a demand
        read) finishes the job.
        """
        report = {"keys_checked": 0, "repaired": 0, "unreachable": 0}
        with self._lock:
            self.anti_entropy_sweeps += 1
            known = dict(self._known)
        for client_id, version in known.items():
            report["keys_checked"] += 1
            replicas = self.replicas_for(client_id)
            observed: dict[str, int | None] = {}
            for name in replicas:
                try:
                    observed[name] = self._shards[name].version_of(client_id)
                except (ShardDown, ShardTimeout, CircuitOpenError):
                    continue
            stale = [
                name
                for name, seen in observed.items()
                if seen is None or seen < version
            ]
            if not stale:
                continue
            winner: tuple[str, bytes] | None = None
            for name in replicas:
                if observed.get(name) != version:
                    continue
                try:
                    response = self._read_replica(name, client_id)
                except (ShardDown, ShardTimeout, CircuitOpenError):
                    continue
                if response is not None and response[1] == version:
                    winner = (name, response[0])
                    break
            if winner is None:
                report["unreachable"] += 1
                continue
            winner_shard, blob = winner
            report["repaired"] += self._read_repair(
                client_id, blob, version, observed, winner_shard
            )
        if report["repaired"]:
            with self._lock:
                self.anti_entropy_repairs += report["repaired"]
        return report

    # -- batched prefetch --------------------------------------------------

    def prefetch(self, client_ids: Iterable[str]) -> dict[str, int]:
        """Warm the hot caches for a batch of queued identifiers.

        Speculative and best-effort by design: already-cached keys are
        skipped, unreachable keys are counted (never raised), and a full
        cache drops the insert rather than evicting demonstrated-hot
        entries — the later demand lookup falls back to the quorum read
        it would have paid anyway.
        """
        report = {
            "requested": 0,
            "loaded": 0,
            "already_cached": 0,
            "dropped": 0,
            "unavailable": 0,
            "unknown": 0,
        }
        with self._lock:
            self.prefetch_batches += 1
        for client_id in client_ids:
            report["requested"] += 1
            with self._lock:
                current_version = self._known.get(client_id)
            if current_version is None:
                report["unknown"] += 1
                continue
            replicas = self.replicas_for(client_id)
            cache = self._caches[replicas[0]]
            entry = cache.peek(client_id)
            if entry is not None and entry[1] == current_version:
                report["already_cached"] += 1
                continue
            try:
                mask, _stats = self._quorum_read(
                    client_id, replicas, current_version, time.perf_counter()
                )
            except DirectoryUnavailable:
                report["unavailable"] += 1
                continue
            if cache.put_speculative(client_id, mask, current_version):
                report["loaded"] += 1
            else:
                report["dropped"] += 1
        return report

    # -- introspection ----------------------------------------------------

    def cache_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-shard hot-cache telemetry."""
        return {name: cache.snapshot() for name, cache in self._caches.items()}

    def snapshot(self) -> dict[str, object]:
        """One consistent read of the directory's operational counters."""
        with self._lock:
            counters = {
                "clients": len(self._known),
                "shards": len(self._shards),
                "replication": self.replication,
                "read_quorum": self.read_quorum,
                "hot_hits": self.hot_hits,
                "hot_misses": self.hot_misses,
                "quorum_reads": self.quorum_reads,
                "failovers": self.failovers,
                "read_repairs": self.read_repairs,
                "retries": self.retries,
                "unavailable_lookups": self.unavailable_lookups,
                "prefetch_batches": self.prefetch_batches,
                "anti_entropy_sweeps": self.anti_entropy_sweeps,
                "anti_entropy_repairs": self.anti_entropy_repairs,
                "durable": self.data_dir is not None,
            }
            tenant_ids = sorted(
                set(self._tenant_counts) | set(self._tenant_lookups)
            )
            tenants: dict[str, dict[str, object]] = {}
            for tenant_id in tenant_ids:
                entry: dict[str, object] = {
                    "enrollments": self._tenant_counts.get(tenant_id, 0),
                    "lookups": self._tenant_lookups.get(tenant_id, 0),
                }
                if self.tenants is not None:
                    entry["enrollment_cap"] = self.tenants.enrollment_cap(
                        tenant_id
                    )
                tenants[tenant_id] = entry
            counters["tenants"] = tenants
        cache_totals = {"hits": 0, "misses": 0, "stale_invalidations": 0,
                        "evictions": 0, "prefetch_inserts": 0,
                        "prefetch_dropped": 0}
        for cache in self._caches.values():
            snap = cache.snapshot()
            for key in cache_totals:
                cache_totals[key] += snap[key]
        counters["cache"] = cache_totals
        counters["shards_detail"] = {
            name: shard.snapshot() for name, shard in self._shards.items()
        }
        return counters
