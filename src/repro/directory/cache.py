"""Per-shard LRU hot cache of decrypted enrollment images.

Each shard's working set gets its own small cache inside the CA's trust
boundary (the images are decrypted only here, same as any lookup). Two
insert disciplines share the structure:

* **demand inserts** (a lookup that just paid a quorum read) may evict
  the least-recently-used entry — the requester proved the key is hot;
* **prefetch inserts** (speculative, batched from the admission queue)
  only fill *spare* capacity. A full cache drops the prefetch and counts
  it, so speculation can never evict demonstrated-hot entries — the
  "falls back cleanly" behavior: the later demand lookup simply pays the
  quorum read it would have paid anyway.

Entries carry the record's re-enrollment version; a write-through
invalidation counts the entry as ``stale`` so the telemetry separates
"cache too small" (miss) from "cache outdated by a write" (stale).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, TypeVar

__all__ = ["HotCache"]

V = TypeVar("V")


class HotCache(Generic[V]):
    """Thread-safe LRU cache with versioned entries and full telemetry."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[V, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_invalidations = 0
        self.evictions = 0
        self.prefetch_inserts = 0
        self.prefetch_dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> tuple[V, int] | None:
        """The cached ``(value, version)``, refreshing recency; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key: str) -> tuple[V, int] | None:
        """Like :meth:`get` but without touching recency or telemetry.

        The prefetcher uses it to skip already-resident keys without
        inflating the hit rate or promoting entries it never served.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: V, version: int) -> None:
        """Demand insert: may evict the LRU entry to make room."""
        with self._lock:
            if key in self._entries:
                self._entries[key] = (value, version)
                self._entries.move_to_end(key)
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (value, version)

    def put_speculative(self, key: str, value: V, version: int) -> bool:
        """Prefetch insert: fills spare capacity only; False when dropped."""
        with self._lock:
            if key in self._entries:
                # Refresh in place but keep the entry's recency: a
                # prefetch is not evidence of demand.
                self._entries[key] = (value, version)
                self.prefetch_inserts += 1
                return True
            if len(self._entries) >= self.capacity:
                self.prefetch_dropped += 1
                return False
            self._entries[key] = (value, version)
            self._entries.move_to_end(key, last=False)
            self.prefetch_inserts += 1
            return True

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` after a write made the cached copy stale."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stale_invalidations += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every entry (a cold restart of the serving tier)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """Telemetry counters plus current occupancy."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stale_invalidations": self.stale_invalidations,
                "evictions": self.evictions,
                "prefetch_inserts": self.prefetch_inserts,
                "prefetch_dropped": self.prefetch_dropped,
            }
