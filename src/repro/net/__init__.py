"""Client <-> CA networking for the end-to-end protocol.

The paper's end-to-end measurements fold the client's USB PUF read and
the WAN round trips into a single 0.90 s communication cost (Table 5).
This package provides the message types of Figure 1, an in-process
transport with that latency model (plus a lossless-but-slow long-haul
profile for the US<->Israel APU setup the paper explicitly excludes from
fair comparison), and client/server endpoints that speak the protocol.
"""

from repro.net.errors import (
    TransportError,
    MessageDropped,
    MessageCorrupted,
    FrameTooLarge,
    ConnectionLost,
    ServerBusy,
    ServerClosed,
)
from repro.net.messages import (
    HandshakeRequest,
    HandshakeResponse,
    DigestSubmission,
    AuthenticationResult,
    MetricsRequest,
    MetricsSnapshot,
    ErrorReply,
    encode_frame,
    FrameDecoder,
    MAX_FRAME_BYTES,
)
from repro.net.transport import LatencyModel, InProcessTransport, US_LINK, US_ISRAEL_LINK
from repro.net.client import NetworkClient
from repro.net.server import CAServer
from repro.net.concurrent import ConcurrentCAServer, ServerMetrics
from repro.net.sockets import RemoteCAServer, SocketCAServer, SocketTransport

__all__ = [
    "TransportError",
    "MessageDropped",
    "MessageCorrupted",
    "FrameTooLarge",
    "ConnectionLost",
    "ServerBusy",
    "ServerClosed",
    "HandshakeRequest",
    "HandshakeResponse",
    "DigestSubmission",
    "AuthenticationResult",
    "MetricsRequest",
    "MetricsSnapshot",
    "ErrorReply",
    "encode_frame",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "LatencyModel",
    "InProcessTransport",
    "US_LINK",
    "US_ISRAEL_LINK",
    "NetworkClient",
    "CAServer",
    "ConcurrentCAServer",
    "ServerMetrics",
    "SocketTransport",
    "RemoteCAServer",
    "SocketCAServer",
]
