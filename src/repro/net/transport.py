"""Latency-modeled in-process transport.

The transport *accounts* for time rather than sleeping: each message
charges its latency to a virtual clock that the end-to-end report reads.
This reproduces the paper's methodology — it reports the measured 0.90 s
communication cost as a separate column rather than interleaving it with
the search — while keeping the test suite fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyModel", "InProcessTransport", "US_LINK", "US_ISRAEL_LINK"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-message-cost model of one client<->server link."""

    name: str
    round_trip_seconds: float
    bytes_per_second: float
    #: Client-side constant per authentication (USB PUF read, Table 5's
    #: methodology folds it into communication).
    puf_read_seconds: float = 0.0
    #: How long a sender waits before concluding a message was dropped
    #: (consumed by the fault-injection transport's drop path).
    timeout_seconds: float = 2.0

    def message_cost(self, payload_bytes: int) -> float:
        """Seconds to deliver one message of the given size."""
        return self.round_trip_seconds / 2 + payload_bytes / self.bytes_per_second


#: The paper's U.S. client<->server link: handshake (1 RTT), digest
#: submission (half RTT), result (half RTT) plus the USB PUF read come to
#: the reported 0.90 s per authentication.
US_LINK = LatencyModel(
    name="us-us",
    round_trip_seconds=0.28,
    bytes_per_second=1e6,
    puf_read_seconds=0.33,
)

#: The APU server sits in Israel; the paper measured this link but
#: excluded it from the comparison for fairness. Reproduced for
#: completeness (examples can show the difference).
US_ISRAEL_LINK = LatencyModel(
    name="us-israel",
    round_trip_seconds=0.60,
    bytes_per_second=5e5,
    puf_read_seconds=0.33,
)


@dataclass
class InProcessTransport:
    """Connects a client and a server object through a virtual clock."""

    latency: LatencyModel = US_LINK
    elapsed_seconds: float = 0.0
    messages_delivered: int = 0
    bytes_delivered: int = 0
    _log: list[tuple[str, int, float]] = field(default_factory=list)

    def deliver(self, label: str, payload: bytes) -> bytes:
        """Charge one message to the virtual clock and pass it through."""
        cost = self.latency.message_cost(len(payload))
        self.elapsed_seconds += cost
        self.messages_delivered += 1
        self.bytes_delivered += len(payload)
        self._log.append((label, len(payload), cost))
        return payload

    def charge(self, label: str, seconds: float) -> None:
        """Charge arbitrary client-side wait time (timeouts, backoff)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed_seconds += seconds
        self._log.append((label, 0, seconds))

    def charge_puf_read(self) -> None:
        """Account for the client's USB PUF read."""
        self.elapsed_seconds += self.latency.puf_read_seconds
        self._log.append(("puf-read", 0, self.latency.puf_read_seconds))

    @property
    def log(self) -> list[tuple[str, int, float]]:
        """(label, bytes, seconds) per delivered message."""
        return list(self._log)

    def reset(self) -> None:
        """Zero the virtual clock and message log."""
        self.elapsed_seconds = 0.0
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self._log.clear()
