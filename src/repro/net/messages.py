"""Protocol messages (Figure 1 wire format).

Values are plain dataclasses with byte-level serialization so the
transport can charge for realistic payload sizes. Nothing secret crosses
the wire: the handshake carries cell addresses and the public ternary
mask, the submission carries the digest ``M₁`` (useless without the PUF
image), and the result carries the public key.

Every frame carries a CRC-32 over its canonical body, and every message
type has a ``from_bytes`` parser that verifies it. A frame that was
corrupted in flight therefore fails *loudly* as
:class:`~repro.net.errors.MessageCorrupted` instead of silently feeding
garbage into the search — the property the fault-injection suite leans
on. (The CRC detects accidents, not attackers; authenticity is the
session layer's job, see :mod:`repro.net.session`.)
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.net.errors import FrameTooLarge, MessageCorrupted
from repro.tenancy.context import DEFAULT_TENANT

__all__ = [
    "HandshakeRequest",
    "HandshakeResponse",
    "DigestSubmission",
    "AuthenticationResult",
    "EnrollRequest",
    "EnrollReply",
    "MetricsRequest",
    "MetricsSnapshot",
    "ErrorReply",
    "MAX_FRAME_BYTES",
    "FRAME_HEADER_BYTES",
    "encode_frame",
    "FrameDecoder",
    "peek_frame_kind",
    "MESSAGE_TYPES",
]

#: Upper bound on one wire frame's body. The largest legitimate frame is
#: a handshake response carrying a packed cell mask (a few KiB at the
#: paper's window sizes); a megabyte leaves two orders of magnitude of
#: headroom while keeping a corrupt/hostile length prefix from turning
#: into a giant allocation.
MAX_FRAME_BYTES = 1 << 20

#: Big-endian u32 length prefix in front of every socket frame.
_FRAME_HEADER = struct.Struct(">I")
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def encode_frame(payload: bytes) -> bytes:
    """Length-prefix one message body for the socket wire.

    The in-process transport hands whole payloads around, so it never
    needed framing; TCP delivers an undifferentiated byte stream, so
    every message is prefixed with its length and reassembled by
    :class:`FrameDecoder` on the far side.
    """
    if not payload:
        raise ValueError("cannot frame an empty payload")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(len(payload), MAX_FRAME_BYTES)
    return _FRAME_HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental reassembly of length-prefixed frames off a stream.

    Feed it whatever ``recv`` returned — single bytes, torn length
    prefixes, several frames glued together — and it yields exactly the
    frame bodies the sender framed, in order. The length prefix is
    validated *before* the body is buffered, so a corrupt prefix raises
    :class:`~repro.net.errors.FrameTooLarge` (or
    :class:`~repro.net.errors.MessageCorrupted` for a zero length)
    instead of committing memory to garbage. Once poisoned, a decoder
    refuses further input: the stream has lost sync and the connection
    must be torn down.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._expected: int | None = None
        self._poisoned = False
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb one chunk; return every frame it completed."""
        if self._poisoned:
            raise MessageCorrupted(
                "frame stream already failed validation; reconnect"
            )
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if self._expected is None:
                if len(self._buffer) < FRAME_HEADER_BYTES:
                    break
                (length,) = _FRAME_HEADER.unpack_from(self._buffer)
                if length == 0:
                    self._poisoned = True
                    raise MessageCorrupted("zero-length frame prefix")
                if length > self.max_frame_bytes:
                    self._poisoned = True
                    raise FrameTooLarge(length, self.max_frame_bytes)
                del self._buffer[:FRAME_HEADER_BYTES]
                self._expected = length
            if len(self._buffer) < self._expected:
                break
            frames.append(bytes(self._buffer[: self._expected]))
            del self._buffer[: self._expected]
            self._expected = None
            self.frames_decoded += 1
        return frames


def peek_frame_kind(raw: bytes) -> str:
    """The ``type`` tag of one frame body, without full validation.

    The socket server uses this to route a frame to the right parser;
    the parser then performs the real CRC + structure check.
    """
    try:
        body = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageCorrupted(f"unparseable frame: {exc}") from exc
    if not isinstance(body, dict) or not isinstance(body.get("type"), str):
        raise MessageCorrupted("frame carries no type tag")
    return body["type"]


def _encode(kind: str, payload: dict) -> bytes:
    """Serialize a message body plus a CRC-32 over its canonical form.

    The CRC is fixed-width hex so the frame length never varies with the
    checksum's value — frame length feeds the transport's virtual clock,
    which must be a pure function of the message *fields*.
    """
    body = dict(payload)
    body["type"] = kind
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = f"{zlib.crc32(canonical.encode()):08x}"
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _decode(raw: bytes, kind: str) -> dict:
    """Parse and integrity-check one frame; raises MessageCorrupted."""
    try:
        body = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageCorrupted(f"unparseable {kind} frame: {exc}") from exc
    if not isinstance(body, dict):
        raise MessageCorrupted(f"{kind} frame is not an object")
    crc = body.pop("crc", None)
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if crc != f"{zlib.crc32(canonical.encode()):08x}":
        raise MessageCorrupted(f"{kind} frame failed its CRC check")
    if body.get("type") != kind:
        raise MessageCorrupted(
            f"expected a {kind} frame, got {body.get('type')!r}"
        )
    return body


@dataclass(frozen=True)
class HandshakeRequest:
    """Client -> CA: 'I want to authenticate'.

    ``tenant`` names the namespace the client enrolled under. It is
    *omitted* from the frame for the default tenant, so untenanted
    clients emit byte-identical frames to the pre-tenancy protocol, and
    pre-tenancy parsers (which read only known keys) interoperate with
    tenanted peers in both directions.
    """

    client_id: str
    tenant: str = DEFAULT_TENANT

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {"client_id": self.client_id}
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return _encode("handshake_request", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HandshakeRequest":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "handshake_request")
        try:
            return cls(
                client_id=body["client_id"],
                tenant=body.get("tenant") or DEFAULT_TENANT,
            )
        except KeyError as exc:
            raise MessageCorrupted(f"handshake_request missing {exc}") from exc


@dataclass(frozen=True)
class HandshakeResponse:
    """CA -> client: PUF address information (Figure 1 handshake)."""

    client_id: str
    address: int
    window: int
    usable_mask: bytes  # packed boolean mask over the window
    bit_count: int
    hash_name: str

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return _encode(
            "handshake_response",
            {
                "client_id": self.client_id,
                "address": self.address,
                "window": self.window,
                "usable_mask": self.usable_mask.hex(),
                "bit_count": self.bit_count,
                "hash_name": self.hash_name,
            },
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HandshakeResponse":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "handshake_response")
        try:
            return cls(
                client_id=body["client_id"],
                address=int(body["address"]),
                window=int(body["window"]),
                usable_mask=bytes.fromhex(body["usable_mask"]),
                bit_count=int(body["bit_count"]),
                hash_name=body["hash_name"],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed handshake_response: {exc}") from exc

    def unpack_usable(self) -> np.ndarray:
        """The boolean cell mask for the challenge window."""
        bits = np.unpackbits(np.frombuffer(self.usable_mask, dtype=np.uint8))
        return bits[: self.window].astype(bool)

    @staticmethod
    def pack_usable(usable: np.ndarray) -> bytes:
        """Pack a boolean cell mask into bytes for the wire."""
        return np.packbits(usable.astype(np.uint8)).tobytes()


@dataclass(frozen=True)
class DigestSubmission:
    """Client -> CA: the message digest M1 of the PUF-derived seed.

    ``deadline_seconds`` is the client's own time-to-useful-answer: how
    long the answer is worth waiting for, measured from CA admission. It
    rides along as protocol metadata — a deadline-aware CA routes the
    request into its express lane and may shed it; a plain CA clamps the
    search budget to ``min(T, deadline)``. ``None`` (the default, and
    what parsers infer from frames predating the field) means "protocol
    threshold only".

    ``tenant`` follows the same compatibility rule as
    :class:`HandshakeRequest`: omitted on the wire for the default
    tenant, inferred as default from frames predating the field.
    """

    client_id: str
    digest: bytes
    deadline_seconds: float | None = None
    tenant: str = DEFAULT_TENANT

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {
            "client_id": self.client_id,
            "digest": self.digest.hex(),
            # Fixed-width for the same reason as search_seconds below:
            # frame length must not depend on the deadline's digits.
            "deadline": (
                f"{self.deadline_seconds:018.6f}"
                if self.deadline_seconds is not None
                else None
            ),
        }
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return _encode("digest_submission", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DigestSubmission":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "digest_submission")
        try:
            deadline = body.get("deadline")
            return cls(
                client_id=body["client_id"],
                digest=bytes.fromhex(body["digest"]),
                deadline_seconds=(
                    float(deadline) if deadline is not None else None
                ),
                tenant=body.get("tenant") or DEFAULT_TENANT,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed digest_submission: {exc}") from exc


@dataclass(frozen=True)
class AuthenticationResult:
    """CA -> client: outcome plus the registered public key."""

    client_id: str
    authenticated: bool
    distance: int | None
    public_key: bytes | None
    search_seconds: float
    timed_out: bool

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return _encode(
            "authentication_result",
            {
                "client_id": self.client_id,
                "authenticated": self.authenticated,
                "distance": self.distance,
                "public_key": self.public_key.hex() if self.public_key else None,
                # Fixed-width so the frame length (and therefore the
                # virtual transfer cost) never depends on how many digits
                # a wall-clock measurement happened to produce.
                "search_seconds": f"{self.search_seconds:018.6f}",
                "timed_out": self.timed_out,
            },
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthenticationResult":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "authentication_result")
        try:
            key = body["public_key"]
            return cls(
                client_id=body["client_id"],
                authenticated=bool(body["authenticated"]),
                distance=body["distance"],
                public_key=bytes.fromhex(key) if key else None,
                search_seconds=float(body["search_seconds"]),
                timed_out=bool(body["timed_out"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed authentication_result: {exc}") from exc


@dataclass(frozen=True)
class EnrollRequest:
    """Client -> CA: (re-)enroll one deterministic fleet identity.

    Nothing secret crosses the wire: the frame names a fleet slot and
    the server reconstructs the PUF image from the deterministic fleet
    contract (:func:`~repro.deploy.enrollment.build_fleet_record`), then
    acknowledges only once the record is durable under its WAL policy.
    ``probe=True`` asks for the currently-held record version without
    enrolling — the crash storm's loss detector. Both optional fields
    follow the omitted-field compatibility rule.
    """

    client_id: str
    tenant: str = DEFAULT_TENANT
    probe: bool = False

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {"client_id": self.client_id}
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        if self.probe:
            payload["probe"] = True
        return _encode("enroll_request", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "EnrollRequest":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "enroll_request")
        try:
            return cls(
                client_id=body["client_id"],
                tenant=body.get("tenant") or DEFAULT_TENANT,
                probe=bool(body.get("probe", False)),
            )
        except KeyError as exc:
            raise MessageCorrupted(f"enroll_request missing {exc}") from exc


@dataclass(frozen=True)
class EnrollReply:
    """CA -> client: the enrollment acknowledgement.

    ``version`` is the record version the server now holds durably
    (``-1``: not enrolled — only possible for a probe). An enrollment
    reply is the durability contract's observable half: once a client
    has seen it, the record must survive ``kill -9``.
    """

    client_id: str
    version: int
    enrolled: bool

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return _encode(
            "enroll_reply",
            {
                "client_id": self.client_id,
                "version": self.version,
                "enrolled": self.enrolled,
            },
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "EnrollReply":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "enroll_reply")
        try:
            return cls(
                client_id=body["client_id"],
                version=int(body["version"]),
                enrolled=bool(body["enrolled"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed enroll_reply: {exc}") from exc


@dataclass(frozen=True)
class MetricsRequest:
    """Admin -> CA: scrape a :class:`ServerMetrics` snapshot.

    ``include_tenants`` follows the omitted-field rule (PR 7's tenant
    field): ``False`` — the default — is left off the wire, so the
    minimal request frame is a stable byte sequence.
    """

    include_tenants: bool = False

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {}
        if self.include_tenants:
            payload["include_tenants"] = True
        return _encode("metrics_request", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MetricsRequest":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "metrics_request")
        return cls(include_tenants=bool(body.get("include_tenants", False)))


@dataclass(frozen=True)
class MetricsSnapshot:
    """CA -> admin: one consistent copy of the server's counters.

    ``counters`` mirrors ``ServerMetrics.snapshot()``; ``shed_reasons``
    mirrors ``shed_breakdown()``. The optional fields — ``shed_reasons``,
    ``tenants``, ``false_authentications`` — are *omitted* from the frame
    when empty/zero, so a snapshot from a server predating a counter is
    byte-identical to one that merely has nothing to report (the same
    forward-compatibility contract the tenant field established).
    """

    counters: dict[str, float]
    shed_reasons: dict[str, int] = field(default_factory=dict)
    tenants: dict[str, dict[str, float]] = field(default_factory=dict)
    false_authentications: int = 0

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {"counters": dict(self.counters)}
        if self.shed_reasons:
            payload["shed_reasons"] = dict(self.shed_reasons)
        if self.tenants:
            payload["tenants"] = {
                tenant: dict(stats) for tenant, stats in self.tenants.items()
            }
        if self.false_authentications:
            payload["false_authentications"] = self.false_authentications
        return _encode("metrics_snapshot", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MetricsSnapshot":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "metrics_snapshot")
        try:
            counters = body["counters"]
            if not isinstance(counters, dict):
                raise TypeError("counters must be an object")
            return cls(
                counters={k: float(v) for k, v in counters.items()},
                shed_reasons={
                    k: int(v)
                    for k, v in body.get("shed_reasons", {}).items()
                },
                tenants={
                    tenant: {k: float(v) for k, v in stats.items()}
                    for tenant, stats in body.get("tenants", {}).items()
                },
                false_authentications=int(
                    body.get("false_authentications", 0)
                ),
            )
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise MessageCorrupted(f"malformed metrics_snapshot: {exc}") from exc


#: ErrorReply kinds the socket server can send, and what the client-side
#: stub raises for each (see ``repro.net.sockets``).
ERROR_REPLY_KINDS = ("busy", "closed", "shed", "corrupt", "error")


@dataclass(frozen=True)
class ErrorReply:
    """CA -> client: a typed refusal instead of a result frame.

    The in-process stack raises typed exceptions across a function call;
    a remote server has only bytes, so the refusal rides the wire as its
    own frame and the client-side stub re-raises the matching type:
    ``busy`` -> ServerBusy, ``closed`` -> ServerClosed, ``shed`` ->
    RequestShed(``reason``), ``corrupt`` -> MessageCorrupted (the server
    could not parse what arrived), ``error`` -> TransportError.
    """

    kind: str
    reason: str = ""
    detail: str = ""

    def __post_init__(self):
        if self.kind not in ERROR_REPLY_KINDS:
            raise ValueError(
                f"kind must be one of {ERROR_REPLY_KINDS}, got {self.kind!r}"
            )

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {"kind": self.kind}
        if self.reason:
            payload["reason"] = self.reason
        if self.detail:
            payload["detail"] = self.detail
        return _encode("error_reply", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ErrorReply":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "error_reply")
        try:
            return cls(
                kind=body["kind"],
                reason=body.get("reason", ""),
                detail=body.get("detail", ""),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed error_reply: {exc}") from exc


#: Wire type tag -> parser, for frame routing off a socket.
MESSAGE_TYPES = {
    "handshake_request": HandshakeRequest,
    "handshake_response": HandshakeResponse,
    "digest_submission": DigestSubmission,
    "authentication_result": AuthenticationResult,
    "enroll_request": EnrollRequest,
    "enroll_reply": EnrollReply,
    "metrics_request": MetricsRequest,
    "metrics_snapshot": MetricsSnapshot,
    "error_reply": ErrorReply,
}
