"""Protocol messages (Figure 1 wire format).

Values are plain dataclasses with byte-level serialization so the
transport can charge for realistic payload sizes. Nothing secret crosses
the wire: the handshake carries cell addresses and the public ternary
mask, the submission carries the digest ``M₁`` (useless without the PUF
image), and the result carries the public key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict

import numpy as np

__all__ = [
    "HandshakeRequest",
    "HandshakeResponse",
    "DigestSubmission",
    "AuthenticationResult",
]


@dataclass(frozen=True)
class HandshakeRequest:
    """Client -> CA: 'I want to authenticate'."""

    client_id: str

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return json.dumps({"type": "handshake_request", **asdict(self)}).encode()


@dataclass(frozen=True)
class HandshakeResponse:
    """CA -> client: PUF address information (Figure 1 handshake)."""

    client_id: str
    address: int
    window: int
    usable_mask: bytes  # packed boolean mask over the window
    bit_count: int
    hash_name: str

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload = asdict(self)
        payload["usable_mask"] = self.usable_mask.hex()
        return json.dumps({"type": "handshake_response", **payload}).encode()

    def unpack_usable(self) -> np.ndarray:
        """The boolean cell mask for the challenge window."""
        bits = np.unpackbits(np.frombuffer(self.usable_mask, dtype=np.uint8))
        return bits[: self.window].astype(bool)

    @staticmethod
    def pack_usable(usable: np.ndarray) -> bytes:
        """Pack a boolean cell mask into bytes for the wire."""
        return np.packbits(usable.astype(np.uint8)).tobytes()


@dataclass(frozen=True)
class DigestSubmission:
    """Client -> CA: the message digest M1 of the PUF-derived seed."""

    client_id: str
    digest: bytes

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return json.dumps(
            {
                "type": "digest_submission",
                "client_id": self.client_id,
                "digest": self.digest.hex(),
            }
        ).encode()


@dataclass(frozen=True)
class AuthenticationResult:
    """CA -> client: outcome plus the registered public key."""

    client_id: str
    authenticated: bool
    distance: int | None
    public_key: bytes | None
    search_seconds: float
    timed_out: bool

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return json.dumps(
            {
                "type": "authentication_result",
                "client_id": self.client_id,
                "authenticated": self.authenticated,
                "distance": self.distance,
                "public_key": self.public_key.hex() if self.public_key else None,
                "search_seconds": self.search_seconds,
                "timed_out": self.timed_out,
            }
        ).encode()
