"""Protocol messages (Figure 1 wire format).

Values are plain dataclasses with byte-level serialization so the
transport can charge for realistic payload sizes. Nothing secret crosses
the wire: the handshake carries cell addresses and the public ternary
mask, the submission carries the digest ``M₁`` (useless without the PUF
image), and the result carries the public key.

Every frame carries a CRC-32 over its canonical body, and every message
type has a ``from_bytes`` parser that verifies it. A frame that was
corrupted in flight therefore fails *loudly* as
:class:`~repro.net.errors.MessageCorrupted` instead of silently feeding
garbage into the search — the property the fault-injection suite leans
on. (The CRC detects accidents, not attackers; authenticity is the
session layer's job, see :mod:`repro.net.session`.)
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

import numpy as np

from repro.net.errors import MessageCorrupted
from repro.tenancy.context import DEFAULT_TENANT

__all__ = [
    "HandshakeRequest",
    "HandshakeResponse",
    "DigestSubmission",
    "AuthenticationResult",
]


def _encode(kind: str, payload: dict) -> bytes:
    """Serialize a message body plus a CRC-32 over its canonical form.

    The CRC is fixed-width hex so the frame length never varies with the
    checksum's value — frame length feeds the transport's virtual clock,
    which must be a pure function of the message *fields*.
    """
    body = dict(payload)
    body["type"] = kind
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = f"{zlib.crc32(canonical.encode()):08x}"
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _decode(raw: bytes, kind: str) -> dict:
    """Parse and integrity-check one frame; raises MessageCorrupted."""
    try:
        body = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageCorrupted(f"unparseable {kind} frame: {exc}") from exc
    if not isinstance(body, dict):
        raise MessageCorrupted(f"{kind} frame is not an object")
    crc = body.pop("crc", None)
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if crc != f"{zlib.crc32(canonical.encode()):08x}":
        raise MessageCorrupted(f"{kind} frame failed its CRC check")
    if body.get("type") != kind:
        raise MessageCorrupted(
            f"expected a {kind} frame, got {body.get('type')!r}"
        )
    return body


@dataclass(frozen=True)
class HandshakeRequest:
    """Client -> CA: 'I want to authenticate'.

    ``tenant`` names the namespace the client enrolled under. It is
    *omitted* from the frame for the default tenant, so untenanted
    clients emit byte-identical frames to the pre-tenancy protocol, and
    pre-tenancy parsers (which read only known keys) interoperate with
    tenanted peers in both directions.
    """

    client_id: str
    tenant: str = DEFAULT_TENANT

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {"client_id": self.client_id}
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return _encode("handshake_request", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HandshakeRequest":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "handshake_request")
        try:
            return cls(
                client_id=body["client_id"],
                tenant=body.get("tenant") or DEFAULT_TENANT,
            )
        except KeyError as exc:
            raise MessageCorrupted(f"handshake_request missing {exc}") from exc


@dataclass(frozen=True)
class HandshakeResponse:
    """CA -> client: PUF address information (Figure 1 handshake)."""

    client_id: str
    address: int
    window: int
    usable_mask: bytes  # packed boolean mask over the window
    bit_count: int
    hash_name: str

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return _encode(
            "handshake_response",
            {
                "client_id": self.client_id,
                "address": self.address,
                "window": self.window,
                "usable_mask": self.usable_mask.hex(),
                "bit_count": self.bit_count,
                "hash_name": self.hash_name,
            },
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HandshakeResponse":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "handshake_response")
        try:
            return cls(
                client_id=body["client_id"],
                address=int(body["address"]),
                window=int(body["window"]),
                usable_mask=bytes.fromhex(body["usable_mask"]),
                bit_count=int(body["bit_count"]),
                hash_name=body["hash_name"],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed handshake_response: {exc}") from exc

    def unpack_usable(self) -> np.ndarray:
        """The boolean cell mask for the challenge window."""
        bits = np.unpackbits(np.frombuffer(self.usable_mask, dtype=np.uint8))
        return bits[: self.window].astype(bool)

    @staticmethod
    def pack_usable(usable: np.ndarray) -> bytes:
        """Pack a boolean cell mask into bytes for the wire."""
        return np.packbits(usable.astype(np.uint8)).tobytes()


@dataclass(frozen=True)
class DigestSubmission:
    """Client -> CA: the message digest M1 of the PUF-derived seed.

    ``deadline_seconds`` is the client's own time-to-useful-answer: how
    long the answer is worth waiting for, measured from CA admission. It
    rides along as protocol metadata — a deadline-aware CA routes the
    request into its express lane and may shed it; a plain CA clamps the
    search budget to ``min(T, deadline)``. ``None`` (the default, and
    what parsers infer from frames predating the field) means "protocol
    threshold only".

    ``tenant`` follows the same compatibility rule as
    :class:`HandshakeRequest`: omitted on the wire for the default
    tenant, inferred as default from frames predating the field.
    """

    client_id: str
    digest: bytes
    deadline_seconds: float | None = None
    tenant: str = DEFAULT_TENANT

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        payload: dict = {
            "client_id": self.client_id,
            "digest": self.digest.hex(),
            # Fixed-width for the same reason as search_seconds below:
            # frame length must not depend on the deadline's digits.
            "deadline": (
                f"{self.deadline_seconds:018.6f}"
                if self.deadline_seconds is not None
                else None
            ),
        }
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return _encode("digest_submission", payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DigestSubmission":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "digest_submission")
        try:
            deadline = body.get("deadline")
            return cls(
                client_id=body["client_id"],
                digest=bytes.fromhex(body["digest"]),
                deadline_seconds=(
                    float(deadline) if deadline is not None else None
                ),
                tenant=body.get("tenant") or DEFAULT_TENANT,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed digest_submission: {exc}") from exc


@dataclass(frozen=True)
class AuthenticationResult:
    """CA -> client: outcome plus the registered public key."""

    client_id: str
    authenticated: bool
    distance: int | None
    public_key: bytes | None
    search_seconds: float
    timed_out: bool

    def to_bytes(self) -> bytes:
        """Serialize the message for the wire."""
        return _encode(
            "authentication_result",
            {
                "client_id": self.client_id,
                "authenticated": self.authenticated,
                "distance": self.distance,
                "public_key": self.public_key.hex() if self.public_key else None,
                # Fixed-width so the frame length (and therefore the
                # virtual transfer cost) never depends on how many digits
                # a wall-clock measurement happened to produce.
                "search_seconds": f"{self.search_seconds:018.6f}",
                "timed_out": self.timed_out,
            },
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthenticationResult":
        """Parse and integrity-check a wire frame."""
        body = _decode(raw, "authentication_result")
        try:
            key = body["public_key"]
            return cls(
                client_id=body["client_id"],
                authenticated=bool(body["authenticated"]),
                distance=body["distance"],
                public_key=bytes.fromhex(key) if key else None,
                search_seconds=float(body["search_seconds"]),
                timed_out=bool(body["timed_out"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MessageCorrupted(f"malformed authentication_result: {exc}") from exc
