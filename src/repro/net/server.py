"""Network-facing CA server endpoint.

Speaks the Figure 1 message flow on top of a
:class:`~repro.core.authentication.CertificateAuthority`: handshakes
return PUF address information, digest submissions trigger the RBC
search, and successful searches end with a salted key generation and an
RA update. Search wall-time is measured (the engine really runs); the
transport separately accounts for communication, matching the paper's
"Comm. Time" / "Search Time" split.
"""

from __future__ import annotations

from repro.core.authentication import CertificateAuthority
from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)

__all__ = ["CAServer"]


class CAServer:
    """Message-level wrapper around the Certificate Authority."""

    def __init__(self, authority: CertificateAuthority):
        self.authority = authority
        self.handshakes_served = 0
        self.searches_run = 0

    def handle_handshake(self, request: HandshakeRequest) -> HandshakeResponse:
        """Figure 1 handshake: return the PUF address information.

        The wire tenant selects the directory namespace the client's
        enrollment record is looked up in; responses carry the bare
        client id, exactly as before tenancy.
        """
        challenge = self.authority.issue_challenge(
            request.client_id, tenant_id=request.tenant
        )
        self.handshakes_served += 1
        return HandshakeResponse(
            client_id=challenge.client_id,
            address=challenge.address,
            window=challenge.window,
            usable_mask=HandshakeResponse.pack_usable(challenge.usable),
            bit_count=challenge.bit_count,
            hash_name=challenge.hash_name,
        )

    def handle_digest(self, submission: DigestSubmission) -> AuthenticationResult:
        """Run the RBC search for a submitted digest."""
        self.searches_run += 1
        result = self.authority.run_search(
            submission.client_id,
            submission.digest,
            deadline_seconds=submission.deadline_seconds,
            tenant_id=submission.tenant,
        )
        public_key = None
        if result.found:
            assert result.seed is not None
            public_key = self.authority.issue_public_key(
                submission.client_id, result.seed, tenant_id=submission.tenant
            )
        return AuthenticationResult(
            client_id=submission.client_id,
            authenticated=result.found,
            distance=result.distance,
            public_key=public_key,
            search_seconds=result.elapsed_seconds,
            timed_out=result.timed_out,
        )
