"""Typed failures of the client<->CA link.

The fault-injection layer (:mod:`repro.reliability`) produces these; the
retry machinery in :class:`~repro.net.client.NetworkClient` consumes
them. Anything that is *not* one of these types is a programming error
and propagates — only link-level faults are retryable.
"""

from __future__ import annotations

__all__ = [
    "TransportError",
    "MessageDropped",
    "MessageCorrupted",
    "FrameTooLarge",
    "ConnectionLost",
    "ServerBusy",
    "ServerClosed",
]


class TransportError(Exception):
    """Base class for retryable link-level failures."""


class MessageDropped(TransportError):
    """A message never arrived; the sender waited out its timeout."""

    def __init__(self, label: str, waited_seconds: float):
        super().__init__(f"message {label!r} dropped after {waited_seconds:.2f}s timeout")
        self.label = label
        self.waited_seconds = waited_seconds


class MessageCorrupted(TransportError):
    """A frame arrived but failed integrity or structural validation."""


class FrameTooLarge(MessageCorrupted):
    """A length prefix claimed a frame beyond the bounded maximum.

    Raised *before* any body bytes are buffered: a corrupt or hostile
    length prefix read off an untrusted socket must never translate into
    an attacker-sized allocation. Subclasses :class:`MessageCorrupted`
    so existing corruption handling (retry, typed reporting) applies.
    """

    def __init__(self, claimed: int, limit: int):
        super().__init__(
            f"frame length prefix claims {claimed} bytes "
            f"(limit {limit}); refusing to buffer"
        )
        self.claimed = claimed
        self.limit = limit


class ConnectionLost(TransportError):
    """The peer's TCP connection failed mid-conversation.

    Distinct from :class:`MessageDropped` (the link is up but one frame
    never arrived): here the socket itself broke — refused, reset, or
    closed under us — and the next attempt needs a fresh connection.
    """


class ServerBusy(TransportError):
    """The CA refused admission (saturated queue or duplicate client)."""


class ServerClosed(TransportError):
    """The CA is shut down; submissions are refused deterministically.

    Unlike :class:`ServerBusy` this is not worth an immediate retry
    against the same endpoint — the server is gone, not overloaded.
    """
