"""Typed failures of the client<->CA link.

The fault-injection layer (:mod:`repro.reliability`) produces these; the
retry machinery in :class:`~repro.net.client.NetworkClient` consumes
them. Anything that is *not* one of these types is a programming error
and propagates — only link-level faults are retryable.
"""

from __future__ import annotations

__all__ = [
    "TransportError",
    "MessageDropped",
    "MessageCorrupted",
    "ServerBusy",
    "ServerClosed",
]


class TransportError(Exception):
    """Base class for retryable link-level failures."""


class MessageDropped(TransportError):
    """A message never arrived; the sender waited out its timeout."""

    def __init__(self, label: str, waited_seconds: float):
        super().__init__(f"message {label!r} dropped after {waited_seconds:.2f}s timeout")
        self.label = label
        self.waited_seconds = waited_seconds


class MessageCorrupted(TransportError):
    """A frame arrived but failed integrity or structural validation."""


class ServerBusy(TransportError):
    """The CA refused admission (saturated queue or duplicate client)."""


class ServerClosed(TransportError):
    """The CA is shut down; submissions are refused deterministically.

    Unlike :class:`ServerBusy` this is not worth an immediate retry
    against the same endpoint — the server is gone, not overloaded.
    """
