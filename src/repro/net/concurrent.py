"""Concurrent CA front end: many clients, one search backend.

The capacity model (:mod:`repro.analysis.workload`) predicts what a CA
can sustain; this module is the serving layer that actually does it:
a bounded worker pool over the authority's search service, per-client
serialization (two in-flight searches for the same identity make no
sense — the second would race the RA update), admission control, an
optional circuit breaker guarding the search backend, and service
metrics the operator can read off.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.authentication import CertificateAuthority
from repro.net.messages import AuthenticationResult
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.runtime.pool import PooledSearchExecutor

__all__ = ["ServerMetrics", "ConcurrentCAServer"]


@dataclass
class ServerMetrics:
    """Operational counters (thread-safe snapshots via the server)."""

    submitted: int = 0
    completed: int = 0
    authenticated: int = 0
    failed: int = 0
    rejected_busy: int = 0
    rejected_duplicate: int = 0
    rejected_open: int = 0
    total_search_seconds: float = 0.0
    #: Engine-level telemetry read off each unified search result:
    #: candidate seeds hashed and Hamming shells completed.
    seeds_hashed: int = 0
    shells_completed: int = 0
    #: Amortized-pipeline telemetry (searches served by engines with a
    #: mask-plan cache and/or warm worker pool; zero otherwise).
    plan_hits: int = 0
    plan_misses: int = 0
    pool_reuses: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self,
        *,
        submitted: int = 0,
        completed: int = 0,
        authenticated: int = 0,
        failed: int = 0,
        rejected_busy: int = 0,
        rejected_duplicate: int = 0,
        rejected_open: int = 0,
        search_seconds: float = 0.0,
        seeds_hashed: int = 0,
        shells_completed: int = 0,
        plan_hits: int = 0,
        plan_misses: int = 0,
        pool_reuses: int = 0,
    ) -> None:
        """Atomically increment counters — the one write path callers use."""
        with self._lock:
            self.submitted += submitted
            self.completed += completed
            self.authenticated += authenticated
            self.failed += failed
            self.rejected_busy += rejected_busy
            self.rejected_duplicate += rejected_duplicate
            self.rejected_open += rejected_open
            self.total_search_seconds += search_seconds
            self.seeds_hashed += seeds_hashed
            self.shells_completed += shells_completed
            self.plan_hits += plan_hits
            self.plan_misses += plan_misses
            self.pool_reuses += pool_reuses

    def snapshot(self) -> dict[str, float]:
        """A consistent copy of the counters."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "authenticated": self.authenticated,
                "failed": self.failed,
                "rejected_busy": self.rejected_busy,
                "rejected_duplicate": self.rejected_duplicate,
                "rejected_open": self.rejected_open,
                "total_search_seconds": self.total_search_seconds,
                "seeds_hashed": self.seeds_hashed,
                "shells_completed": self.shells_completed,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "pool_reuses": self.pool_reuses,
            }


class ConcurrentCAServer:
    """Bounded-concurrency authentication service over one authority."""

    def __init__(
        self,
        authority: CertificateAuthority,
        workers: int = 4,
        max_queue: int = 64,
        breaker: CircuitBreaker | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.authority = authority
        self.max_queue = max_queue
        #: Optional breaker guarding the search backend: when open,
        #: searches are refused instantly instead of queued onto a
        #: backend that is known to be failing.
        self.breaker = breaker
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="rbc-search"
        )
        self._lock = threading.Lock()
        self._in_flight_clients: set[str] = set()
        self._pending = 0
        self.metrics = ServerMetrics()
        self._closed = False

    # -- submission ---------------------------------------------------------

    def submit(self, client_id: str, digest: bytes) -> Future:
        """Queue one authentication; returns a Future[AuthenticationResult].

        Raises ``RuntimeError`` on admission-control rejection: server
        saturated, duplicate in-flight client, or server closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._pending >= self.max_queue:
                self.metrics.record(rejected_busy=1)
                raise RuntimeError("server saturated; retry later")
            if client_id in self._in_flight_clients:
                self.metrics.record(rejected_duplicate=1)
                raise RuntimeError(
                    f"client {client_id!r} already has a search in flight"
                )
            self._in_flight_clients.add(client_id)
            self._pending += 1
        self.metrics.record(submitted=1)
        future = self._pool.submit(self._run, client_id, digest)
        future.add_done_callback(lambda _f: self._release(client_id))
        return future

    def _release(self, client_id: str) -> None:
        with self._lock:
            self._in_flight_clients.discard(client_id)
            self._pending -= 1

    def _search(self, client_id: str, digest: bytes):
        if self.breaker is not None:
            return self.breaker.call(
                lambda: self.authority.run_search(client_id, digest)
            )
        return self.authority.run_search(client_id, digest)

    def _run(self, client_id: str, digest: bytes) -> AuthenticationResult:
        start = time.perf_counter()
        try:
            result = self._search(client_id, digest)
        except CircuitOpenError:
            self.metrics.record(rejected_open=1, failed=1)
            raise
        except Exception:
            # A failed search is still a finished search: account for it
            # so `submitted == completed + failed + pending` stays true.
            self.metrics.record(
                failed=1, search_seconds=time.perf_counter() - start
            )
            raise
        public_key = None
        if result.found:
            assert result.seed is not None
            public_key = self.authority.issue_public_key(client_id, result.seed)
        amortized = getattr(result, "amortized", None)
        self.metrics.record(
            completed=1,
            authenticated=1 if result.found else 0,
            search_seconds=time.perf_counter() - start,
            seeds_hashed=result.seeds_hashed,
            shells_completed=len(result.shells),
            plan_hits=amortized.plan_hits if amortized is not None else 0,
            plan_misses=amortized.plan_misses if amortized is not None else 0,
            pool_reuses=(
                1 if amortized is not None and amortized.pool_reused else 0
            ),
        )
        return AuthenticationResult(
            client_id=client_id,
            authenticated=result.found,
            distance=result.distance,
            public_key=public_key,
            search_seconds=result.elapsed_seconds,
            timed_out=result.timed_out,
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight searches.

        If the authority's search backend is a persistent-pool engine,
        its worker processes are released too — the server was the thing
        keeping them warm. The engine re-spawns its pool transparently if
        the authority is used again afterwards.
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        service = getattr(self.authority, "search_service", None)
        engine = getattr(service, "engine", None)
        if isinstance(engine, PooledSearchExecutor):
            engine.close()

    def __enter__(self) -> "ConcurrentCAServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
