"""Concurrent CA front end: many clients, one search backend.

The capacity model (:mod:`repro.analysis.workload`) predicts what a CA
can sustain; this module is the serving layer that actually does it:
a bounded worker pool over the authority's search service, per-client
serialization (two in-flight searches for the same identity make no
sense — the second would race the RA update), admission control, an
optional circuit breaker guarding the search backend, and service
metrics the operator can read off.

Two serving modes share the front door:

* **FIFO mode** (default) — a bounded :class:`ThreadPoolExecutor`, one
  worker per in-flight search, requests served in submission order.
* **Scheduler mode** — pass a
  :class:`~repro.sched.engine.ScheduledSearchEngine` and submissions
  flow into its continuous-batching work stream instead: many requests
  share one device, client deadlines are honored (EDF lanes, shedding),
  and the queue-depth / shed / preemption counters below light up. A
  :class:`~repro.fleet.engine.FleetSearchEngine` slots into the same
  seat: the work stream then spans a health-checked device fleet, and
  the ``redispatched`` / ``hedged`` counters record its recoveries.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.authentication import CertificateAuthority
from repro.directory.errors import DirectoryUnavailable
from repro.directory.prefetch import DirectoryPrefetcher
from repro.engines.result import DirectoryStats
from repro.net.errors import ServerClosed
from repro.net.messages import AuthenticationResult
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.runtime.pool import PooledSearchExecutor
from repro.sched.engine import ScheduledSearchEngine
from repro.sched.errors import (
    SHED_DIRECTORY_UNAVAILABLE,
    SHED_TENANT_QUOTA,
    RequestShed,
)
from repro.sched.scheduler import ScheduledSearch
from repro.tenancy.context import DEFAULT_TENANT, namespaced_key
from repro.tenancy.ledger import TenantLedger
from repro.tenancy.registry import TenantRegistry

if TYPE_CHECKING:
    from repro.fleet.engine import FleetSearchEngine

__all__ = ["ServerMetrics", "ConcurrentCAServer"]


@dataclass
class ServerMetrics:
    """Operational counters (thread-safe snapshots via the server)."""

    submitted: int = 0
    completed: int = 0
    authenticated: int = 0
    failed: int = 0
    rejected_busy: int = 0
    rejected_duplicate: int = 0
    rejected_open: int = 0
    total_search_seconds: float = 0.0
    #: Engine-level telemetry read off each unified search result:
    #: candidate seeds hashed and Hamming shells completed.
    seeds_hashed: int = 0
    shells_completed: int = 0
    #: Amortized-pipeline telemetry (searches served by engines with a
    #: mask-plan cache and/or warm worker pool; zero otherwise).
    plan_hits: int = 0
    plan_misses: int = 0
    pool_reuses: int = 0
    #: Scheduler-mode telemetry: requests shed (deadline or shutdown),
    #: primary-request preemptions, and the deepest queue observed.
    shed: int = 0
    preempted: int = 0
    queue_depth_peak: int = 0
    #: Fleet-mode telemetry (zero unless the backend is a
    #: :class:`~repro.fleet.engine.FleetSearchEngine`): chunks replayed
    #: on a survivor after a device failure, and batches that were
    #: hedge-duplicated onto an idle device.
    redispatched: int = 0
    hedged: int = 0
    #: Enrollment-directory telemetry (zero unless the authority's image
    #: store is a sharded directory): hot-cache hits/misses on the
    #: serving path, reads served by a replica after the primary shard
    #: was lost, stale/missing replica copies repaired in passing, and
    #: requests shed because a key's whole replica set was down.
    directory_hot_hits: int = 0
    directory_hot_misses: int = 0
    directory_failovers: int = 0
    directory_read_repairs: int = 0
    shed_directory: int = 0
    #: Requests refused because their tenant's admission budget (token
    #: bucket) or enrollment quota was exhausted.
    shed_tenant_quota: int = 0
    #: Durability telemetry (zero unless the enrollment store is a
    #: WAL-backed :class:`~repro.durability.store.DurableImageStore`):
    #: enrollments acknowledged durable over the wire, records recovered
    #: at startup, and how long that recovery took.
    enrollments: int = 0
    recovered_records: int = 0
    recovery_seconds: float = 0.0
    #: Per-reason shed counts. Written only by :meth:`record_shed`, which
    #: also increments ``shed`` — the two can never drift apart.
    shed_reasons: dict[str, int] = field(default_factory=dict)
    #: Per-tenant counters (submitted / shed / quota hits / latency
    #: percentiles); fed by the same ``record`` / ``record_shed`` calls.
    tenants: TenantLedger = field(default_factory=TenantLedger, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self,
        *,
        submitted: int = 0,
        completed: int = 0,
        authenticated: int = 0,
        failed: int = 0,
        rejected_busy: int = 0,
        rejected_duplicate: int = 0,
        rejected_open: int = 0,
        search_seconds: float = 0.0,
        seeds_hashed: int = 0,
        shells_completed: int = 0,
        plan_hits: int = 0,
        plan_misses: int = 0,
        pool_reuses: int = 0,
        preempted: int = 0,
        queue_depth: int = 0,
        redispatched: int = 0,
        hedged: int = 0,
        directory_hot_hits: int = 0,
        directory_hot_misses: int = 0,
        directory_failovers: int = 0,
        directory_read_repairs: int = 0,
        tenant_id: str | None = None,
    ) -> None:
        """Atomically increment counters — the one write path callers use.

        ``queue_depth`` is a gauge observation, not an increment: the
        peak-so-far is kept (max-merge), so callers report the depth they
        saw and the snapshot exposes the high-water mark. ``tenant_id``
        mirrors the per-request counters into the per-tenant ledger.

        Sheds are deliberately *not* recordable here: every shed goes
        through :meth:`record_shed`, which keeps the ``shed`` total and
        the per-reason counts in lockstep.
        """
        with self._lock:
            self.submitted += submitted
            self.completed += completed
            self.authenticated += authenticated
            self.failed += failed
            self.rejected_busy += rejected_busy
            self.rejected_duplicate += rejected_duplicate
            self.rejected_open += rejected_open
            self.total_search_seconds += search_seconds
            self.seeds_hashed += seeds_hashed
            self.shells_completed += shells_completed
            self.plan_hits += plan_hits
            self.plan_misses += plan_misses
            self.pool_reuses += pool_reuses
            self.preempted += preempted
            self.redispatched += redispatched
            self.hedged += hedged
            self.directory_hot_hits += directory_hot_hits
            self.directory_hot_misses += directory_hot_misses
            self.directory_failovers += directory_failovers
            self.directory_read_repairs += directory_read_repairs
            if queue_depth > self.queue_depth_peak:
                self.queue_depth_peak = queue_depth
        if tenant_id is not None:
            self.tenants.record(
                tenant_id,
                submitted=submitted,
                completed=completed,
                authenticated=authenticated,
                failed=failed,
                search_seconds=search_seconds,
                directory_lookups=directory_hot_hits + directory_hot_misses,
                latency_seconds=search_seconds if completed else None,
            )

    def record_shed(
        self,
        reason: str,
        *,
        failed: int = 0,
        search_seconds: float = 0.0,
        tenant_id: str | None = None,
    ) -> None:
        """The one write path for sheds: total + per-reason, atomically.

        Every shed increments ``shed`` and ``shed_reasons[reason]`` in
        the same critical section, so ``sum(shed_reasons.values()) ==
        shed`` holds at every instant. Reason-specific convenience
        counters (``shed_directory``, ``shed_tenant_quota``) are derived
        here too, never written directly by callers.
        """
        with self._lock:
            self.shed += 1
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
            if reason == SHED_DIRECTORY_UNAVAILABLE:
                self.shed_directory += 1
            elif reason == SHED_TENANT_QUOTA:
                self.shed_tenant_quota += 1
            self.failed += failed
            self.total_search_seconds += search_seconds
        if tenant_id is not None:
            self.tenants.record(
                tenant_id,
                shed=1,
                failed=failed,
                search_seconds=search_seconds,
                quota_hits=1 if reason == SHED_TENANT_QUOTA else 0,
            )

    def record_enrollment(self) -> None:
        """One enrollment acknowledged (durably, when the store has a WAL)."""
        with self._lock:
            self.enrollments += 1

    def record_recovery(self, records: int, seconds: float) -> None:
        """Startup recovery outcome (records replayed, wall-clock cost)."""
        with self._lock:
            self.recovered_records = records
            self.recovery_seconds = seconds

    def snapshot(self) -> dict[str, float]:
        """A consistent copy of the counters."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "authenticated": self.authenticated,
                "failed": self.failed,
                "rejected_busy": self.rejected_busy,
                "rejected_duplicate": self.rejected_duplicate,
                "rejected_open": self.rejected_open,
                "total_search_seconds": self.total_search_seconds,
                "seeds_hashed": self.seeds_hashed,
                "shells_completed": self.shells_completed,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "pool_reuses": self.pool_reuses,
                "shed": self.shed,
                "preempted": self.preempted,
                "queue_depth_peak": self.queue_depth_peak,
                "redispatched": self.redispatched,
                "hedged": self.hedged,
                "directory_hot_hits": self.directory_hot_hits,
                "directory_hot_misses": self.directory_hot_misses,
                "directory_failovers": self.directory_failovers,
                "directory_read_repairs": self.directory_read_repairs,
                "shed_directory": self.shed_directory,
                "shed_tenant_quota": self.shed_tenant_quota,
                "enrollments": self.enrollments,
                "recovered_records": self.recovered_records,
                "recovery_seconds": self.recovery_seconds,
            }

    def shed_breakdown(self) -> dict[str, int]:
        """Per-reason shed counts (sums exactly to ``snapshot()['shed']``)."""
        with self._lock:
            return dict(self.shed_reasons)

    def tenant_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-tenant counters (see :class:`~repro.tenancy.ledger.TenantLedger`)."""
        return self.tenants.snapshot()


def _directory_record_kwargs(stats: DirectoryStats | None) -> dict[str, int]:
    """ServerMetrics increments for one lookup's directory telemetry."""
    if stats is None:
        return {}
    return {
        "directory_hot_hits": 1 if stats.hot_hit else 0,
        "directory_hot_misses": 0 if stats.hot_hit else 1,
        "directory_failovers": 1 if stats.source == "replica" else 0,
        "directory_read_repairs": stats.read_repairs,
    }


class ConcurrentCAServer:
    """Bounded-concurrency authentication service over one authority."""

    def __init__(
        self,
        authority: CertificateAuthority,
        workers: int = 4,
        max_queue: int = 64,
        breaker: CircuitBreaker | None = None,
        scheduler: ScheduledSearchEngine | FleetSearchEngine | None = None,
        prefetch: bool = True,
        tenants: TenantRegistry | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.authority = authority
        self.max_queue = max_queue
        #: The tenant registry every admission decision consults. Without
        #: one, a quota-free registry is created: every request resolves
        #: to the default tenant and behaves exactly as before tenancy.
        self.tenants = tenants if tenants is not None else TenantRegistry()
        #: Optional breaker guarding the search backend: when open,
        #: searches are refused instantly instead of queued onto a
        #: backend that is known to be failing.
        self.breaker = breaker
        #: Optional scheduler backend: submissions bypass the worker
        #: pool and join the continuous-batching work stream instead.
        self.scheduler = scheduler
        if scheduler is not None:
            # Share one registry with the scheduler's admission policy so
            # token buckets are charged exactly once per submission —
            # by the policy in scheduler mode, by the front door in FIFO
            # mode. A policy that already has its own registry keeps it.
            policy = getattr(
                getattr(scheduler, "scheduler", None), "policy", None
            )
            if policy is not None and policy.tenants is None:
                policy.tenants = self.tenants
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="rbc-search"
        )
        # Reentrant on purpose: a SIGTERM handler (which Python runs on
        # the main thread, possibly while submit() holds this lock) that
        # reaches close() must not deadlock against the interrupted
        # frame. With an RLock the nested acquire succeeds and close()
        # only flips the flag; the interrupted submit then observes
        # _closed and refuses typed.
        self._lock = threading.RLock()
        self._in_flight_clients: set[str] = set()
        self._pending = 0
        self.metrics = ServerMetrics()
        self._closed = False
        #: When the authority's image store is a sharded directory,
        #: admitted requests queue their client ids here so the hot cache
        #: is warm by the time a worker picks the search up.
        self.prefetcher: DirectoryPrefetcher | None = None
        image_db = getattr(authority, "image_db", None)
        if prefetch and hasattr(image_db, "prefetch"):
            self.prefetcher = DirectoryPrefetcher(image_db)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        client_id: str,
        digest: bytes,
        deadline_seconds: float | None = None,
        tenant_id: str | None = None,
    ) -> Future:
        """Queue one authentication; returns a Future[AuthenticationResult].

        Raises :class:`~repro.net.errors.ServerClosed` once the server is
        shut down, ``RuntimeError`` on admission-control rejection
        (saturated queue, duplicate in-flight client), and — in scheduler
        mode — :class:`~repro.sched.errors.RequestShed` when the
        scheduler's admission controller refuses the request outright
        (including an exhausted tenant budget, reason ``tenant_quota``).

        ``deadline_seconds`` is the client's own latency bound. In
        scheduler mode it routes the request into the express lane and
        arms deadline shedding; in FIFO mode it tightens the search's
        time budget to ``min(T, deadline)``.

        ``tenant_id`` attributes the request to a registered tenant
        (``None`` rides the default tenant): it selects the directory
        namespace the enrollment record is resolved in, charges the
        tenant's admission budget, and keys the per-tenant telemetry.
        """
        tenant = self.tenants.resolve(tenant_id).tenant_id
        in_flight_key = namespaced_key(tenant, client_id)
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            if self._pending >= self.max_queue:
                self.metrics.record(rejected_busy=1)
                raise RuntimeError("server saturated; retry later")
            if in_flight_key in self._in_flight_clients:
                self.metrics.record(rejected_duplicate=1)
                raise RuntimeError(
                    f"client {client_id!r} already has a search in flight"
                )
            self._in_flight_clients.add(in_flight_key)
            self._pending += 1
        if self.prefetcher is not None:
            self.prefetcher.note(in_flight_key)
        if self.scheduler is not None:
            try:
                return self._submit_scheduled(
                    client_id, digest, deadline_seconds, tenant
                )
            except BaseException:
                self._release(in_flight_key)
                raise
        # FIFO mode has no admission policy, so the front door charges
        # the tenant's token bucket itself (in scheduler mode the
        # policy's admission check charges it — exactly once either way).
        if not self.tenants.try_admit(tenant):
            self._release(in_flight_key)
            self.metrics.record_shed(SHED_TENANT_QUOTA, tenant_id=tenant)
            raise RequestShed(
                SHED_TENANT_QUOTA, f"tenant {tenant!r} over its lookup budget"
            )
        self.metrics.record(submitted=1, tenant_id=tenant)
        future = self._pool.submit(
            self._run, client_id, digest, deadline_seconds, tenant
        )
        future.add_done_callback(lambda _f: self._release(in_flight_key))
        return future

    def _submit_scheduled(
        self,
        client_id: str,
        digest: bytes,
        deadline_seconds: float | None,
        tenant: str,
    ) -> Future:
        """Scheduler-mode admission: one ticket in the shared work stream."""
        assert self.scheduler is not None
        service = self.authority.search_service
        start = time.perf_counter()
        try:
            seed, directory_stats = self._enrolled_seed(client_id, tenant)
        except DirectoryUnavailable as exc:
            # The whole replica set for this key is down: degraded-mode
            # serving sheds the request with a typed reason instead of
            # surfacing the directory's internal error.
            self.metrics.record_shed(
                SHED_DIRECTORY_UNAVAILABLE, tenant_id=tenant
            )
            raise RequestShed(SHED_DIRECTORY_UNAVAILABLE, str(exc)) from exc
        try:
            ticket = self.scheduler.submit(
                seed,
                digest,
                service.max_distance,
                time_budget=service.time_threshold,
                deadline_seconds=deadline_seconds,
                client_id=client_id,
                tenant=tenant,
            )
        except RequestShed as exc:
            # Refused at the door (unmeetable deadline / saturated lanes /
            # exhausted tenant budget): observable as a typed shed, not a
            # pool rejection.
            self.metrics.record_shed(exc.reason, tenant_id=tenant)
            raise
        self.metrics.record(
            submitted=1,
            queue_depth=int(self.scheduler.scheduler.snapshot()["queue_depth"]),
            tenant_id=tenant,
            **_directory_record_kwargs(directory_stats),
        )
        future: Future = Future()
        future.set_running_or_notify_cancel()
        ticket.add_done_callback(
            lambda t: self._on_ticket_done(t, client_id, start, future, tenant)
        )
        future.add_done_callback(
            lambda _f: self._release(namespaced_key(tenant, client_id))
        )
        return future

    def _on_ticket_done(
        self,
        ticket: ScheduledSearch,
        client_id: str,
        start: float,
        future: Future,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        """Runs on the dispatcher thread when a scheduled request settles."""
        elapsed = time.perf_counter() - start
        try:
            result = ticket.result(timeout=0.0)
        except RequestShed as exc:
            self.metrics.record_shed(
                exc.reason, failed=1, search_seconds=elapsed, tenant_id=tenant
            )
            future.set_exception(exc)
            return
        except BaseException as exc:  # pragma: no cover - defensive
            self.metrics.record(failed=1, search_seconds=elapsed)
            future.set_exception(exc)
            return
        try:
            public_key = None
            if result.found:
                assert result.seed is not None
                public_key = self._issue_public_key(
                    client_id, result.seed, tenant
                )
            scheduling = result.scheduling
            fleet = getattr(result, "fleet", None)
            self.metrics.record(
                completed=1,
                authenticated=1 if result.found else 0,
                search_seconds=elapsed,
                seeds_hashed=result.seeds_hashed,
                shells_completed=len(result.shells),
                preempted=scheduling.preemptions if scheduling else 0,
                redispatched=fleet.redispatched_chunks if fleet else 0,
                hedged=fleet.hedged_batches if fleet else 0,
                tenant_id=tenant,
            )
            future.set_result(
                AuthenticationResult(
                    client_id=client_id,
                    authenticated=result.found,
                    distance=result.distance,
                    public_key=public_key,
                    search_seconds=result.elapsed_seconds,
                    timed_out=result.timed_out,
                )
            )
        except BaseException as exc:  # pragma: no cover - defensive
            future.set_exception(exc)

    def _release(self, in_flight_key: str) -> None:
        with self._lock:
            self._in_flight_clients.discard(in_flight_key)
            self._pending -= 1

    def _enrolled_seed(self, client_id: str, tenant: str = DEFAULT_TENANT):
        """S_init plus directory telemetry; tolerates minimal doubles."""
        # Positional for default-tenant calls so authority doubles
        # (tests, adapters) predating the tenant parameter keep working.
        args = (
            (client_id,)
            if tenant == DEFAULT_TENANT
            else (client_id, tenant)
        )
        with_stats = getattr(self.authority, "enrolled_seed_with_stats", None)
        if with_stats is not None:
            return with_stats(*args)
        return self.authority.enrolled_seed(*args), None

    def _issue_public_key(
        self, client_id: str, seed: bytes, tenant: str
    ) -> bytes:
        """Key issuance, omitting the tenant for legacy authority doubles."""
        if tenant == DEFAULT_TENANT:
            return self.authority.issue_public_key(client_id, seed)
        return self.authority.issue_public_key(
            client_id, seed, tenant_id=tenant
        )

    def _search(
        self,
        client_id: str,
        digest: bytes,
        deadline_seconds: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        # Only pass the deadline/tenant when set: authority doubles
        # (tests, adapters) predating the parameters keep working.
        kwargs = (
            {"deadline_seconds": deadline_seconds}
            if deadline_seconds is not None
            else {}
        )
        if tenant != DEFAULT_TENANT:
            kwargs["tenant_id"] = tenant
        if self.breaker is None:
            return self.authority.run_search(client_id, digest, **kwargs)
        # A directory outage is the *directory's* failure, not the search
        # backend's: it must not count against the breaker guarding the
        # search engine (that would convert typed degraded-mode sheds
        # into blanket CircuitOpenError refusals). Smuggle it past the
        # breaker's failure accounting and re-raise outside.
        smuggled: list[DirectoryUnavailable] = []

        def guarded():
            try:
                return self.authority.run_search(client_id, digest, **kwargs)
            except DirectoryUnavailable as exc:
                smuggled.append(exc)
                return None

        result = self.breaker.call(guarded)
        if smuggled:
            raise smuggled[0]
        return result

    def _run(
        self,
        client_id: str,
        digest: bytes,
        deadline_seconds: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> AuthenticationResult:
        start = time.perf_counter()
        try:
            result = self._search(client_id, digest, deadline_seconds, tenant)
        except CircuitOpenError:
            self.metrics.record(rejected_open=1, failed=1, tenant_id=tenant)
            raise
        except DirectoryUnavailable as exc:
            # Every replica of this client's enrollment record is down.
            # Shed with a typed reason: the caller can tell "the
            # directory is degraded, retry later" apart from "your
            # authentication failed".
            self.metrics.record_shed(
                SHED_DIRECTORY_UNAVAILABLE,
                failed=1,
                search_seconds=time.perf_counter() - start,
                tenant_id=tenant,
            )
            raise RequestShed(SHED_DIRECTORY_UNAVAILABLE, str(exc)) from exc
        except Exception:
            # A failed search is still a finished search: account for it
            # so `submitted == completed + failed + pending` stays true.
            self.metrics.record(
                failed=1,
                search_seconds=time.perf_counter() - start,
                tenant_id=tenant,
            )
            raise
        public_key = None
        if result.found:
            assert result.seed is not None
            public_key = self._issue_public_key(client_id, result.seed, tenant)
        amortized = getattr(result, "amortized", None)
        self.metrics.record(
            completed=1,
            authenticated=1 if result.found else 0,
            search_seconds=time.perf_counter() - start,
            seeds_hashed=result.seeds_hashed,
            shells_completed=len(result.shells),
            plan_hits=amortized.plan_hits if amortized is not None else 0,
            plan_misses=amortized.plan_misses if amortized is not None else 0,
            pool_reuses=(
                1 if amortized is not None and amortized.pool_reused else 0
            ),
            tenant_id=tenant,
            **_directory_record_kwargs(getattr(result, "directory", None)),
        )
        return AuthenticationResult(
            client_id=client_id,
            authenticated=result.found,
            distance=result.distance,
            public_key=public_key,
            search_seconds=result.elapsed_seconds,
            timed_out=result.timed_out,
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and settle every queued request.

        Deterministic and idempotent. New submissions raise
        :class:`~repro.net.errors.ServerClosed` from the moment the close
        begins. With ``wait=True`` (default) queued and in-flight
        searches drain to completion; with ``wait=False`` queued work is
        cancelled (FIFO mode) or shed with reason ``"shutdown"``
        (scheduler mode) — either way every outstanding future settles
        before this method returns.

        If the authority's search backend is a persistent-pool engine,
        its worker processes are released too — the server was the thing
        keeping them warm. The engine re-spawns its pool transparently if
        the authority is used again afterwards.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.prefetcher is not None:
            self.prefetcher.close()
        # Always wait for *running* searches — a search thread mid-batch
        # holds the executor; tearing the backend down under it would be
        # nondeterministic. ``wait=False`` only cancels the queued tail.
        self._pool.shutdown(wait=True, cancel_futures=not wait)
        if self.scheduler is not None:
            self.scheduler.close(drain=wait)
        service = getattr(self.authority, "search_service", None)
        engine = getattr(service, "engine", None)
        if isinstance(engine, PooledSearchExecutor):
            engine.close()

    def __enter__(self) -> "ConcurrentCAServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
