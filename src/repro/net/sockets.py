"""Real TCP transport for the Figure 1 protocol.

Everything before this module measured the serving stack in-process: the
client held a Python reference to the server and
:class:`~repro.net.transport.InProcessTransport` charged a *virtual*
clock. Here the same CRC-framed messages cross a real socket between
real OS processes, which is what the paper's end-to-end throughput
claims are actually about:

* :class:`SocketTransport` — the client side of one TCP connection.
  Byte-compatible with the in-process path: what goes on the wire is
  exactly ``message.to_bytes()``, length-prefixed by
  :func:`~repro.net.messages.encode_frame`. It also implements the
  in-process transport's accounting duck type, so
  :class:`~repro.net.client.NetworkClient` drives it unchanged — except
  that ``charge`` now *sleeps* (retry backoff takes real time) and
  ``elapsed_seconds`` reads the wall clock.
* :class:`RemoteCAServer` — the client-side stub with the same
  ``handle_handshake`` / ``handle_digest`` surface as a local
  :class:`~repro.net.server.CAServer`, plus ``fetch_metrics`` for the
  admin snapshot. Typed refusals arrive as
  :class:`~repro.net.messages.ErrorReply` frames and are re-raised as
  the matching exception type.
* :class:`SocketCAServer` — the accept loop: one thread per connection,
  incremental frame reassembly via
  :class:`~repro.net.messages.FrameDecoder`, dispatch by frame type to a
  :class:`~repro.net.concurrent.ConcurrentCAServer` (or any
  ``handle_handshake`` / ``handle_digest`` object), every failure mapped
  to a typed ``ErrorReply`` instead of a dropped connection.

An optional *shim* (see :mod:`repro.deploy.wan`) sits on the client's
send path to emulate WAN latency, jitter, loss, and corruption with real
sleeps and real dropped frames — the deployment harness's replacement
for the virtual clock's latency model.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Protocol

from repro.net.errors import (
    ConnectionLost,
    MessageCorrupted,
    MessageDropped,
    ServerBusy,
    ServerClosed,
    TransportError,
)
from repro.net.messages import (
    MAX_FRAME_BYTES,
    AuthenticationResult,
    DigestSubmission,
    EnrollReply,
    EnrollRequest,
    ErrorReply,
    FrameDecoder,
    HandshakeRequest,
    HandshakeResponse,
    MetricsRequest,
    MetricsSnapshot,
    encode_frame,
    peek_frame_kind,
)
from repro.reliability.breaker import CircuitOpenError
from repro.sched.errors import RequestShed

__all__ = [
    "WireShim",
    "SocketTransport",
    "RemoteCAServer",
    "SocketCAServer",
    "raise_error_reply",
    "error_reply_for",
]

_RECV_BYTES = 65536


class WireShim(Protocol):
    """Send-path hook for WAN emulation (duck-typed, see deploy.wan)."""

    def apply(self, label: str, payload: bytes) -> bytes:
        """Delay/corrupt/drop one outgoing frame; may sleep or raise."""
        ...


class SocketTransport:
    """One client<->CA TCP connection with wall-clock accounting.

    Connection lifecycle: lazy connect on first use, automatic fresh
    connection after any failure (``ConnectionLost`` poisons the old
    socket), explicit :meth:`close`. All link failures are typed:
    timeouts surface as :class:`~repro.net.errors.MessageDropped`,
    socket breakage as :class:`~repro.net.errors.ConnectionLost`,
    framing violations as :class:`~repro.net.errors.MessageCorrupted` —
    exactly the retryable family NetworkClient's policy understands.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shim: WireShim | None = None,
        timeout_seconds: float = 15.0,
        connect_timeout_seconds: float = 5.0,
        puf_read_seconds: float = 0.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        if timeout_seconds <= 0 or connect_timeout_seconds <= 0:
            raise ValueError("timeouts must be positive")
        self.host = host
        self.port = port
        self.shim = shim
        self.timeout_seconds = timeout_seconds
        self.connect_timeout_seconds = connect_timeout_seconds
        #: Modeled client-side PUF read (0 by default: a deployment storm
        #: measures the serving path, not the client's USB bus).
        self.puf_read_seconds = puf_read_seconds
        self.max_frame_bytes = max_frame_bytes
        self._sock: socket.socket | None = None
        self._decoder: FrameDecoder | None = None
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        # -- InProcessTransport-compatible accounting --------------------
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: Frames actually sent/received over the socket (request() path).
        self.frames_sent = 0
        self.frames_received = 0
        self.reconnects = 0
        self._log: list[tuple[str, int, float]] = []

    # -- connection lifecycle -------------------------------------------

    def connect(self) -> None:
        """Establish the TCP connection now (otherwise lazy)."""
        with self._lock:
            self._ensure_connected()

    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_seconds
            )
        except OSError as exc:
            raise ConnectionLost(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        sock.settimeout(self.timeout_seconds)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._decoder = FrameDecoder(self.max_frame_bytes)
        self.reconnects += 1
        return sock

    def _drop_connection(self) -> None:
        sock, self._sock, self._decoder = self._sock, None, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        """Tear the connection down (idempotent)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framed request/response ----------------------------------------

    def request(self, label: str, payload: bytes) -> bytes:
        """Send one framed message; block for the peer's framed reply.

        The shim (if any) runs first: it may sleep out emulated latency,
        corrupt the payload (the server answers with a typed ``corrupt``
        refusal), or drop the frame entirely (raises ``MessageDropped``
        after the emulated wait — the frame never touches the socket,
        exactly like a loss on the path).
        """
        if self.shim is not None:
            payload = self.shim.apply(label, payload)
        started = time.monotonic()
        with self._lock:
            sock = self._ensure_connected()
            decoder = self._decoder
            assert decoder is not None
            try:
                sock.sendall(encode_frame(payload))
                self.frames_sent += 1
            except OSError as exc:
                self._drop_connection()
                raise ConnectionLost(f"send of {label!r} failed: {exc}") from exc
            while True:
                try:
                    chunk = sock.recv(_RECV_BYTES)
                except socket.timeout:
                    waited = time.monotonic() - started
                    self._drop_connection()
                    raise MessageDropped(label, waited) from None
                except OSError as exc:
                    self._drop_connection()
                    raise ConnectionLost(
                        f"recv for {label!r} failed: {exc}"
                    ) from exc
                if not chunk:
                    self._drop_connection()
                    raise ConnectionLost(
                        f"peer closed the connection awaiting {label!r}"
                    )
                try:
                    frames = decoder.feed(chunk)
                except MessageCorrupted:
                    # Framing lost sync; the connection is unusable.
                    self._drop_connection()
                    raise
                if frames:
                    if len(frames) > 1:
                        self._drop_connection()
                        raise MessageCorrupted(
                            f"{len(frames)} reply frames to one {label!r}"
                        )
                    self.frames_received += 1
                    self._log.append(
                        (label, len(frames[0]), time.monotonic() - started)
                    )
                    return frames[0]

    # -- InProcessTransport duck interface ------------------------------

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since this transport was created.

        The in-process transport's virtual clock becomes the real one:
        NetworkClient computes deadlines and retry budgets from
        *differences* of this value, which works unchanged.
        """
        return time.monotonic() - self._epoch

    def deliver(self, label: str, payload: bytes) -> bytes:
        """Accounting pass-through for NetworkClient's serialize legs.

        The real I/O happens in :meth:`request` (driven by the
        RemoteCAServer stub); this leg only counts the payload so the
        delivered-bytes telemetry matches the in-process transport's.
        """
        self.messages_delivered += 1
        self.bytes_delivered += len(payload)
        return payload

    def charge(self, label: str, seconds: float) -> None:
        """Really wait — backoff over a real link is wall-clock time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        if seconds:
            time.sleep(seconds)
        self._log.append((label, 0, seconds))

    def charge_puf_read(self) -> None:
        """Model the client's PUF read (really sleeps when configured)."""
        if self.puf_read_seconds:
            time.sleep(self.puf_read_seconds)
        self._log.append(("puf-read", 0, self.puf_read_seconds))

    @property
    def log(self) -> list[tuple[str, int, float]]:
        """(label, bytes, seconds) per request/charge on this transport."""
        return list(self._log)


def raise_error_reply(reply: ErrorReply) -> None:
    """Re-raise a typed refusal frame as the matching exception."""
    detail = reply.detail or reply.reason or reply.kind
    if reply.kind == "busy":
        raise ServerBusy(detail)
    if reply.kind == "closed":
        raise ServerClosed(detail)
    if reply.kind == "shed":
        raise RequestShed(reply.reason or "shed", reply.detail)
    if reply.kind == "corrupt":
        raise MessageCorrupted(f"server rejected frame: {detail}")
    raise TransportError(detail)


def error_reply_for(exc: BaseException) -> ErrorReply:
    """The typed refusal frame for one server-side failure."""
    if isinstance(exc, RequestShed):
        return ErrorReply(kind="shed", reason=exc.reason, detail=str(exc))
    if isinstance(exc, ServerClosed):
        return ErrorReply(kind="closed", detail=str(exc))
    if isinstance(exc, (ServerBusy, CircuitOpenError)):
        return ErrorReply(kind="busy", detail=str(exc))
    if isinstance(exc, RuntimeError):
        # ConcurrentCAServer admission control: saturated queue or
        # duplicate in-flight client. Both are retry-later conditions.
        return ErrorReply(kind="busy", detail=str(exc))
    if isinstance(exc, MessageCorrupted):
        return ErrorReply(kind="corrupt", detail=str(exc))
    return ErrorReply(kind="error", detail=f"{type(exc).__name__}: {exc}")


class RemoteCAServer:
    """Client-side stub: a CAServer-shaped object backed by a socket.

    ``NetworkClient.authenticate(remote)`` works unchanged — each
    protocol leg serializes, crosses the real wire, and is parsed on the
    other side; refusals come back as typed exceptions.
    """

    def __init__(self, transport: SocketTransport):
        self.transport = transport

    def _call(self, label: str, payload: bytes, expected):
        raw = self.transport.request(label, payload)
        kind = peek_frame_kind(raw)
        if kind == "error_reply":
            raise_error_reply(ErrorReply.from_bytes(raw))
        return expected.from_bytes(raw)

    def handle_handshake(self, request: HandshakeRequest) -> HandshakeResponse:
        """Figure 1 handshake over the wire."""
        return self._call(
            "handshake-request", request.to_bytes(), HandshakeResponse
        )

    def handle_digest(self, submission: DigestSubmission) -> AuthenticationResult:
        """Digest submission -> search -> result over the wire."""
        return self._call(
            "digest-submission", submission.to_bytes(), AuthenticationResult
        )

    def fetch_metrics(self, include_tenants: bool = False) -> MetricsSnapshot:
        """Scrape the server's ServerMetrics over the admin frame."""
        return self._call(
            "metrics-request",
            MetricsRequest(include_tenants=include_tenants).to_bytes(),
            MetricsSnapshot,
        )

    def enroll(self, client_id: str, probe: bool = False) -> EnrollReply:
        """(Re-)enroll a fleet identity; ``probe=True`` only asks the
        currently-held record version (the storm's loss detector)."""
        return self._call(
            "enroll-request",
            EnrollRequest(client_id=client_id, probe=probe).to_bytes(),
            EnrollReply,
        )


class SocketCAServer:
    """TCP front end: accept loop + per-connection frame dispatch.

    Wraps either a :class:`~repro.net.concurrent.ConcurrentCAServer`
    (digest submissions join its admission-controlled queue) or any
    object with ``handle_handshake`` / ``handle_digest``. Every frame
    gets exactly one reply frame; every failure becomes a typed
    :class:`~repro.net.messages.ErrorReply` rather than a vanished
    connection, so remote clients see the same typed outcomes in-process
    callers get as exceptions.
    """

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        request_timeout_seconds: float = 300.0,
        close_inner: bool = True,
        false_auth_counter: Callable[[], int] | None = None,
        enroll_handler: Callable[[EnrollRequest], EnrollReply] | None = None,
        extra_counters: Callable[[], dict] | None = None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.request_timeout_seconds = request_timeout_seconds
        #: Whether close() also closes the wrapped serving object.
        self.close_inner = close_inner
        #: Optional callable reporting server-side false authentications
        #: (the chaos tripwire) for the admin metrics snapshot.
        self.false_auth_counter = false_auth_counter
        #: Optional hook serving ``enroll_request`` frames (the deploy
        #: server wires the deterministic-fleet enrollment path here);
        #: without one the frame is refused with a typed error.
        self.enroll_handler = enroll_handler
        #: Optional callable whose items are merged into the metrics
        #: frame's counters under a ``durable_`` prefix — how a live
        #: WAL's append/fsync/checkpoint telemetry rides the admin frame
        #: without ServerMetrics needing to know about the store.
        self.extra_counters = extra_counters
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self.connections_accepted = 0
        self.frames_served = 0
        self.error_replies = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and spawn the accept loop; returns (host, port)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # Bounded blocking so the accept loop can observe the close flag
        # even if no connection ever arrives.
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="socket-ca-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def close(self, drain: bool = True) -> None:
        """Stop accepting, settle in-flight requests, cut connections.

        Signal-safe by construction: this only *sets* the closed event
        and then performs the teardown on the calling thread — a SIGTERM
        handler should set an event of its own and let the main thread
        call this (see ``repro.deploy.server``). ``drain=True`` lets
        in-flight searches finish (bounded by their time budgets);
        ``drain=False`` sheds them typed via the inner server.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # Settle the serving layer first: in-flight submissions resolve
        # (drain) or shed typed (no drain), so connection threads can
        # still write their reply frames before the sockets go away.
        if self.close_inner:
            inner_close = getattr(self.server, "close", None)
            if inner_close is not None:
                try:
                    inner_close(drain)
                except TypeError:
                    inner_close()
        with self._lock:
            connections = list(self._connections)
        deadline = time.monotonic() + (5.0 if drain else 1.0)
        for thread in list(self._threads):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "SocketCAServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accept / serve ---------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(0.2)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._connections.add(conn)
                self.connections_accepted += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"socket-ca-conn-{self.connections_accepted}",
                    daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while not self._closed.is_set():
                try:
                    chunk = conn.recv(_RECV_BYTES)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                try:
                    frames = decoder.feed(chunk)
                except MessageCorrupted as exc:
                    # Framing lost sync: one typed refusal, then cut the
                    # connection — nothing downstream is trustworthy.
                    self._send(conn, error_reply_for(exc).to_bytes())
                    return
                for raw in frames:
                    reply = self._serve_frame(raw)
                    if not self._send(conn, reply):
                        return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, payload: bytes) -> bool:
        try:
            conn.sendall(encode_frame(payload))
            return True
        except OSError:
            return False

    def _serve_frame(self, raw: bytes) -> bytes:
        """One frame in, exactly one reply frame out (never raises)."""
        self.frames_served += 1
        try:
            kind = peek_frame_kind(raw)
            if kind == "handshake_request":
                request = HandshakeRequest.from_bytes(raw)
                return self._handshake(request).to_bytes()
            if kind == "digest_submission":
                submission = DigestSubmission.from_bytes(raw)
                return self._digest(submission).to_bytes()
            if kind == "enroll_request":
                enroll_request = EnrollRequest.from_bytes(raw)
                return self._enroll(enroll_request).to_bytes()
            if kind == "metrics_request":
                metrics_request = MetricsRequest.from_bytes(raw)
                return self._metrics(metrics_request).to_bytes()
            raise MessageCorrupted(f"unserveable frame type {kind!r}")
        except BaseException as exc:
            self.error_replies += 1
            return error_reply_for(exc).to_bytes()

    # -- dispatch over either server shape --------------------------------

    def _handshake(self, request: HandshakeRequest) -> HandshakeResponse:
        handle = getattr(self.server, "handle_handshake", None)
        if handle is not None:
            return handle(request)
        challenge = self.server.authority.issue_challenge(
            request.client_id, tenant_id=request.tenant
        )
        return HandshakeResponse(
            client_id=challenge.client_id,
            address=challenge.address,
            window=challenge.window,
            usable_mask=HandshakeResponse.pack_usable(challenge.usable),
            bit_count=challenge.bit_count,
            hash_name=challenge.hash_name,
        )

    def _digest(self, submission: DigestSubmission) -> AuthenticationResult:
        record = getattr(
            getattr(self.server, "authority", None), "record_digest", None
        )
        if record is not None:
            # False-authentication tripwire: pin the submitted M1 before
            # admission so key issuance can re-verify the found seed.
            record(
                submission.client_id,
                submission.digest,
                tenant_id=submission.tenant,
            )
        handle = getattr(self.server, "handle_digest", None)
        if handle is not None:
            return handle(submission)
        future = self.server.submit(
            submission.client_id,
            submission.digest,
            deadline_seconds=submission.deadline_seconds,
            tenant_id=submission.tenant,
        )
        return future.result(timeout=self.request_timeout_seconds)

    def _enroll(self, request: EnrollRequest) -> EnrollReply:
        if self.enroll_handler is None:
            raise TransportError(
                "this server does not accept enrollment frames"
            )
        return self.enroll_handler(request)

    def _metrics(self, request: MetricsRequest) -> MetricsSnapshot:
        metrics = getattr(self.server, "metrics", None)
        counters: dict[str, float] = (
            metrics.snapshot() if metrics is not None else {}
        )
        if self.extra_counters is not None:
            for key, value in self.extra_counters().items():
                counters[f"durable_{key}"] = float(value)
        if metrics is None:
            return MetricsSnapshot(counters=counters)
        false_auths = (
            self.false_auth_counter() if self.false_auth_counter else 0
        )
        return MetricsSnapshot(
            counters=counters,
            shed_reasons=metrics.shed_breakdown(),
            tenants=(
                metrics.tenant_snapshot() if request.include_tenants else {}
            ),
            false_authentications=false_auths,
        )
