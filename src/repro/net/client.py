"""Network-facing client endpoint.

Wraps a :class:`~repro.core.protocol.ClientDevice` with the Figure 1
message flow: handshake request, PUF read, digest submission, result.
"""

from __future__ import annotations

import numpy as np

from repro.core.authentication import Challenge
from repro.core.protocol import ClientDevice
from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)
from repro.net.transport import InProcessTransport
from repro.puf.ternary import TernaryMask

__all__ = ["NetworkClient"]


class NetworkClient:
    """Drives one authentication round over a transport."""

    def __init__(
        self,
        device: ClientDevice,
        transport: InProcessTransport,
        reference_mask: TernaryMask | None = None,
        max_attempts: int = 3,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.device = device
        self.transport = transport
        self.reference_mask = reference_mask
        self.max_attempts = max_attempts

    def authenticate(self, server) -> AuthenticationResult:
        """Authenticate, restarting the handshake on failure/timeout.

        The paper's behaviour: "if a timeout occurs, the CA simply sends
        the client a new PUF address and the process is restarted" — a
        fresh read usually lands at a smaller Hamming distance.
        """
        result = self._one_round(server)
        attempts = 1
        while not result.authenticated and attempts < self.max_attempts:
            result = self._one_round(server)
            attempts += 1
        return result

    def _one_round(self, server) -> AuthenticationResult:
        """Run handshake -> read -> digest -> result against ``server``."""
        request = HandshakeRequest(client_id=self.device.client_id)
        self.transport.deliver("handshake-request", request.to_bytes())
        response: HandshakeResponse = server.handle_handshake(request)
        self.transport.deliver("handshake-response", response.to_bytes())

        challenge = Challenge(
            client_id=response.client_id,
            address=response.address,
            window=response.window,
            usable=response.unpack_usable(),
            bit_count=response.bit_count,
            hash_name=response.hash_name,
        )
        self.transport.charge_puf_read()
        digest = self.device.respond(challenge, reference_mask=self.reference_mask)

        submission = DigestSubmission(
            client_id=self.device.client_id, digest=digest
        )
        self.transport.deliver("digest-submission", submission.to_bytes())
        result: AuthenticationResult = server.handle_digest(submission)
        self.transport.deliver("authentication-result", result.to_bytes())
        return result
