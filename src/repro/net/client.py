"""Network-facing client endpoint.

Wraps a :class:`~repro.core.protocol.ClientDevice` with the Figure 1
message flow: handshake request, PUF read, digest submission, result.

Every frame round-trips through its byte serialization and is re-parsed
on arrival, so transport-level corruption is detected (CRC framing in
:mod:`repro.net.messages`) instead of silently consumed. Retries follow
a :class:`~repro.reliability.retry.RetryPolicy` — the paper's "resend
the handshake on timeout" made real and bounded: exponential backoff
with jitter (charged to the virtual clock), and per-attempt plus
end-to-end deadlines that terminate in typed errors.
"""

from __future__ import annotations

import numpy as np

from repro.core.authentication import Challenge
from repro.core.protocol import ClientDevice
from repro.net.errors import TransportError
from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)
from repro.net.transport import InProcessTransport
from repro.puf.ternary import TernaryMask
from repro.reliability.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
)
from repro.tenancy.context import DEFAULT_TENANT

__all__ = ["NetworkClient"]


class NetworkClient:
    """Drives one authentication round over a transport."""

    def __init__(
        self,
        device: ClientDevice,
        transport: InProcessTransport,
        reference_mask: TernaryMask | None = None,
        max_attempts: int = 3,
        retry_policy: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        deadline_seconds: float | None = None,
        tenant_id: str = DEFAULT_TENANT,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        self.device = device
        self.transport = transport
        self.reference_mask = reference_mask
        self.max_attempts = max_attempts
        #: Namespace this client authenticates under; the default tenant
        #: keeps every frame byte-identical to the pre-tenancy protocol.
        self.tenant_id = tenant_id or DEFAULT_TENANT
        #: Client-side answer deadline, attached to every digest
        #: submission (how long *this client* is willing to wait for the
        #: search, independent of the protocol threshold T).
        self.deadline_seconds = deadline_seconds
        # Without an explicit policy, reproduce the legacy behaviour:
        # up to max_attempts back-to-back rounds, no backoff, no deadline.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=max_attempts,
                base_backoff_seconds=0.0,
                jitter_fraction=0.0,
                attempt_deadline_seconds=None,
                deadline_seconds=None,
            )
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Attempts consumed by the most recent authenticate() call.
        self.last_attempts = 0

    def authenticate(self, server) -> AuthenticationResult:
        """Authenticate, restarting the handshake on failure/timeout.

        The paper's behaviour: "if a timeout occurs, the CA simply sends
        the client a new PUF address and the process is restarted" — a
        fresh read usually lands at a smaller Hamming distance. Here the
        restart is governed by the retry policy; terminal outcomes are a
        result (authenticated or cleanly rejected),
        :class:`~repro.reliability.retry.RetriesExhausted` when every
        attempt died on the link, or
        :class:`~repro.reliability.retry.DeadlineExceeded`.
        """
        policy = self.retry_policy
        start = self.transport.elapsed_seconds
        result: AuthenticationResult | None = None
        last_error: TransportError | None = None

        for attempt in range(1, policy.max_attempts + 1):
            self.last_attempts = attempt
            if attempt > 1:
                backoff = policy.backoff_seconds(attempt - 1, self._rng)
                if backoff:
                    self.transport.charge("retry-backoff", backoff)
                self._check_deadline(policy, start, attempt)

            attempt_start = self.transport.elapsed_seconds
            try:
                result = self._one_round(server)
                last_error = None
            except TransportError as exc:
                result = None
                last_error = exc

            if result is not None and result.authenticated:
                return result
            attempt_elapsed = self.transport.elapsed_seconds - attempt_start
            if (
                result is not None
                and policy.attempt_deadline_seconds is not None
                and attempt_elapsed > policy.attempt_deadline_seconds
            ):
                # The round crawled past its budget: treat as timed out.
                result = None
            self._check_deadline(policy, start, attempt)

        if result is not None:
            return result
        assert last_error is not None
        raise RetriesExhausted(
            attempts=policy.max_attempts,
            elapsed_seconds=self.transport.elapsed_seconds - start,
            last_error=last_error,
        )

    def _check_deadline(self, policy: RetryPolicy, start: float, attempts: int) -> None:
        if policy.deadline_seconds is None:
            return
        elapsed = self.transport.elapsed_seconds - start
        if elapsed > policy.deadline_seconds:
            raise DeadlineExceeded(
                f"authentication deadline of {policy.deadline_seconds:.1f}s "
                f"exceeded after {attempts} attempt(s) ({elapsed:.2f}s)",
                attempts=attempts,
                elapsed_seconds=elapsed,
            )

    def _one_round(self, server) -> AuthenticationResult:
        """Run handshake -> read -> digest -> result against ``server``.

        Each leg is serialized, delivered (where faults may strike), and
        re-parsed, so what the peer consumes is what the wire produced.
        """
        request = HandshakeRequest(
            client_id=self.device.client_id, tenant=self.tenant_id
        )
        request = HandshakeRequest.from_bytes(
            self.transport.deliver("handshake-request", request.to_bytes())
        )
        response: HandshakeResponse = server.handle_handshake(request)
        response = HandshakeResponse.from_bytes(
            self.transport.deliver("handshake-response", response.to_bytes())
        )

        challenge = Challenge(
            client_id=response.client_id,
            address=response.address,
            window=response.window,
            usable=response.unpack_usable(),
            bit_count=response.bit_count,
            hash_name=response.hash_name,
        )
        self.transport.charge_puf_read()
        digest = self.device.respond(challenge, reference_mask=self.reference_mask)

        submission = DigestSubmission(
            client_id=self.device.client_id,
            digest=digest,
            deadline_seconds=self.deadline_seconds,
            tenant=self.tenant_id,
        )
        submission = DigestSubmission.from_bytes(
            self.transport.deliver("digest-submission", submission.to_bytes())
        )
        result: AuthenticationResult = server.handle_digest(submission)
        return AuthenticationResult.from_bytes(
            self.transport.deliver("authentication-result", result.to_bytes())
        )
