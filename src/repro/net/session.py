"""Hardened session layer: nonces, replay protection, MAC'd handshakes.

Protocol-hardening extension beyond the paper (which assumes a benign
network for its measurements). Two attacks on the bare message flow are
closed here:

* **Challenge forgery** — an active attacker substituting its own PUF
  address/mask in the handshake response could steer the client into
  reading attacker-chosen cells. Challenges are therefore MAC'd with a
  per-client key installed at the secure enrollment facility (the one
  place the threat model allows a shared secret).
* **Digest replay** — an eavesdropper replaying an old ``M₁`` would be
  re-authenticated even though it never read the PUF. Every challenge
  carries a fresh nonce, the client binds its digest to the nonce
  (``M₁ = H(seed ‖ nonce)``), and the CA accepts each nonce once,
  within a freshness window.

The search is unchanged: the CA simply hashes ``candidate ‖ nonce``
instead of ``candidate`` — one extra absorbed block at most, preserving
the protocol's cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.authentication import CertificateAuthority, Challenge
from repro.engines.result import SearchResult
from repro.engines.wrappers import EngineWrapper, describe_engine
from repro.hashes.hmac import hmac_digest, hmac_verify
from repro.hashes.registry import get_hash
from repro.net.messages import AuthenticationResult

__all__ = ["SessionError", "SecureChallenge", "SessionManager", "SecureClientSession"]

_NONCE_BYTES = 16


class SessionError(Exception):
    """A handshake or submission violated the session discipline."""


@dataclass(frozen=True)
class SecureChallenge:
    """A MAC'd, nonce-bound challenge."""

    challenge: Challenge
    nonce: bytes
    issued_at: float
    mac: bytes

    def mac_payload(self) -> bytes:
        """The byte string the challenge MAC covers."""
        return _challenge_payload(self.challenge, self.nonce)


def _challenge_payload(challenge: Challenge, nonce: bytes) -> bytes:
    usable_packed = np.packbits(challenge.usable.astype(np.uint8)).tobytes()
    return b"|".join(
        [
            challenge.client_id.encode(),
            str(challenge.address).encode(),
            str(challenge.window).encode(),
            usable_packed,
            str(challenge.bit_count).encode(),
            challenge.hash_name.encode(),
            nonce,
        ]
    )


class SessionManager:
    """CA-side session discipline around a CertificateAuthority."""

    def __init__(
        self,
        authority: CertificateAuthority,
        nonce_lifetime_seconds: float = 60.0,
        mac_hash: str = "sha3-256",
        rng: np.random.Generator | None = None,
        clock=time.monotonic,
    ):
        self.authority = authority
        self.nonce_lifetime = nonce_lifetime_seconds
        self.mac_hash = mac_hash
        self._rng = rng if rng is not None else np.random.default_rng()
        self._clock = clock
        self._mac_keys: dict[str, bytes] = {}
        #: nonce -> (client_id, issued_at); removed on use or expiry.
        self._outstanding: dict[bytes, tuple[str, float]] = {}
        self.replays_rejected = 0
        self.forgeries_rejected = 0

    # -- enrollment-time key installation --------------------------------

    def install_mac_key(self, client_id: str, mac_key: bytes) -> None:
        """Record the per-client MAC key (secure-facility step)."""
        if len(mac_key) < 16:
            raise ValueError("MAC key must be at least 16 bytes")
        self._mac_keys[client_id] = mac_key

    def _key_for(self, client_id: str) -> bytes:
        if client_id not in self._mac_keys:
            raise SessionError(f"no MAC key installed for {client_id!r}")
        return self._mac_keys[client_id]

    # -- handshake --------------------------------------------------------

    def issue_challenge(self, client_id: str) -> SecureChallenge:
        """A fresh, MAC'd, nonce-bound challenge."""
        self._sweep_expired()
        challenge = self.authority.issue_challenge(client_id)
        nonce = self._rng.bytes(_NONCE_BYTES)
        issued_at = self._clock()
        mac = hmac_digest(
            self._key_for(client_id),
            _challenge_payload(challenge, nonce),
            self.mac_hash,
        )
        self._outstanding[nonce] = (client_id, issued_at)
        return SecureChallenge(challenge, nonce, issued_at, mac)

    def _sweep_expired(self) -> None:
        now = self._clock()
        expired = [
            nonce
            for nonce, (_cid, at) in self._outstanding.items()
            if now - at > self.nonce_lifetime
        ]
        for nonce in expired:
            del self._outstanding[nonce]

    # -- digest submission -------------------------------------------------

    def accept_digest(
        self, client_id: str, nonce: bytes, digest: bytes
    ) -> AuthenticationResult:
        """Validate the nonce, run the nonce-bound search, consume the nonce."""
        self._sweep_expired()
        entry = self._outstanding.pop(nonce, None)
        if entry is None:
            self.replays_rejected += 1
            raise SessionError("unknown, expired, or already-used nonce")
        owner, _issued = entry
        if owner != client_id:
            self.replays_rejected += 1
            raise SessionError("nonce was issued to a different client")

        try:
            result = self._nonce_bound_search(client_id, nonce, digest)
        except Exception:
            # A transient backend failure (dead device, open breaker)
            # must not burn the client's nonce: no search completed, so
            # re-registering it cannot enable a replay, and the client's
            # retry can reuse its challenge instead of re-handshaking.
            self._outstanding[nonce] = entry
            raise
        public_key = None
        if result.found:
            assert result.seed is not None
            public_key = self.authority.issue_public_key(client_id, result.seed)
        return AuthenticationResult(
            client_id=client_id,
            authenticated=result.found,
            distance=result.distance,
            public_key=public_key,
            search_seconds=result.elapsed_seconds,
            timed_out=result.timed_out,
        )

    def _nonce_bound_search(
        self, client_id: str, nonce: bytes, digest: bytes
    ) -> SearchResult:
        """Algorithm 1, hashing ``candidate ‖ nonce`` per candidate.

        Runs through the authority's search service with a nonce-binding
        adapter around its engine, so any engine (vectorized, parallel,
        cluster) gains replay protection unchanged.
        """
        service = self.authority.search_service
        engine = _NonceBindingEngine(
            service.engine, self.authority.hash_name, nonce
        )
        return engine.search(
            self.authority.enrolled_seed(client_id),
            digest,
            max_distance=service.max_distance,
            time_budget=service.time_threshold,
        )


class _NonceBindingEngine(EngineWrapper):
    """Adapter: search for H(candidate ‖ nonce) instead of H(candidate).

    For SHA-3 the nonce is absorbed into the vectorized batch kernel
    (``seed ‖ nonce`` still fits one sponge block, so the bound search
    runs at full batch throughput); other hashes fall back to a scalar
    Chase-sequence walk, adequate at reproduction scale.

    Search geometry (notably ``batch_size``) forwards from the wrapped
    engine via :class:`~repro.engines.wrappers.EngineWrapper`, so the
    bound search batches exactly like the engine it stands in for —
    even when that engine is itself a wrapper stack (flaky, failover).
    """

    wrapper_name = "nonce-bound"

    def __init__(self, engine, hash_name: str, nonce: bytes):
        super().__init__(engine)
        self.algo = get_hash(hash_name)
        self.nonce = nonce

    def describe(self) -> str:
        return f"nonce-bound[{self.algo.name}]({describe_engine(self.inner)})"

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Nonce-bound Algorithm 1 (vectorized for SHA-3)."""
        import dataclasses

        if self.algo.name == "sha3-256":
            result = self._search_vectorized(
                base_seed, target_digest, max_distance, time_budget
            )
        else:
            result = self._search_scalar(
                base_seed, target_digest, max_distance, time_budget
            )
        return dataclasses.replace(result, engine=self.describe())

    def _search_vectorized(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None,
    ) -> SearchResult:
        import time as _time

        from repro._bitutils import (
            SEED_BITS,
            positions_to_mask_words,
            seed_to_words,
            words_to_seed,
        )
        from repro.combinatorics.binomial import binomial
        from repro.combinatorics.ranking import unrank_lexicographic_batch
        from repro.hashes.batch_sha3 import (
            sha3_256_batch_seeds_suffixed,
            sha3_256_digest_to_words,
        )

        start = _time.perf_counter()
        target_words = sha3_256_digest_to_words(target_digest)
        base_words = seed_to_words(base_seed)
        hashed = 1
        if self.algo.scalar(base_seed + self.nonce) == target_digest:
            return SearchResult(
                True, base_seed, 0, hashed, _time.perf_counter() - start
            )
        for distance in range(1, max_distance + 1):
            total = binomial(SEED_BITS, distance)
            for lo in range(0, total, self.batch_size):
                hi = min(lo + self.batch_size, total)
                ranks = np.arange(lo, hi, dtype=np.uint64)
                positions = unrank_lexicographic_batch(SEED_BITS, distance, ranks)
                masks = positions_to_mask_words(positions)
                candidates = base_words[None, :] ^ masks
                digests = sha3_256_batch_seeds_suffixed(candidates, self.nonce)
                hashed += candidates.shape[0]
                matches = np.flatnonzero((digests == target_words).all(axis=1))
                if matches.size:
                    found = words_to_seed(candidates[int(matches[0])])
                    return SearchResult(
                        True, found, distance, hashed,
                        _time.perf_counter() - start,
                    )
                if (
                    time_budget is not None
                    and _time.perf_counter() - start > time_budget
                ):
                    return SearchResult(
                        False, None, None, hashed,
                        _time.perf_counter() - start, timed_out=True,
                    )
        return SearchResult(
            False, None, None, hashed, _time.perf_counter() - start
        )

    def _search_scalar(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None,
    ) -> SearchResult:
        import time as _time

        from repro._bitutils import SEED_BITS, flip_bits
        from repro.combinatorics.algorithm382 import Algorithm382Iterator

        start = _time.perf_counter()
        hashed = 0

        hashed += 1
        if self.algo.scalar(base_seed + self.nonce) == target_digest:
            return SearchResult(
                True, base_seed, 0, hashed, _time.perf_counter() - start
            )
        for distance in range(1, max_distance + 1):
            iterator = Algorithm382Iterator(SEED_BITS, distance)
            while True:
                candidate = flip_bits(base_seed, iterator.current())
                hashed += 1
                if self.algo.scalar(candidate + self.nonce) == target_digest:
                    return SearchResult(
                        True, candidate, distance, hashed,
                        _time.perf_counter() - start,
                    )
                if (
                    time_budget is not None
                    and _time.perf_counter() - start > time_budget
                ):
                    return SearchResult(
                        False, None, None, hashed,
                        _time.perf_counter() - start, timed_out=True,
                    )
                if not iterator.advance():
                    break
        return SearchResult(
            False, None, None, hashed, _time.perf_counter() - start
        )


class SecureClientSession:
    """Client-side counterpart: verify the MAC, bind the digest."""

    def __init__(self, device, mac_key: bytes, mac_hash: str = "sha3-256"):
        self.device = device
        self.mac_key = mac_key
        self.mac_hash = mac_hash

    def respond(self, secure: SecureChallenge, reference_mask=None) -> bytes:
        """Verify challenge authenticity, read the PUF, bind to the nonce."""
        if not hmac_verify(
            self.mac_key, secure.mac_payload(), secure.mac, self.mac_hash
        ):
            raise SessionError("challenge MAC verification failed")
        challenge = secure.challenge
        readout = self.device.puf.read(challenge.address, challenge.window)
        bits = readout.bits[challenge.usable][: challenge.bit_count]
        if self.device.noise_target_distance is not None and reference_mask is not None:
            from repro.puf.noise import inject_noise_to_distance

            reference = reference_mask.reference_seed_bits(challenge.bit_count)
            bits = inject_noise_to_distance(
                bits, reference, self.device.noise_target_distance, self.device._rng
            )
        seed = np.packbits(bits).tobytes()
        return get_hash(challenge.hash_name).scalar(seed + secure.nonce)
