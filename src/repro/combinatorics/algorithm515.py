"""Buckles–Lybanon Algorithm 515 — combinations by lexicographic index.

Algorithm 515 (*ACM TOMS*, 1977) produces the ``rank``-th k-combination of
``{0..n-1}`` in lexicographic order directly from its index, without
visiting predecessors. This makes it embarrassingly parallel: thread ``r``
of ``p`` simply unranks indices ``r·n_per_thread + j`` — no shared state,
no sequential dependency. The trade-off the paper's Table 4 quantifies is
per-combination *work*: each unranking walks the binomial table (O(n) with
a precomputed table), so it loses to the minimal-change sequence despite
its superior parallelization potential.

Two costs models are exposed:

* :func:`unrank_lexicographic` — recomputes binomials (cached);
* :class:`Algorithm515Iterator` with ``use_lookup_table=True`` — consults
  a dense precomputed table, reproducing the paper's GPU lookup-table
  optimization that trades memory bandwidth for arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.combinatorics.binomial import binomial, binomial_table
from repro.combinatorics.iterator_base import CombinationIterator

__all__ = ["unrank_lexicographic", "Algorithm515Iterator"]


def unrank_lexicographic(n: int, k: int, rank: int) -> tuple[int, ...]:
    """The ``rank``-th k-subset of {0..n-1} in lexicographic order.

    Follows Algorithm 515's descent: choose the smallest first element
    whose suffix block contains ``rank``, recurse on the remainder.
    """
    total = binomial(n, k)
    if not 0 <= rank < total:
        raise IndexError(f"rank {rank} out of range [0, {total})")
    combo = []
    base = 0
    remaining = rank
    for j in range(k, 0, -1):
        # Find the smallest c >= base such that C(n-1-c, j-1) block holds
        # the remaining rank.
        c = base
        block = binomial(n - 1 - c, j - 1)
        while remaining >= block:
            remaining -= block
            c += 1
            block = binomial(n - 1 - c, j - 1)
        combo.append(c)
        base = c + 1
    return tuple(combo)


class Algorithm515Iterator(CombinationIterator):
    """Index-driven combination iterator (lexicographic order).

    The iterator's position is a single integer rank; ``advance`` unranks
    the next index from scratch, mirroring how each GPU thread in the
    paper's Algorithm-515 variant derives every combination independently.
    """

    def __init__(self, n: int, k: int, use_lookup_table: bool = False):
        super().__init__(n, k)
        self._total = binomial(n, k)
        self._rank = 0
        self._table: np.ndarray | None = None
        if use_lookup_table:
            # Dense C(m, j) table for m <= n, j <= k, exact object dtype.
            self._table = binomial_table(n, k)

    @property
    def total(self) -> int:
        """Number of combinations in the sequence, C(n, k)."""
        return self._total

    def _binomial(self, m: int, j: int) -> int:
        if m < 0 or j < 0 or j > m:
            return 0
        if self._table is not None:
            return int(self._table[m, j])
        return binomial(m, j)

    def _unrank(self, rank: int) -> tuple[int, ...]:
        combo = []
        base = 0
        remaining = rank
        for j in range(self.k, 0, -1):
            c = base
            block = self._binomial(self.n - 1 - c, j - 1)
            while remaining >= block:
                remaining -= block
                c += 1
                block = self._binomial(self.n - 1 - c, j - 1)
            combo.append(c)
            base = c + 1
        return tuple(combo)

    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""
        if self.k == 0:
            return ()
        return self._unrank(self._rank)

    def advance(self) -> bool:
        """Move to the next combination; False when exhausted."""
        if self._rank + 1 >= self._total:
            return False
        self._rank += 1
        return True

    def reset(self) -> None:
        """Return to the first combination of the sequence."""
        self._rank = 0

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return (self._rank,)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        (rank,) = state
        if not 0 <= rank < max(self._total, 1):
            raise ValueError("rank out of range")
        self._rank = rank

    def skip_to(self, rank: int) -> None:
        # Random access is the whole point of Algorithm 515.
        """Position on the ``rank``-th combination (random access)."""
        if not 0 <= rank < self._total:
            raise IndexError(f"rank {rank} out of range [0, {self._total})")
        self._rank = rank
