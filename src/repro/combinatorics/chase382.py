"""Chase's Algorithm 382 proper (the TWIDDLE formulation).

Phillip J. Chase, *Algorithm 382: Combinations of M out of N objects*,
CACM 13(6), 1970. This is the exact algorithm the paper names; the
widely circulated TWIDDLE formulation (Belmonte) drives it with an
integer work array ``p`` of ``n + 2`` cells. Each step reports a single
transposition — "bit ``y`` leaves the combination, bit ``x`` enters" —
so successive combinations differ by exactly one element: the
minimal-change property SALTED-GPU exploits to update its candidate
seed with two XORs.

Relationship to :mod:`repro.combinatorics.algorithm382`: that module
implements the revolving-door Gray code, a sibling minimal-change order
with an O(k) state. This one is the historical Algorithm 382 itself,
with its O(n) work array; both orders are valid seed iterators, and the
test suite verifies the same contract for each. The iterator here is
registered as ``"chase-382"`` where generators are selectable.
"""

from __future__ import annotations

from typing import Iterator

from repro.combinatorics.iterator_base import CombinationIterator

__all__ = ["Twiddle", "chase382_sequence", "Chase382Iterator"]


class Twiddle:
    """The TWIDDLE state machine: one transposition per step."""

    def __init__(self, n: int, k: int):
        if k < 0 or n < 0 or k > n:
            raise ValueError(f"invalid combination parameters n={n}, k={k}")
        self.n = n
        self.k = k
        self._p = [0] * (n + 2)
        self._init_p()

    def _init_p(self) -> None:
        n, k = self.n, self.k
        p = self._p
        p[0] = n + 1
        for i in range(1, n - k + 1):
            p[i] = 0
        for i in range(n - k + 1, n + 1):
            p[i] = i + k - n
        p[n + 1] = -2
        if k == 0:
            p[1] = 1

    def step(self) -> tuple[int, int] | None:
        """Advance one combination.

        Returns ``(enter, leave)`` bit indices (0-based), or ``None``
        when the sequence is exhausted.
        """
        p = self._p
        j = 1
        while p[j] <= 0:
            j += 1
        if p[j - 1] == 0:
            for i in range(j - 1, 1, -1):
                p[i] = -1
            p[j] = 0
            p[1] = 1
            return (0, j - 1)
        if j > 1:
            p[j - 1] = 0
        j += 1
        while p[j] > 0:
            j += 1
        k = j - 1
        i = j
        while p[i] == 0:
            p[i] = -1
            i += 1
        if p[i] == -1:
            p[i] = p[k]
            p[k] = -1
            return (i - 1, k - 1)
        if i == p[0]:
            return None
        p[j] = p[i]
        p[i] = 0
        return (j - 1, i - 1)

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return tuple(self._p)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        if len(state) != self.n + 2:
            raise ValueError("state has wrong length for this (n, k)")
        self._p = list(state)


def chase382_sequence(n: int, k: int) -> Iterator[tuple[int, ...]]:
    """All k-subsets of {0..n-1} in Chase's Algorithm-382 order.

    The first combination is the top block ``{n-k, …, n-1}`` (TWIDDLE's
    convention); every successor differs by one transposition.
    """
    if k < 0 or k > n:
        raise ValueError(f"invalid parameters n={n}, k={k}")
    if k == 0:
        yield ()
        return
    member = [False] * n
    for i in range(n - k, n):
        member[i] = True
    twiddle = Twiddle(n, k)
    yield tuple(i for i in range(n) if member[i])
    while True:
        move = twiddle.step()
        if move is None:
            return
        enter, leave = move
        member[enter] = True
        member[leave] = False
        yield tuple(i for i in range(n) if member[i])


class Chase382Iterator(CombinationIterator):
    """CombinationIterator over the genuine Chase order.

    State is ``(membership bitmask, p array)`` — O(n), matching the
    paper's remark that per-thread state for Chase's method is larger
    than an index (hence the shared-memory optimization of §3.2.3).
    """

    def __init__(self, n: int, k: int):
        super().__init__(n, k)
        self._twiddle = Twiddle(n, k)
        self._member = [False] * n
        for i in range(n - k, n):
            self._member[i] = True
        self._exhausted = k == 0

    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""
        return tuple(i for i in range(self.n) if self._member[i])

    def current_mask(self) -> int:
        """The raw membership bitmask (bit i set = element i chosen)."""
        mask = 0
        for i in range(self.n):
            if self._member[i]:
                mask |= 1 << i
        return mask

    def advance(self) -> bool:
        """Move to the next combination; False when exhausted."""
        if self._exhausted:
            return False
        move = self._twiddle.step()
        if move is None:
            self._exhausted = True
            return False
        enter, leave = move
        self._member[enter] = True
        self._member[leave] = False
        return True

    def reset(self) -> None:
        """Return to the first combination of the sequence."""
        self._twiddle = Twiddle(self.n, self.k)
        self._member = [False] * self.n
        for i in range(self.n - self.k, self.n):
            self._member[i] = True
        self._exhausted = self.k == 0

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return (tuple(self._member), self._twiddle.state(), self._exhausted)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        member, twiddle_state, exhausted = state
        if len(member) != self.n:
            raise ValueError("membership vector has wrong length")
        if sum(member) != self.k:
            raise ValueError("membership vector has wrong popcount")
        self._member = list(member)
        self._twiddle.restore(twiddle_state)
        self._exhausted = exhausted
