"""Combination generation — the RBC seed-iteration substrate.

The RBC search enumerates, for each Hamming distance ``d``, every way of
flipping ``d`` of the 256 seed bits: the ``d``-subsets of ``{0, …, 255}``.
The paper evaluates three generator families (its Section 3.2.1 / Table 4):

* **Gosper's hack** (prior work) — fast on native words, poor on 256-bit
  multiword values: :mod:`repro.combinatorics.gosper`.
* **Algorithm 515** (Buckles–Lybanon) — index-based unranking, trivially
  parallel: :mod:`repro.combinatorics.algorithm515` and the vectorized form
  in :mod:`repro.combinatorics.ranking`.
* **Chase's Algorithm 382** — a minimal-change (Gray-code) sequence,
  sequential but work-minimal, parallelized via checkpointed states:
  :mod:`repro.combinatorics.algorithm382`.

Algorithm 154 (Mifsud's lexicographic successor) is included as the
historical baseline the related-work section cites.
"""

from repro.combinatorics.binomial import (
    binomial,
    binomial_table,
    cumulative_ball_size,
    exhaustive_seed_count,
    average_seed_count,
)
from repro.combinatorics.iterator_base import CombinationIterator
from repro.combinatorics.gosper import GosperIterator, gosper_next
from repro.combinatorics.algorithm154 import Algorithm154Iterator, lexicographic_successor
from repro.combinatorics.algorithm382 import Algorithm382Iterator, minimal_change_sequence
from repro.combinatorics.chase382 import Chase382Iterator, chase382_sequence
from repro.combinatorics.algorithm515 import Algorithm515Iterator, unrank_lexicographic
from repro.combinatorics.ranking import (
    rank_lexicographic,
    unrank_lexicographic_batch,
    combinations_to_masks,
)

__all__ = [
    "binomial",
    "binomial_table",
    "cumulative_ball_size",
    "exhaustive_seed_count",
    "average_seed_count",
    "CombinationIterator",
    "GosperIterator",
    "gosper_next",
    "Algorithm154Iterator",
    "lexicographic_successor",
    "Algorithm382Iterator",
    "minimal_change_sequence",
    "Chase382Iterator",
    "chase382_sequence",
    "Algorithm515Iterator",
    "unrank_lexicographic",
    "rank_lexicographic",
    "unrank_lexicographic_batch",
    "combinations_to_masks",
]
