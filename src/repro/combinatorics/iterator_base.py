"""Common interface for combination iterators.

Every seed-iteration method in the paper is exposed behind one small
interface so the search engine, the device simulators, and the benchmarks
can swap generators freely (that swap *is* the paper's Table 4 experiment).

A *combination* is a strictly increasing tuple of ``k`` bit positions drawn
from ``{0, …, n-1}``. The search flips exactly those bits of the base seed.

Design notes
------------
* ``clone()`` + ``state()`` support the paper's Chase-checkpointing scheme:
  the host enumerates the sequence once, snapshots iterator state at even
  strides, and hands each "thread" a snapshot to resume from
  (Section 3.2.1, "Chase's Algorithm 382").
* ``skip_to(rank)`` is the random-access entry point used by index-based
  methods (Algorithm 515); sequential methods implement it by stepping,
  which is exactly the cost asymmetry the paper's Table 4 measures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

__all__ = ["CombinationIterator"]


class CombinationIterator(ABC):
    """Abstract iterator over the ``k``-subsets of ``{0, …, n-1}``."""

    def __init__(self, n: int, k: int):
        if k < 0 or n < 0 or k > n:
            raise ValueError(f"invalid combination parameters n={n}, k={k}")
        self.n = n
        self.k = k

    @abstractmethod
    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""

    @abstractmethod
    def advance(self) -> bool:
        """Move to the next combination. Returns False when exhausted."""

    @abstractmethod
    def reset(self) -> None:
        """Return to the first combination of the sequence."""

    @abstractmethod
    def state(self) -> tuple:
        """An opaque, copyable snapshot of the iterator position."""

    @abstractmethod
    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by :meth:`state`."""

    def clone(self) -> "CombinationIterator":
        """An independent iterator positioned at the same combination."""
        other = type(self)(self.n, self.k)
        other.restore(self.state())
        return other

    def skip_to(self, rank: int) -> None:
        """Position on the ``rank``-th combination of this sequence.

        Sequential generators step ``rank`` times; random-access generators
        override this with O(k) work.
        """
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self.reset()
        for _ in range(rank):
            if not self.advance():
                raise IndexError(f"rank {rank} beyond end of sequence")

    def checkpoints(self, count: int, total: int | None = None) -> list[tuple]:
        """Snapshot ``count`` evenly spaced states across the sequence.

        This reproduces the paper's parallelization of Chase's sequence:
        the returned states partition the sequence into ``count`` roughly
        equal chunks, each resumable independently. ``total`` defaults to
        ``C(n, k)``.
        """
        from repro.combinatorics.binomial import binomial

        if count < 1:
            raise ValueError("count must be positive")
        if total is None:
            total = binomial(self.n, self.k)
        if count > total:
            count = max(total, 1)
        self.reset()
        states: list[tuple] = []
        # Chunk boundaries: state i starts at combination floor(i*total/count).
        position = 0
        for i in range(count):
            boundary = (i * total) // count
            while position < boundary:
                if not self.advance():
                    raise RuntimeError("sequence ended before expected total")
                position += 1
            states.append(self.state())
        self.reset()
        return states

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        self.reset()
        if self.k == 0:
            yield ()
            return
        while True:
            yield self.current()
            if not self.advance():
                return

    def take(self, count: int) -> list[tuple[int, ...]]:
        """The next ``count`` combinations starting from the current one."""
        out = [self.current()]
        for _ in range(count - 1):
            if not self.advance():
                break
            out.append(self.current())
        return out
