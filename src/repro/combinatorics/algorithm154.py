"""Mifsud's Algorithm 154 — lexicographic combination successor.

The earliest of the ordered combination generators the paper's related
work cites (Mifsud, CACM 1963). Given a combination ``c_0 < … < c_{k-1}``
it finds the rightmost element that can still be incremented and resets
the suffix, yielding the next combination in lexicographic order.

Work per step is O(k) in the worst case but O(1) amortized; unlike
Gosper's hack it operates on index arrays, so seed width is irrelevant.
It serves as the simple, correct baseline the fancier iterators are
validated against in the test suite.
"""

from __future__ import annotations

from repro.combinatorics.iterator_base import CombinationIterator

__all__ = ["lexicographic_successor", "Algorithm154Iterator"]


def lexicographic_successor(combo: tuple[int, ...], n: int) -> tuple[int, ...] | None:
    """The lexicographic successor of ``combo`` among k-subsets of {0..n-1}.

    Returns ``None`` when ``combo`` is the last combination.
    """
    k = len(combo)
    c = list(combo)
    # Rightmost position that can be incremented: c[j] < n - (k - j).
    j = k - 1
    while j >= 0 and c[j] == n - k + j:
        j -= 1
    if j < 0:
        return None
    c[j] += 1
    for i in range(j + 1, k):
        c[i] = c[i - 1] + 1
    return tuple(c)


class Algorithm154Iterator(CombinationIterator):
    """Lexicographic-order combination iterator (Algorithm 154)."""

    def __init__(self, n: int, k: int):
        super().__init__(n, k)
        self._combo: tuple[int, ...] = tuple(range(k))
        self._exhausted = False

    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""
        return self._combo

    def advance(self) -> bool:
        """Move to the next combination; False when exhausted."""
        if self._exhausted:
            return False
        nxt = lexicographic_successor(self._combo, self.n)
        if nxt is None:
            self._exhausted = True
            return False
        self._combo = nxt
        return True

    def reset(self) -> None:
        """Return to the first combination of the sequence."""
        self._combo = tuple(range(self.k))
        self._exhausted = False

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return (self._combo, self._exhausted)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        combo, exhausted = state
        if len(combo) != self.k:
            raise ValueError("state combination has wrong size")
        self._combo = tuple(combo)
        self._exhausted = exhausted

    def skip_to(self, rank: int) -> None:
        # Lexicographic order admits O(k) random access via unranking.
        """Position on the ``rank``-th combination (random access)."""
        from repro.combinatorics.ranking import unrank_lexicographic_exact

        self._combo = unrank_lexicographic_exact(self.n, self.k, rank)
        self._exhausted = False
