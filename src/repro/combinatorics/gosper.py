"""Gosper's hack — the seed iterator used by prior RBC work.

Gosper's hack enumerates all ``k``-bit-set words of width ``n`` in
increasing numeric order using a handful of word operations::

    u  = v & -v            # lowest set bit
    w  = v + u             # ripple the lowest run of 1s
    v' = w | (((v ^ w) >> 2) // u)

On a machine word this is a few instructions. On RBC's 256-bit seeds it
must run on *multiword* arithmetic (no native 256-bit type exists on
current GPUs), and the paper's Section 4.5 shows this costs Gosper's hack
its edge: Chase's minimal-change sequence beats it by 1.29×.

Two variants are provided:

* :class:`GosperIterator` — arbitrary-width version on Python integers
  (Python's bignums play the role of the multiword emulation).
* :func:`gosper_next_native` — width-guarded variant that refuses widths
  above 64 bits, documenting the native-datatype restriction the paper
  calls out.
"""

from __future__ import annotations

from repro.combinatorics.iterator_base import CombinationIterator

__all__ = ["gosper_next", "gosper_next_native", "GosperIterator"]


def gosper_next(v: int) -> int:
    """The next integer with the same popcount as ``v`` (Gosper's hack)."""
    if v <= 0:
        raise ValueError("Gosper's hack requires a positive value")
    u = v & -v
    w = v + u
    return w | (((v ^ w) >> 2) // u)


def gosper_next_native(v: int, width: int = 64) -> int:
    """Gosper's hack restricted to a native word width.

    Raises ``OverflowError`` if the successor would not fit in ``width``
    bits — the exact failure mode that forces prior RBC work to emulate
    256-bit arithmetic with multiple words.
    """
    result = gosper_next(v)
    if result >= (1 << width):
        raise OverflowError(
            f"Gosper successor exceeds native {width}-bit width; "
            "256-bit seeds require multiword emulation"
        )
    return result


def _mask_to_positions(mask: int, k: int) -> tuple[int, ...]:
    positions = []
    bit = 0
    while mask:
        if mask & 1:
            positions.append(bit)
        mask >>= 1
        bit += 1
    if len(positions) != k:
        raise AssertionError("popcount drifted — Gosper invariant broken")
    return tuple(positions)


class GosperIterator(CombinationIterator):
    """Enumerate ``k``-subsets of ``{0..n-1}`` via Gosper's hack.

    Combinations appear in *colexicographic* mask order (increasing value
    of the bit mask), which is also lexicographic order of the reversed
    position tuples. State is the single integer mask, so checkpointing is
    trivial — but producing the *rank*-th mask still requires stepping,
    which is why prior work pre-splits the space by index instead (see the
    paper's Section 3.2.1).
    """

    def __init__(self, n: int, k: int):
        super().__init__(n, k)
        self._first_mask = (1 << k) - 1
        self._limit = 1 << n
        self._mask = self._first_mask
        self._exhausted = k == 0

    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""
        if self.k == 0:
            return ()
        return _mask_to_positions(self._mask, self.k)

    def current_mask(self) -> int:
        """The raw bit mask — what the search XORs into the seed."""
        return self._mask if self.k else 0

    def advance(self) -> bool:
        """Move to the next combination; False when exhausted."""
        if self._exhausted or self.k == 0:
            return False
        nxt = gosper_next(self._mask)
        if nxt >= self._limit:
            self._exhausted = True
            return False
        self._mask = nxt
        return True

    def reset(self) -> None:
        """Return to the first combination of the sequence."""
        self._mask = self._first_mask
        self._exhausted = self.k == 0

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return (self._mask, self._exhausted)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        mask, exhausted = state
        if self.k and mask.bit_count() != self.k:
            raise ValueError("state mask has wrong popcount")
        self._mask = mask
        self._exhausted = exhausted
