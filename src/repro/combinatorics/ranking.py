"""Ranking/unranking utilities, including the vectorized batch unranker.

The batch unranker is the reproduction's high-throughput analogue of the
paper's GPU Algorithm-515 kernel: given a vector of lexicographic ranks it
produces the corresponding combinations with NumPy ``searchsorted`` passes
(one per combination element), no Python-level loop over candidates.

It works through the combinatorial number system: the lexicographic
rank-``r`` combination of ``{0..n-1}`` is the elementwise complement of
the *colexicographic* rank-``(C(n,k)-1-r)`` combination, and colex
unranking is a greedy descent on the ``C(c, j)`` columns — exactly the
kind of table-driven, data-parallel access pattern the paper exploits with
the GPU's memory bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import positions_to_mask_words
from repro.combinatorics.binomial import binomial

__all__ = [
    "rank_lexicographic",
    "unrank_lexicographic_exact",
    "unrank_lexicographic_batch",
    "combinations_to_masks",
]


def rank_lexicographic(n: int, combo) -> int:
    """Lexicographic rank of ``combo`` among k-subsets of {0..n-1}."""
    k = len(combo)
    combo = tuple(combo)
    if any(combo[i] >= combo[i + 1] for i in range(k - 1)):
        raise ValueError("combination must be strictly increasing")
    if combo and not (0 <= combo[0] and combo[-1] < n):
        raise ValueError("combination elements out of range")
    rank = 0
    prev = -1
    for j, c in enumerate(combo):
        # Count combinations whose element j is smaller than c.
        for smaller in range(prev + 1, c):
            rank += binomial(n - 1 - smaller, k - j - 1)
        prev = c
    return rank


def unrank_lexicographic_exact(n: int, k: int, rank: int) -> tuple[int, ...]:
    """Exact-arithmetic scalar unrank (any size); see Algorithm 515."""
    from repro.combinatorics.algorithm515 import unrank_lexicographic

    return unrank_lexicographic(n, k, rank)


def _colex_tables(n: int, k: int) -> list[np.ndarray]:
    """``tables[j-1][c] = C(c, j)`` for c in 0..n, as uint64 arrays."""
    if binomial(n, k) >= (1 << 63):
        raise OverflowError(
            f"C({n}, {k}) does not fit in 63 bits; use the exact scalar path"
        )
    tables = []
    for j in range(1, k + 1):
        col = np.array([binomial(c, j) for c in range(n + 1)], dtype=np.uint64)
        tables.append(col)
    return tables


def unrank_lexicographic_batch(n: int, k: int, ranks: np.ndarray) -> np.ndarray:
    """Vectorized unranking: ``(N,)`` ranks -> ``(N, k)`` position array.

    Rows are strictly increasing bit positions; row ``i`` is the
    lexicographic rank-``ranks[i]`` combination. Requires
    ``C(n, k) < 2**63``.
    """
    if k == 0:
        return np.empty((np.asarray(ranks).shape[0], 0), dtype=np.int64)
    total = binomial(n, k)
    ranks = np.asarray(ranks, dtype=np.uint64)
    if ranks.size and (int(ranks.max()) >= total):
        raise IndexError("rank out of range")
    tables = _colex_tables(n, k)
    # Complement trick: lex rank r  <->  colex rank (total-1-r) of the
    # complemented combination {n-1-a}.
    m = np.uint64(total - 1) - ranks
    out = np.empty((ranks.shape[0], k), dtype=np.int64)
    for j in range(k, 0, -1):
        col = tables[j - 1]
        # Largest c with C(c, j) <= m.
        c = np.searchsorted(col, m, side="right") - 1
        # C(c, j) is non-decreasing with ties at 0 for c < j; clamp to the
        # largest index so decrements stay exact.
        m = m - col[c]
        out[:, k - j] = (n - 1) - c
    return out


def combinations_to_masks(positions: np.ndarray) -> np.ndarray:
    """``(N, d)`` bit positions -> ``(N, 4)`` uint64 seed XOR masks."""
    return positions_to_mask_words(positions)
