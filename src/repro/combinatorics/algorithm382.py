"""Minimal-change (Gray code) combination sequence — "Algorithm 382".

The paper's best GPU seed iterator is Chase's Algorithm 382: a
non-recursive minimal-change sequence in which each successive combination
differs from its predecessor by moving a single element, so the search
updates its candidate seed with two bit flips instead of rebuilding it.
Parallelism comes from *checkpointing*: the host enumerates the sequence
once, snapshots the iterator state at even intervals, and each thread
resumes from its snapshot (Section 3.2.1).

This module implements the **revolving-door** minimal-change Gray code
(Knuth TAOCP 7.2.1.3, Algorithm R — the same family as Chase's
sequence); Chase's Algorithm 382 proper lives in the sibling module
:mod:`repro.combinatorics.chase382`. The engines default to this order
because its state is just the combination (O(k) checkpoints vs TWIDDLE's
O(n) work array). It has the three properties the paper exploits and
measures:

1. every transition swaps exactly one element (two seed-bit flips);
2. the successor is computed non-recursively in O(1) amortized time from
   the combination alone — no auxiliary arrays, so the per-thread "state"
   is just the current combination (what SALTED-GPU keeps in shared
   memory, Section 3.2.3);
3. the full state is checkpointable, enabling the even-workload parallel
   split.

Chase's specific order additionally bounds each element's move to ≤ 2
positions; nothing in the RBC search depends on that refinement.
"""

from __future__ import annotations

from typing import Iterator

from repro.combinatorics.iterator_base import CombinationIterator

__all__ = ["minimal_change_step", "minimal_change_sequence", "Algorithm382Iterator"]


def minimal_change_step(c: list[int], n: int) -> bool:
    """Advance ``c`` (1-indexed semantics stored 0-indexed) in place.

    ``c`` holds a k-combination ``c[0] < c[1] < … < c[k-1]`` of
    ``{0..n-1}``. Returns ``False`` (leaving ``c`` untouched) when ``c``
    is the final combination of the revolving-door order.
    """
    t = len(c)
    if t == 0:
        return False
    # Knuth 7.2.1.3 Algorithm R, steps R3-R5, with the sentinel
    # c_{t+1} = n handled inline.  Odd t enters the retry loop at R4,
    # even t at R5.
    if t & 1:  # t odd
        if c[0] + 1 < (c[1] if t > 1 else n):
            c[0] += 1
            return True
        j = 2
        at_r5 = False
    else:  # t even
        if c[0] > 0:
            c[0] -= 1
            return True
        j = 2
        at_r5 = True
    while True:
        if not at_r5:
            # R4: try to decrease c_j.  (1-indexed c_j is c[j-1].)
            if j > t:
                return False
            if c[j - 1] >= j:
                c[j - 1] = c[j - 2]
                c[j - 2] = j - 2
                return True
            j += 1
        at_r5 = False
        # R5: try to increase c_j.
        if j > t:
            return False
        upper = c[j] if j < t else n
        if c[j - 1] + 1 < upper:
            c[j - 2] = c[j - 1]
            c[j - 1] += 1
            return True
        j += 1


def minimal_change_sequence(n: int, k: int) -> Iterator[tuple[int, ...]]:
    """Yield all k-subsets of {0..n-1} in revolving-door Gray-code order."""
    if k < 0 or k > n:
        raise ValueError(f"invalid parameters n={n}, k={k}")
    if k == 0:
        yield ()
        return
    c = list(range(k))
    while True:
        yield tuple(c)
        if not minimal_change_step(c, n):
            return


class Algorithm382Iterator(CombinationIterator):
    """Minimal-change combination iterator with checkpointable state.

    The state is the combination itself (plus the exhaustion flag), so
    :meth:`state`/:meth:`restore` cost O(k) — the property that lets the
    GPU variant keep per-thread state in shared memory.
    """

    def __init__(self, n: int, k: int):
        super().__init__(n, k)
        self._c = list(range(k))
        self._exhausted = k == 0

    def current(self) -> tuple[int, ...]:
        """The combination the iterator is positioned on."""
        return tuple(self._c)

    def advance(self) -> bool:
        """Move to the next combination; False when exhausted."""
        if self._exhausted:
            return False
        if not minimal_change_step(self._c, self.n):
            self._exhausted = True
            return False
        return True

    def reset(self) -> None:
        """Return to the first combination of the sequence."""
        self._c = list(range(self.k))
        self._exhausted = self.k == 0

    def state(self) -> tuple:
        """Opaque, copyable snapshot of the iterator position."""
        return (tuple(self._c), self._exhausted)

    def restore(self, state: tuple) -> None:
        """Resume from a snapshot produced by ``state()``."""
        combo, exhausted = state
        if len(combo) != self.k:
            raise ValueError("state combination has wrong size")
        if any(combo[i] >= combo[i + 1] for i in range(len(combo) - 1)):
            raise ValueError("state combination must be strictly increasing")
        self._c = list(combo)
        self._exhausted = exhausted
