"""Exact binomial coefficients and RBC search-space sizes.

Implements the complexity math of the paper's Section 2.2:

* Equation 1 — exhaustive upper bound ``u(d) = Σ_{i=0}^{d} C(256, i)``;
* Equation 3 — average case ``a(d) = Σ_{i=0}^{d-1} C(256, i) + C(256, d)/2``.

All arithmetic is exact Python-integer arithmetic; the values overflow
64-bit floats' integer range well before ``d`` reaches the seed width.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._bitutils import SEED_BITS

__all__ = [
    "binomial",
    "binomial_table",
    "cumulative_ball_size",
    "exhaustive_seed_count",
    "average_seed_count",
]


@lru_cache(maxsize=None)
def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)`` (0 when out of range)."""
    if k < 0 or k > n or n < 0:
        return 0
    k = min(k, n - k)
    result = 1
    for i in range(1, k + 1):
        result = result * (n - k + i) // i
    return result


def binomial_table(n_max: int, k_max: int, dtype=object) -> np.ndarray:
    """Precomputed Pascal table ``T[n, k] = C(n, k)``.

    This is the lookup table the paper's Algorithm-515 GPU variant keeps in
    device memory to unrank combinations without recomputing binomials.
    ``dtype=object`` keeps exact integers; pass ``np.uint64`` for the fast
    table when the values are known to fit (``C(256, 5) < 2**64``).
    """
    table = np.zeros((n_max + 1, k_max + 1), dtype=dtype)
    table[:, 0] = 1
    for n in range(1, n_max + 1):
        upper = min(n, k_max)
        for k in range(1, upper + 1):
            table[n, k] = table[n - 1, k - 1] + table[n - 1, k]
    return table


def cumulative_ball_size(n: int, d: int) -> int:
    """Number of points within Hamming distance ``d`` of a fixed ``n``-bit
    point: ``Σ_{i=0}^{d} C(n, i)``."""
    if d < 0:
        raise ValueError("d must be non-negative")
    return sum(binomial(n, i) for i in range(min(d, n) + 1))


def exhaustive_seed_count(d: int, n_bits: int = SEED_BITS) -> int:
    """Equation 1 — seeds examined by an exhaustive search up to ``d``."""
    return cumulative_ball_size(n_bits, d)


def average_seed_count(d: int, n_bits: int = SEED_BITS) -> int:
    """Equation 3 — expected seeds examined when the match lies at ``d``.

    The full shells ``0..d-1`` are searched, plus on average half of the
    ``d`` shell. Matches the paper's Table 1 (integer division mirrors the
    paper's rounding; for d >= 1 C(256, d) is even whenever d <= 5).
    """
    if d < 1:
        raise ValueError("average case requires d >= 1")
    return cumulative_ball_size(n_bits, d - 1) + binomial(n_bits, d) // 2
