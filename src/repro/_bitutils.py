"""Bit-level utilities shared across the RBC-SALTED reproduction.

The protocol operates on 256-bit seeds.  Three representations are used
throughout the code base and this module is the single place that converts
between them:

``bytes``
    32-byte big-endian strings — the canonical wire/protocol form.
``int``
    Python arbitrary-precision integers — convenient for bit twiddling in
    scalar reference code (Gosper's hack on "multiword" values, salting).
``numpy``
    ``uint64`` arrays of shape ``(..., 4)`` (little-endian word order:
    word 0 holds bits 0..63) — the batch form consumed by the vectorized
    hash kernels and seed iterators.

Bit index convention: bit ``i`` of a seed is ``(int_value >> i) & 1``,
i.e. bit 0 is the least significant bit of the integer form, which lives
in the *last* byte of the big-endian byte form.
"""

from __future__ import annotations

import numpy as np

SEED_BITS = 256
SEED_BYTES = SEED_BITS // 8
SEED_WORDS64 = SEED_BITS // 64

__all__ = [
    "SEED_BITS",
    "SEED_BYTES",
    "SEED_WORDS64",
    "seed_to_int",
    "int_to_seed",
    "seed_to_words",
    "words_to_seed",
    "seeds_to_words",
    "words_to_seeds",
    "hamming_distance",
    "hamming_distance_words",
    "popcount64",
    "flip_bits",
    "positions_to_mask_int",
    "positions_to_mask_words",
    "random_seed",
    "rotate_left_int",
]

_POPCNT16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def seed_to_int(seed: bytes) -> int:
    """Convert a 32-byte big-endian seed to its integer form."""
    if len(seed) != SEED_BYTES:
        raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
    return int.from_bytes(seed, "big")


def int_to_seed(value: int) -> bytes:
    """Convert an integer in ``[0, 2**256)`` to the 32-byte seed form."""
    if not 0 <= value < (1 << SEED_BITS):
        raise ValueError("seed integer out of range for 256 bits")
    return value.to_bytes(SEED_BYTES, "big")


def seed_to_words(seed: bytes) -> np.ndarray:
    """Convert one seed to a ``(4,)`` uint64 array (word 0 = bits 0..63)."""
    value = seed_to_int(seed)
    mask = (1 << 64) - 1
    return np.array(
        [(value >> (64 * w)) & mask for w in range(SEED_WORDS64)], dtype=np.uint64
    )


def words_to_seed(words: np.ndarray) -> bytes:
    """Inverse of :func:`seed_to_words`."""
    words = np.asarray(words, dtype=np.uint64)
    if words.shape != (SEED_WORDS64,):
        raise ValueError(f"expected shape ({SEED_WORDS64},), got {words.shape}")
    value = 0
    for w in range(SEED_WORDS64):
        value |= int(words[w]) << (64 * w)
    return int_to_seed(value)


def seeds_to_words(seeds: list[bytes] | tuple[bytes, ...]) -> np.ndarray:
    """Convert many seeds to a ``(N, 4)`` uint64 array."""
    if len(seeds) == 0:
        return np.empty((0, SEED_WORDS64), dtype=np.uint64)
    raw = np.frombuffer(b"".join(seeds), dtype=np.uint8).reshape(len(seeds), SEED_BYTES)
    # Big-endian bytes -> little-endian 64-bit words: reverse bytes, then view.
    flipped = raw[:, ::-1].copy()
    return flipped.view("<u8")


def words_to_seeds(words: np.ndarray) -> list[bytes]:
    """Inverse of :func:`seeds_to_words`."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected shape (N, {SEED_WORDS64}), got {words.shape}")
    raw = words.view(np.uint8).reshape(words.shape[0], SEED_BYTES)[:, ::-1]
    flat = np.ascontiguousarray(raw).tobytes()
    return [flat[i * SEED_BYTES : (i + 1) * SEED_BYTES] for i in range(words.shape[0])]


def hamming_distance(a: bytes, b: bytes) -> int:
    """Hamming distance between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("length mismatch")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).bit_count()


def popcount64(arr: np.ndarray) -> np.ndarray:
    """Vectorized population count of a uint64 array via a 16-bit table."""
    arr = np.asarray(arr, dtype=np.uint64)
    lo = (arr & np.uint64(0xFFFF)).astype(np.intp)
    m1 = ((arr >> np.uint64(16)) & np.uint64(0xFFFF)).astype(np.intp)
    m2 = ((arr >> np.uint64(32)) & np.uint64(0xFFFF)).astype(np.intp)
    hi = (arr >> np.uint64(48)).astype(np.intp)
    counts = (
        _POPCNT16[lo].astype(np.uint16)
        + _POPCNT16[m1]
        + _POPCNT16[m2]
        + _POPCNT16[hi]
    )
    return counts


def hamming_distance_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distance between ``(N, 4)`` uint64 seed arrays."""
    xored = np.asarray(a, dtype=np.uint64) ^ np.asarray(b, dtype=np.uint64)
    return popcount64(xored).sum(axis=-1)


def flip_bits(seed: bytes, positions) -> bytes:
    """Return ``seed`` with the given bit positions flipped."""
    value = seed_to_int(seed)
    for pos in positions:
        if not 0 <= pos < SEED_BITS:
            raise ValueError(f"bit position {pos} out of range")
        value ^= 1 << pos
    return int_to_seed(value)


def positions_to_mask_int(positions) -> int:
    """Build an integer XOR mask with the given bit positions set."""
    mask = 0
    for pos in positions:
        if not 0 <= pos < SEED_BITS:
            raise ValueError(f"bit position {pos} out of range")
        bit = 1 << pos
        if mask & bit:
            raise ValueError(f"duplicate bit position {pos}")
        mask |= bit
    return mask


def positions_to_mask_words(positions_batch: np.ndarray) -> np.ndarray:
    """Vectorized: ``(N, d)`` bit positions -> ``(N, 4)`` uint64 XOR masks."""
    positions_batch = np.asarray(positions_batch)
    if positions_batch.ndim == 1:
        positions_batch = positions_batch[None, :]
    n, _d = positions_batch.shape
    masks = np.zeros((n, SEED_WORDS64), dtype=np.uint64)
    word = positions_batch >> 6
    bit = np.uint64(1) << (positions_batch & 63).astype(np.uint64)
    rows = np.repeat(np.arange(n), positions_batch.shape[1])
    np.bitwise_xor.at(masks, (rows, word.ravel()), bit.ravel())
    return masks


def random_seed(rng: np.random.Generator) -> bytes:
    """Draw a uniformly random 256-bit seed."""
    return rng.bytes(SEED_BYTES)


def rotate_left_int(value: int, shift: int, width: int = SEED_BITS) -> int:
    """Rotate ``value`` left by ``shift`` within ``width`` bits."""
    shift %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << shift) | (value >> (width - shift))) & mask
