"""Common device-model abstractions."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["DeviceSpec", "SearchTiming", "DeviceModel"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one device (paper Table 3 rows)."""

    name: str
    model: str
    cores: int
    clock_mhz: float
    memory_gib: float
    idle_watts: float
    max_watts: float


@dataclass(frozen=True)
class SearchTiming:
    """Result of one simulated RBC search."""

    device: str
    hash_name: str
    distance: int
    mode: str  # "exhaustive" or "average"
    seeds_searched: int
    search_seconds: float
    kernels_launched: int
    energy_joules: float
    average_watts: float

    @property
    def throughput(self) -> float:
        """Seeds per second over the whole search."""
        return self.seeds_searched / self.search_seconds


class DeviceModel(ABC):
    """A simulated accelerator that can time an RBC search."""

    spec: DeviceSpec

    @abstractmethod
    def search_time(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        **kwargs,
    ) -> float:
        """Modeled search-only seconds for a full search up to ``distance``."""

    @abstractmethod
    def simulate_search(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        **kwargs,
    ) -> SearchTiming:
        """Full timing record including seeds, kernels, and energy."""

    def health_probe(self) -> bool:
        """Whether the device would answer a heartbeat right now.

        The base models are always healthy; fault-injecting wrappers
        (:class:`~repro.devices.flaky.FlakyDeviceModel`) override this
        to reflect their scheduled failure windows. The fleet's monitor
        thread consults it between real probe hashes.
        """
        return True

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ("exhaustive", "average"):
            raise ValueError(f"mode must be 'exhaustive' or 'average', got {mode!r}")
