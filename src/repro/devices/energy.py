"""Energy accounting (paper Section 4.7 / Table 6).

The paper reports, per device and hash: total joules of an exhaustive
d=5 search, the maximum wattage observed, and the idle wattage — with
idle energy *included* in the totals. This module reproduces that
accounting from any :class:`~repro.devices.base.SearchTiming`:
``energy = average_active_watts * search_seconds`` where the calibrated
average watts already sit between idle and max.

The physical story the numbers encode: the APU's compute-in-memory
design nearly eliminates processor<->memory traffic, which dominates
energy in conventional architectures — so it wins on joules whenever its
runtime is competitive (SHA-1) and only ties the GPU when a 3x runtime
deficit (SHA-3) eats its per-second advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import DeviceModel, DeviceSpec, SearchTiming

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """One Table 6 row."""

    device: str
    hash_name: str
    total_joules: float
    max_watts: float
    idle_watts: float
    search_seconds: float

    @property
    def average_watts(self) -> float:
        """Mean power over the search."""
        return self.total_joules / self.search_seconds

    @property
    def joules_per_billion_seeds(self) -> float | None:
        """Placeholder metric (see EnergyModel.energy_per_seed)."""
        return None  # populated via EnergyModel.report with seed counts


class EnergyModel:
    """Builds Table 6-style reports from simulated searches."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    def report(self, timing: SearchTiming) -> EnergyReport:
        """Energy summary of one search (idle energy included)."""
        return EnergyReport(
            device=timing.device,
            hash_name=timing.hash_name,
            total_joules=timing.energy_joules,
            max_watts=self.spec.max_watts,
            idle_watts=self.spec.idle_watts,
            search_seconds=timing.search_seconds,
        )

    @staticmethod
    def compare(a: EnergyReport, b: EnergyReport) -> float:
        """Energy ratio a/b — e.g. APU/GPU = 0.392 for SHA-1 in the paper."""
        return a.total_joules / b.total_joules

    @staticmethod
    def energy_per_seed(timing: SearchTiming) -> float:
        """Joules per hashed seed — the architecture-level efficiency metric."""
        return timing.energy_joules / timing.seeds_searched


def idle_adjusted_energy(
    model: DeviceModel, timing: SearchTiming, include_idle: bool = True
) -> float:
    """Energy with or without the idle floor, for ablation benches."""
    if include_idle:
        return timing.energy_joules
    active_only = timing.energy_joules - model.spec.idle_watts * timing.search_seconds
    return max(active_only, 0.0)
