"""Multi-GPU scaling (paper Section 4.8 / Figure 4).

Thin orchestration over :class:`~repro.devices.gpu.GPUModel`: shells are
split evenly across devices (each GPU takes a contiguous rank slice of
every Hamming-distance shell, exactly like CPU threads do), the host
pays a split/reduction cost per extra device, and average-case searches
pay extra unified-memory flag synchronization — the two calibrated
overheads that make early-exit scale worse than exhaustive search, and
SHA-1 scale worse than SHA-3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import SearchTiming
from repro.devices.gpu import GPUModel
from repro.runtime.partition import partition_ranks
from repro.combinatorics.binomial import binomial

__all__ = ["MultiGPUModel", "speedup_curve", "ScalingPoint"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a Figure 4 curve."""

    num_gpus: int
    seconds: float
    speedup: float
    efficiency: float


class MultiGPUModel:
    """A node with ``num_gpus`` identical GPUs running one search."""

    def __init__(self, num_gpus: int, gpu: GPUModel | None = None):
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        self.num_gpus = num_gpus
        self.gpu = gpu if gpu is not None else GPUModel()

    def search_time(self, hash_name: str, distance: int,
                    mode: str = "exhaustive", **kwargs) -> float:
        """Search-only seconds with the shell split across all GPUs."""
        kwargs.pop("num_gpus", None)
        return self.gpu.search_time(
            hash_name, distance, mode, num_gpus=self.num_gpus, **kwargs
        )

    def simulate_search(self, hash_name: str, distance: int,
                        mode: str = "exhaustive", **kwargs) -> SearchTiming:
        """Full timing record with the shell split across GPUs."""
        kwargs.pop("num_gpus", None)
        return self.gpu.simulate_search(
            hash_name, distance, mode, num_gpus=self.num_gpus, **kwargs
        )

    def shell_partition(self, distance: int) -> list[tuple[int, int]]:
        """Per-GPU rank ranges over one shell."""
        return partition_ranks(
            binomial(self.gpu.seed_bits, distance), self.num_gpus
        )


def speedup_curve(
    hash_name: str,
    mode: str,
    max_gpus: int = 3,
    distance: int = 5,
    gpu: GPUModel | None = None,
    **kwargs,
) -> list[ScalingPoint]:
    """The Figure 4 series: speedup over 1 GPU for 1..max_gpus devices."""
    base_gpu = gpu if gpu is not None else GPUModel()
    baseline = MultiGPUModel(1, base_gpu).search_time(
        hash_name, distance, mode, **kwargs
    )
    points = []
    for g in range(1, max_gpus + 1):
        seconds = MultiGPUModel(g, base_gpu).search_time(
            hash_name, distance, mode, **kwargs
        )
        speedup = baseline / seconds
        points.append(
            ScalingPoint(
                num_gpus=g,
                seconds=seconds,
                speedup=speedup,
                efficiency=speedup / g,
            )
        )
    return points
