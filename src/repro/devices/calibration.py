"""Calibration constants derived from the paper's measurements.

Every constant here is traceable to a number printed in the paper
(Tables 3-7, Figure 4, Sections 3.2.2-4.3) — no constant was fit to
anything else. The derivations are spelled out inline so a reader can
audit each against the paper. The device models combine these constants
with structural models (occupancy, PE allocation, Amdahl overheads);
everything the benchmark harness reports *other than* the directly
calibrated anchor points is emergent.
"""

from __future__ import annotations

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import average_seed_count, exhaustive_seed_count
from repro.devices.base import DeviceSpec

__all__ = [
    "PLATFORM_A_CPU",
    "PLATFORM_A_GPU",
    "PLATFORM_B_APU",
    "COMM_TIME_SECONDS",
    "U5",
    "A5",
    "U4",
    "GPU_HASH_THROUGHPUT",
    "GPU_ITERATOR_FACTOR",
    "GPU_EXIT_OVERHEAD_SECONDS",
    "GPU_KERNEL_LAUNCH_SECONDS",
    "GPU_THREAD_SETUP_SEED_EQUIV",
    "GPU_MULTI_SPLIT_SECONDS",
    "GPU_EXIT_SYNC_SECONDS",
    "GPU_GENERIC_PADDING_FACTOR",
    "GPU_GLOBAL_STATE_FACTOR",
    "GPU_ACTIVE_WATTS",
    "CPU_CORE_THROUGHPUT",
    "CPU_SERIAL_FRACTION",
    "APU_PE_THROUGHPUT",
    "APU_PE_COUNT",
    "APU_BATCH_SEEDS",
    "APU_ACTIVE_WATTS",
    "PRIOR_WORK_KEYGEN_RATE",
]

# ---------------------------------------------------------------------------
# Search-space anchors (exact, from Equations 1 and 3).
# ---------------------------------------------------------------------------
U5 = exhaustive_seed_count(5)  # 8,987,138,113 seeds for d = 5
A5 = average_seed_count(5)     # 4,582,363,585 seeds, average case
U4 = exhaustive_seed_count(4)  # 177,589,057 seeds for d = 4

# ---------------------------------------------------------------------------
# Platform specs (paper Table 3 + Table 6 idle/max watts).
# ---------------------------------------------------------------------------
PLATFORM_A_CPU = DeviceSpec(
    name="PlatformA-CPU",
    model="2x AMD EPYC 7542",
    cores=64,
    clock_mhz=2900.0,
    memory_gib=512.0,
    idle_watts=90.0,   # not reported by the paper; typical 2-socket idle
    max_watts=450.0,   # not reported; 2x 225 W TDP
)

PLATFORM_A_GPU = DeviceSpec(
    name="PlatformA-GPU",
    model="NVIDIA A100 40GB",
    cores=6912,
    clock_mhz=1410.0,
    memory_gib=40.0,
    idle_watts=31.53,  # Table 6
    max_watts=258.29,  # Table 6 (max observed, SHA-3 run)
)

PLATFORM_B_APU = DeviceSpec(
    name="PlatformB-APU",
    model="GSI Gemini APU",
    cores=131072,      # Table 3: 4 cores x 16 banks x 2048 BPs
    clock_mhz=575.0,
    memory_gib=4.0,
    idle_watts=22.10,  # Table 6
    max_watts=83.81,   # Table 6
)

#: Measured client<->server communication incl. USB PUF read (Table 5).
COMM_TIME_SECONDS = 0.90

# ---------------------------------------------------------------------------
# SALTED-GPU (1x A100), Chase iterator, best (n, b) parameters.
# Derivation: Table 5 search-only exhaustive times at d=5.
#   SHA-1: 1.56 s -> U5 / 1.56 = 5.76e9 hashes/s
#   SHA-3: 4.67 s -> U5 / 4.67 = 1.92e9 hashes/s
# ---------------------------------------------------------------------------
GPU_HASH_THROUGHPUT = {
    "sha1": U5 / 1.56,
    "sha3-256": U5 / 4.67,
    # SHA-256 is not in the paper; interpolated by the measured relative
    # batch-kernel cost on this host (~1.9x SHA-1), between the two anchors.
    "sha256": U5 / 1.56 / 1.9,
}

#: Table 4 — seed-iterator slowdown relative to Chase's Algorithm 382
#: (SHA-3, d=5, best parameters per method): 4.67 / 7.53 / 6.04 s.
GPU_ITERATOR_FACTOR = {
    "chase": 1.0,
    "alg515": 7.53 / 4.67,
    "gosper": 6.04 / 4.67,
}

#: Early-exit overhead per GPU. Derivation from Table 5 average rows:
#:   SHA-1: 0.85 - 1.56 * (A5/U5) = 0.85 - 0.795 = 0.055 s
#:   SHA-3: 2.42 - 4.67 * (A5/U5) = 2.42 - 2.381 = 0.039 s
#: and Figure 4 early-exit curves require the overhead to grow with the
#: number of GPUs (unified-memory flag traffic), so the model charges
#: this amount once per participating GPU.
GPU_EXIT_OVERHEAD_SECONDS = {"sha1": 0.055, "sha3-256": 0.039, "sha256": 0.047}

#: Host-side launch + teardown per kernel (one kernel per Hamming
#: distance). Not separately reported by the paper; a typical CUDA
#: kernel-dispatch figure, small against every reported search time.
GPU_KERNEL_LAUNCH_SECONDS = 5e-3

#: Per-thread setup cost in seed-equivalents (initial state load,
#: checkpoint fetch), charged once per thread per kernel. Sets the left
#: wall of the Figure 3 bowl: with the thread count fixed by the d=5
#: shell (8.8e9 seeds), ~221k resident threads, and five kernels per
#: search, a 0.0625 seed-equivalent setup puts the optimum at n ~= 100
#: seeds per thread, matching the paper's grid search.
GPU_THREAD_SETUP_SEED_EQUIV = 0.0625

#: Multi-GPU work-split / reduction cost, charged once per GPU beyond the
#: first, in *seconds* (not a fraction — the fixed cost is what makes the
#: short SHA-1 kernels scale worse than SHA-3, the paper's Section 4.8
#: observation). Derivation: Figure 4 SHA-3 exhaustive speedup 2.87x on
#: 3 GPUs with W ~= 4.68 s -> sigma ~= 0.028 s per extra GPU.
GPU_MULTI_SPLIT_SECONDS = 0.028

#: Extra early-exit flag synchronization per GPU beyond the first
#: (unified-memory flag polled across devices). Derivation: Figure 4
#: SHA-3 early-exit speedup 2.66x on 3 GPUs once the split cost above is
#: accounted for -> 0.0024 s per extra GPU.
GPU_EXIT_SYNC_SECONDS = 0.0024

#: Section 3.2.2 — fixed padding is ~3% faster; the generic path pays this.
GPU_GENERIC_PADDING_FACTOR = 1.03

#: Section 3.2.3 — Chase state in global instead of shared memory:
#: 1.20x slower for SHA-1, 1.01x for SHA-3.
GPU_GLOBAL_STATE_FACTOR = {"sha1": 1.20, "sha3-256": 1.01, "sha256": 1.10}

#: Average active power during search. Derivation (Table 6):
#:   SHA-1: 317.20 J / 1.56 s = 203.3 W;  SHA-3: 946.55 J / 4.67 s = 202.7 W.
GPU_ACTIVE_WATTS = {"sha1": 317.20 / 1.56, "sha3-256": 946.55 / 4.67,
                    "sha256": 203.0}

# ---------------------------------------------------------------------------
# SALTED-CPU (2x EPYC 7542, 64 cores, OpenMP).
# Derivation: Table 5 exhaustive d=5 (SHA-1 12.09 s, SHA-3 60.68 s)
# together with the Section 4.3 speedups (59x / 63x on 64 cores) give the
# single-core time, time * speedup; per-core rate = U5 / single-core time.
# ---------------------------------------------------------------------------
CPU_CORE_THROUGHPUT = {
    "sha1": U5 / (12.09 * 59),
    "sha3-256": U5 / (60.68 * 63),
    "sha256": U5 / (12.09 * 59) / 1.9,
}

#: Section 4.3 — speedups of 59x (SHA-1) and 63x (SHA-3) on 64 cores.
#: Amdahl: f = (64/S - 1) / 63.
CPU_SERIAL_FRACTION = {
    "sha1": (64 / 59 - 1) / 63,
    "sha3-256": (64 / 63 - 1) / 63,
    "sha256": (64 / 61 - 1) / 63,
}

# ---------------------------------------------------------------------------
# SALTED-APU (GSI Gemini). Structural: PE = ceil(state bits / 16-bit BP).
# Section 3.3: SHA-1 PEs = 4*16*2048/2 = 65,536; SHA-3 = 4*16*(2048//5) = 26,176.
# Derivation of per-PE rates from Table 5 exhaustive d=5:
#   SHA-1: U5 / 1.62 s / 65,536 PEs = 84.6k hashes/s/PE
#   SHA-3: U5 / 13.95 s / 26,176 PEs = 24.6k hashes/s/PE
# ---------------------------------------------------------------------------
APU_PE_COUNT = {"sha1": 4 * 16 * (2048 // 2), "sha3-256": 4 * 16 * (2048 // 5),
                "sha256": 4 * 16 * (2048 // 3)}

APU_PE_THROUGHPUT = {
    "sha1": U5 / 1.62 / APU_PE_COUNT["sha1"],
    "sha3-256": U5 / 13.95 / APU_PE_COUNT["sha3-256"],
    # Interpolated for SHA-256 (not in the paper).
    "sha256": (U5 / 1.62 / APU_PE_COUNT["sha1"]) / 1.9,
}

#: Section 3.3 — each startup combination generates 256 seed permutations
#: before the exit flag in associative memory is consulted.
APU_BATCH_SEEDS = 256

#: Table 6: SHA-1 124.43 J / 1.62 s = 76.8 W; SHA-3 974.06 J / 13.95 s = 69.8 W.
APU_ACTIVE_WATTS = {"sha1": 124.43 / 1.62, "sha3-256": 974.06 / 13.95,
                    "sha256": 73.0}

# ---------------------------------------------------------------------------
# Prior-work key-generation rates (Table 7). Derivation: reported time
# divided by the seeds searched at the reported distance.
#   AES-128     (d=5): GPU 2.56 s, CPU 44.7 s   -> rate = U5 / time
#   LightSABER  (d=4): GPU 14.03 s, CPU 44.58 s -> rate = U4 / time
#   Dilithium3  (d=4): GPU 27.91 s, CPU 204.92 s-> rate = U4 / time
# ---------------------------------------------------------------------------
PRIOR_WORK_KEYGEN_RATE = {
    ("aes-128", "gpu"): U5 / 2.56,
    ("aes-128", "cpu"): U5 / 44.7,
    ("lightsaber", "gpu"): U4 / 14.03,
    ("lightsaber", "cpu"): U4 / 44.58,
    ("dilithium3", "gpu"): U4 / 27.91,
    ("dilithium3", "cpu"): U4 / 204.92,
}


def throughput_for(table: dict[str, float], hash_name: str) -> float:
    """Fetch a per-hash constant, normalizing registry aliases."""
    from repro.hashes.registry import get_hash

    canonical = get_hash(hash_name).name
    if canonical not in table:
        raise KeyError(f"no calibration for hash {hash_name!r}")
    return table[canonical]


def seed_bits() -> int:
    """The seed width all calibrations assume."""
    return SEED_BITS
