"""Device simulators — the hardware-substitution layer.

We have no A100, Gemini APU, or 64-core EPYC, so these models supply the
paper's platforms (DESIGN.md §2). Each model executes the *structure* of
its algorithm — kernel-per-distance launches, PE allocation, occupancy,
early-exit flag traffic, work partitioning — and consumes per-(device,
hash) throughput constants calibrated from the paper's own measurements
(:mod:`repro.devices.calibration`). Absolute d=5 times therefore match
the paper by construction; the reproduced findings are the *relations*
the structure produces: who wins where, parameter sensitivity, scaling
curves, energy ordering.
"""

from repro.devices.base import DeviceSpec, SearchTiming, DeviceModel
from repro.devices.calibration import (
    PLATFORM_A_CPU,
    PLATFORM_A_GPU,
    PLATFORM_B_APU,
    COMM_TIME_SECONDS,
)
from repro.devices.gpu import GPUModel
from repro.devices.cpu import CPUModel
from repro.devices.apu import APUModel
from repro.devices.multi_gpu import MultiGPUModel, speedup_curve
from repro.devices.energy import EnergyModel
from repro.devices.associative import AssociativeProcessor
from repro.devices.host import HostDeviceModel
from repro.devices.bitserial_search import AssociativeSearchEngine, associative_match
from repro.devices.bitserial import (
    sha1_bitserial,
    sha3_256_bitserial,
    hash_cost_profile,
)
from repro.devices.flaky import DeviceFailure, FlakyDeviceModel, FlakyEngine

__all__ = [
    "DeviceSpec",
    "SearchTiming",
    "DeviceModel",
    "GPUModel",
    "CPUModel",
    "APUModel",
    "MultiGPUModel",
    "speedup_curve",
    "EnergyModel",
    "AssociativeProcessor",
    "HostDeviceModel",
    "AssociativeSearchEngine",
    "associative_match",
    "sha1_bitserial",
    "sha3_256_bitserial",
    "hash_cost_profile",
    "PLATFORM_A_CPU",
    "PLATFORM_A_GPU",
    "PLATFORM_B_APU",
    "COMM_TIME_SECONDS",
    "DeviceFailure",
    "FlakyDeviceModel",
    "FlakyEngine",
]
