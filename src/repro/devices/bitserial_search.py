"""The RBC search as an associative-memory program.

This is what "Associative Processing Unit" means operationally: after the
bit-sliced hash, finding the matching digest is not a loop — it is the
machine's native *associative match*: compare a broadcast key against a
column-resident field across all PEs at once and read back the match
vector. This module runs the complete SALTED inner loop on the simulator:

1. load one candidate seed per PE (the shell batch);
2. hash all PEs in lockstep with the bit-sliced program;
3. associatively match the digest field against the client digest;
4. return the matching PE (or nothing), plus the op accounting.

Together with :mod:`repro.devices.bitserial` this demonstrates the full
SALTED-APU data path at functional fidelity — every digest bit computed
by column operations, every comparison by the associative match.
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import seed_to_words
from repro.devices.associative import AssociativeProcessor
from repro.devices.bitserial import sha1_bitserial, sha3_256_bitserial
from repro.hashes.registry import get_hash

__all__ = ["associative_match", "AssociativeSearchEngine"]


def associative_match(
    proc: AssociativeProcessor, field: np.ndarray, key_bits: np.ndarray
) -> np.ndarray:
    """The APU's native operation: match a key against a per-PE field.

    ``field`` is ``(num_pes, width_words)`` integer data conceptually
    resident in bit columns; ``key_bits`` is the broadcast search key as
    packed words of the same shape[1]. Costs one column op per key bit
    (the tag update sweep). Returns the boolean match vector.
    """
    field = np.asarray(field)
    if field.ndim != 2 or field.shape[0] != proc.num_pes:
        raise ValueError("field must be (num_pes, words)")
    if key_bits.shape != (field.shape[1],):
        raise ValueError("key width must equal field width")
    # Tag sweep: one op per bit column of the field.
    bits_per_word = field.dtype.itemsize * 8
    proc.op_count += field.shape[1] * bits_per_word
    return (field == key_bits[None, :]).all(axis=1)


class AssociativeSearchEngine:
    """One SALTED shell batch, end to end on the associative machine."""

    def __init__(self, hash_name: str = "sha1"):
        algo = get_hash(hash_name)
        if algo.name == "sha1":
            self._kernel = sha1_bitserial
        elif algo.name == "sha3-256":
            self._kernel = sha3_256_bitserial
        else:
            raise ValueError(
                "bit-serial kernels exist for sha1 and sha3-256 only"
            )
        self.algo = algo

    def search_batch(
        self, candidates: list[bytes], target_digest: bytes
    ) -> tuple[int | None, AssociativeProcessor]:
        """Hash ``candidates`` (one per PE) and match the target digest.

        Returns ``(matching index or None, processor with op counts)``.
        """
        if not candidates:
            raise ValueError("need at least one candidate")
        proc = AssociativeProcessor(len(candidates))
        words = np.stack([seed_to_words(c) for c in candidates])
        digests = self._kernel(proc, words)
        key = self.algo.digest_to_words(target_digest)
        matches = associative_match(proc, digests, key)
        hits = np.flatnonzero(matches)
        return (int(hits[0]) if hits.size else None), proc

    def ops_per_candidate(self, batch: int = 4) -> float:
        """Column operations per candidate, hash + match included."""
        import numpy as _np

        rng = _np.random.default_rng(0)
        candidates = [rng.bytes(32) for _ in range(batch)]
        target = self.algo.scalar(rng.bytes(32))
        _idx, proc = self.search_batch(candidates, target)
        return proc.op_count / batch
