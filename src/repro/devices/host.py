"""A device model calibrated to *this host's* measured kernels.

The paper-calibrated models answer "what did the authors' hardware do";
this one answers "what can the machine you are on do": it probes the
real vectorized kernels, wraps the measurements in the same
:class:`~repro.devices.base.DeviceModel` interface, and thereby lets all
downstream machinery — Table 5-style comparisons, tractable-d planning,
the capacity model — run against live numbers.

Because the engine really executes, ``search_time`` here is a
*prediction from measured throughput* and ``verify_prediction`` checks
it against an actual timed search at reduced scale.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.combinatorics.binomial import average_seed_count, exhaustive_seed_count
from repro.devices.base import DeviceModel, DeviceSpec, SearchTiming
from repro.engines.registry import build_engine

__all__ = ["HostDeviceModel"]


class HostDeviceModel(DeviceModel):
    """This machine, measured: NumPy lanes as the 'accelerator'."""

    def __init__(
        self,
        hash_names: tuple[str, ...] = ("sha1", "sha256", "sha3-256", "sha512"),
        probe_seeds: int = 30000,
        batch_size: int = 16384,
        seed_bits: int = 256,
    ):
        self.seed_bits = seed_bits
        self.batch_size = batch_size
        self.spec = DeviceSpec(
            name="Host",
            model="NumPy vector lanes",
            cores=multiprocessing.cpu_count(),
            clock_mhz=0.0,
            memory_gib=0.0,
            idle_watts=0.0,
            max_watts=0.0,
        )
        self._throughput: dict[str, float] = {}
        for name in hash_names:
            executor = build_engine("batch", hash_name=name, batch_size=batch_size)
            # Warm-up then probe.
            executor.throughput_probe(min(2000, probe_seeds))
            self._throughput[executor.algo.name] = executor.throughput_probe(
                probe_seeds
            )

    @property
    def throughput(self) -> dict[str, float]:
        """Measured hashes/second per algorithm."""
        return dict(self._throughput)

    def _rate(self, hash_name: str) -> float:
        from repro.hashes.registry import get_hash

        canonical = get_hash(hash_name).name
        if canonical not in self._throughput:
            raise KeyError(f"hash {hash_name!r} was not probed")
        return self._throughput[canonical]

    def _seeds(self, distance: int, mode: str) -> int:
        if mode == "exhaustive":
            return exhaustive_seed_count(distance, self.seed_bits)
        return average_seed_count(distance, self.seed_bits)

    def search_time(
        self, hash_name: str, distance: int, mode: str = "exhaustive"
    ) -> float:
        """Predicted search seconds from the measured throughput."""
        self._check_mode(mode)
        return self._seeds(distance, mode) / self._rate(hash_name)

    def simulate_search(
        self, hash_name: str, distance: int, mode: str = "exhaustive", **kwargs
    ) -> SearchTiming:
        """Timing record from the measured host throughput."""
        seconds = self.search_time(hash_name, distance, mode)
        return SearchTiming(
            device=self.spec.name,
            hash_name=hash_name,
            distance=distance,
            mode=mode,
            seeds_searched=self._seeds(distance, mode),
            search_seconds=seconds,
            kernels_launched=0,
            energy_joules=0.0,
            average_watts=0.0,
        )

    def tractable_distance(self, hash_name: str, threshold: float = 20.0) -> int:
        """Largest d this host searches within the protocol threshold."""
        from repro.core.complexity import tractable_distance

        return tractable_distance(self._rate(hash_name), threshold)

    def verify_prediction(
        self, hash_name: str, distance: int = 2, tolerance: float = 1.0
    ) -> tuple[float, float]:
        """Time a real exhaustive miss and compare with the prediction.

        Returns ``(predicted_seconds, measured_seconds)`` and raises if
        they disagree by more than ``tolerance`` (fractional error) —
        the self-consistency check between model and engine.
        """
        import numpy as np

        from repro.hashes.registry import get_hash

        rng = np.random.default_rng(0)
        base = rng.bytes(32)
        absent = get_hash(hash_name).scalar(rng.bytes(32))
        executor = build_engine(
            "batch", hash_name=hash_name, batch_size=self.batch_size
        )
        start = time.perf_counter()
        result = executor.search(base, absent, distance)
        measured = time.perf_counter() - start
        if result.found:
            raise AssertionError("probe digest unexpectedly matched")
        predicted = self.search_time(hash_name, distance)
        if abs(measured - predicted) / predicted > tolerance:
            raise AssertionError(
                f"prediction {predicted:.3f}s vs measured {measured:.3f}s "
                f"differ beyond {tolerance:.0%}"
            )
        return predicted, measured
