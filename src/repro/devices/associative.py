"""Functional simulator of an associative (compute-in-memory) processor.

The GSI Gemini APU computes by applying boolean operations *across bit
columns* of a wide memory: every processing element (PE) owns a slice of
rows, and one instruction updates one bit column of every PE at once.
Word-level arithmetic is therefore *bit-serial*: an XOR of two 32-bit
words costs 32 column operations, and an addition costs a ripple-carry
loop — while rotations are free (column renaming). This inverts the
cost model of conventional CPUs and is exactly why hash choice matters
so much on the APU.

:class:`AssociativeProcessor` models that machine faithfully enough to
*run real hash functions*: registers are named bit columns (NumPy bool
arrays of shape ``(num_pes,)``), instructions are column-wise boolean
ops, and the simulator counts column operations and peak live columns —
the two quantities that determine APU throughput (ops -> cycles) and PE
allocation (columns -> bit-processors per PE, the paper's Section 3.3
resource metric).

The bit-sliced SHA-1 and Keccak implementations built on top
(:mod:`repro.devices.bitserial`) are validated against ``hashlib``, so
the op counts are those of genuinely working hardware-level programs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AssociativeProcessor", "BitColumnWord"]


class BitColumnWord:
    """A machine word stored as ``width`` named bit columns.

    Column ``i`` holds bit ``i`` (LSB first) of the word in every PE.
    Rotation returns a *view* with permuted column references — zero
    machine operations, like re-addressing columns on real hardware.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: list[np.ndarray]):
        self.columns = columns

    @property
    def width(self) -> int:
        """Bit width of this word."""
        return len(self.columns)

    def rotl(self, shift: int) -> "BitColumnWord":
        """Rotate left by renaming columns (free on the APU)."""
        width = self.width
        shift %= width
        # Bit i of the result is bit (i - shift) mod width of the input.
        return BitColumnWord(
            [self.columns[(i - shift) % width] for i in range(width)]
        )

    def rotr(self, shift: int) -> "BitColumnWord":
        """Rotate right by renaming columns (free on the APU)."""
        return self.rotl(-shift)

    def shr(self, shift: int, zero: np.ndarray) -> "BitColumnWord":
        """Logical shift right; vacated high columns read the zero column."""
        width = self.width
        if shift < 0 or shift > width:
            raise ValueError("bad shift")
        return BitColumnWord(
            [
                self.columns[i + shift] if i + shift < width else zero
                for i in range(width)
            ]
        )


class AssociativeProcessor:
    """``num_pes`` parallel processing elements over named bit columns."""

    def __init__(self, num_pes: int):
        if num_pes < 1:
            raise ValueError("need at least one PE")
        self.num_pes = num_pes
        self.op_count = 0
        self._live_columns = 0
        self.peak_columns = 0
        self._zero = np.zeros(num_pes, dtype=bool)

    # -- column allocation -------------------------------------------------

    def _new_column(self, values: np.ndarray | None = None) -> np.ndarray:
        self._live_columns += 1
        self.peak_columns = max(self.peak_columns, self._live_columns)
        if values is None:
            return np.zeros(self.num_pes, dtype=bool)
        return values.astype(bool).copy()

    def free_word(self, word: BitColumnWord) -> None:
        """Release a word's columns (register reuse on real hardware)."""
        self._live_columns -= word.width
        word.columns = []

    @property
    def zero_column(self) -> np.ndarray:
        """A shared all-zero column (not counted as state)."""
        return self._zero

    # -- data movement -------------------------------------------------------

    def load_words(self, values: np.ndarray, width: int) -> BitColumnWord:
        """Load per-PE integers into a new bit-column word."""
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.num_pes,):
            raise ValueError(f"expected ({self.num_pes},) values")
        columns = [
            self._new_column((values >> np.uint64(i)) & np.uint64(1) != 0)
            for i in range(width)
        ]
        # One column write per bit.
        self.op_count += width
        return BitColumnWord(columns)

    def read_words(self, word: BitColumnWord) -> np.ndarray:
        """Read a bit-column word back into per-PE integers."""
        out = np.zeros(self.num_pes, dtype=np.uint64)
        for i, column in enumerate(word.columns):
            out |= column.astype(np.uint64) << np.uint64(i)
        return out

    def constant(self, value: int, width: int) -> BitColumnWord:
        """A word holding the same constant in every PE."""
        columns = []
        for i in range(width):
            bit = (value >> i) & 1
            columns.append(
                self._new_column(
                    np.ones(self.num_pes, dtype=bool) if bit else None
                )
            )
        self.op_count += width
        return BitColumnWord(columns)

    # -- boolean column instructions ------------------------------------------

    def _emit(self, count: int = 1) -> None:
        self.op_count += count

    def xor(self, a: BitColumnWord, b: BitColumnWord) -> BitColumnWord:
        """Column-wise XOR (1 op per bit)."""
        self._check(a, b)
        self._emit(a.width)
        return BitColumnWord(
            [self._new_column(x ^ y) for x, y in zip(a.columns, b.columns)]
        )

    def and_(self, a: BitColumnWord, b: BitColumnWord) -> BitColumnWord:
        """Column-wise AND (1 op per bit)."""
        self._check(a, b)
        self._emit(a.width)
        return BitColumnWord(
            [self._new_column(x & y) for x, y in zip(a.columns, b.columns)]
        )

    def or_(self, a: BitColumnWord, b: BitColumnWord) -> BitColumnWord:
        """Column-wise OR (1 op per bit)."""
        self._check(a, b)
        self._emit(a.width)
        return BitColumnWord(
            [self._new_column(x | y) for x, y in zip(a.columns, b.columns)]
        )

    def not_(self, a: BitColumnWord) -> BitColumnWord:
        """Column-wise NOT (1 op per bit)."""
        self._emit(a.width)
        return BitColumnWord([self._new_column(~x) for x in a.columns])

    def mux(self, sel: BitColumnWord, a: BitColumnWord, b: BitColumnWord) -> BitColumnWord:
        """Per-bit select: ``(sel & a) | (~sel & b)`` fused (2 ops/bit)."""
        self._check(a, b)
        self._check(a, sel)
        self._emit(2 * a.width)
        return BitColumnWord(
            [
                self._new_column((s & x) | (~s & y))
                for s, x, y in zip(sel.columns, a.columns, b.columns)
            ]
        )

    def add(self, a: BitColumnWord, b: BitColumnWord) -> BitColumnWord:
        """Bit-serial ripple-carry addition modulo 2^width.

        Per bit: sum = a ^ b ^ carry; carry' = majority(a, b, carry) —
        5 column operations per bit, the dominant cost of SHA-1/SHA-2 on
        associative hardware.
        """
        self._check(a, b)
        width = a.width
        carry = self._zero
        out = []
        for x, y in zip(a.columns, b.columns):
            partial = x ^ y
            out.append(self._new_column(partial ^ carry))
            carry = (x & y) | (partial & carry)
            self._emit(5)
        return BitColumnWord(out)

    def _check(self, a: BitColumnWord, b: BitColumnWord) -> None:
        if a.width != b.width:
            raise ValueError(f"width mismatch {a.width} != {b.width}")

    # -- accounting ------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the op counter; peak tracks from the current state."""
        self.op_count = 0
        self.peak_columns = self._live_columns

    def stats(self) -> dict[str, int]:
        """Current op and column accounting."""
        return {
            "op_count": self.op_count,
            "live_columns": self._live_columns,
            "peak_columns": self.peak_columns,
        }
