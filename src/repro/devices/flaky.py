"""Fault-injecting wrappers for search backends.

Two wrappers share one fault stream
(:class:`~repro.reliability.faults.DeviceFaultInjector`):

* :class:`FlakyDeviceModel` wraps an analytic device model (GPU / APU /
  CPU): a scheduled failure raises :class:`DeviceFailure` mid-search, a
  scheduled slowdown stretches the modeled time (thermal throttling, a
  sick HBM stack) — and the energy account scales with it.
* :class:`FlakyEngine` wraps a *real* execution engine (the serving
  path's :class:`~repro.runtime.executor.BatchSearchExecutor`): scheduled
  failures raise before the search runs, which is what trips the
  server-side circuit breaker and exercises CPU failover.
"""

from __future__ import annotations

import dataclasses

from repro.devices.base import DeviceModel, SearchTiming
from repro.engines.wrappers import EngineWrapper, describe_engine

__all__ = ["DeviceFailure", "FlakyDeviceModel", "FlakyEngine"]


class DeviceFailure(RuntimeError):
    """The accelerator died (or was killed) during a search."""

    def __init__(self, device: str, search_index: int):
        super().__init__(f"device {device!r} failed on search #{search_index}")
        self.device = device
        self.search_index = search_index


#: Inner-model names ``from_token`` resolves (lazy factory per name).
_MODEL_NAMES = ("gpu", "apu", "cpu", "host")


def _resolve_model(name: str) -> DeviceModel:
    if name == "gpu":
        from repro.devices.gpu import GPUModel

        return GPUModel()
    if name == "apu":
        from repro.devices.apu import APUModel

        return APUModel()
    if name == "cpu":
        from repro.devices.cpu import CPUModel

        return CPUModel()
    if name == "host":
        from repro.devices.host import HostDeviceModel

        # Reduced probe scale: token resolution must be cheap, and the
        # fleet only consults the wrapper's fault stream, not the model's
        # calibrated throughput.
        return HostDeviceModel(hash_names=("sha1",), probe_seeds=4096, batch_size=4096)
    raise ValueError(
        f"unknown device model {name!r}; known: {', '.join(_MODEL_NAMES)}"
    )


class FlakyDeviceModel(DeviceModel):
    """A simulated accelerator that can fail or throttle mid-search."""

    def __init__(self, inner: DeviceModel, injector):
        self.inner = inner
        self.injector = injector
        self.spec = inner.spec
        self.searches_attempted = 0
        self.failures_injected = 0
        self.slowdowns_injected = 0

    @classmethod
    def from_token(
        cls,
        token: str,
        *,
        seed: int = 0,
        episodes: int = 1,
        episode_length: int = 6,
        slow_rate: float = 0.0,
        slow_factor: float = 4.0,
        horizon: int = 200,
    ) -> "FlakyDeviceModel":
        """Build a flaky model from a device token like ``"flaky-gpu"``.

        This is what makes flaky devices composable in engine specs:
        ``fleet:gpu,flaky-apu`` resolves each token independently, so a
        fleet can mix healthy and fault-injected devices without the
        caller wiring up a :class:`~repro.reliability.faults.FaultPlan`
        by hand. A ``slow-`` prefix yields a permanently-throttled
        device (no failures) instead of a failing one.
        """
        # Lazy: reliability.chaos imports this module, so the plan
        # machinery cannot be a module-scope import here.
        from repro.reliability.faults import FaultPlan, FaultSpec

        name = token
        slow_only = False
        if name.startswith("flaky-"):
            name = name[len("flaky-") :]
        elif name.startswith("slow-"):
            name = name[len("slow-") :]
            slow_only = True
        spec = FaultSpec(
            name=f"token:{token}",
            device_failure_episodes=0 if slow_only else episodes,
            device_failure_length=episode_length,
            device_slow_rate=1.0 if slow_only else slow_rate,
            device_slow_factor=slow_factor,
        )
        injector = FaultPlan(spec, seed).device_injector(horizon)
        return cls(_resolve_model(name), injector)

    def _fault(self) -> str | None:
        self.searches_attempted += 1
        fault = self.injector.next()
        if fault == "fail":
            self.failures_injected += 1
            raise DeviceFailure(self.spec.name, self.searches_attempted - 1)
        if fault == "slow":
            self.slowdowns_injected += 1
        return fault

    def _slow_factor(self, fault: str | None) -> float:
        if fault != "slow":
            return 1.0
        return getattr(self.injector.spec, "device_slow_factor", 4.0)

    def search_time(self, hash_name, distance, mode="exhaustive", **kwargs) -> float:
        """Modeled seconds, stretched or aborted per the fault stream."""
        fault = self._fault()
        return self.inner.search_time(hash_name, distance, mode, **kwargs) * (
            self._slow_factor(fault)
        )

    def health_probe(self) -> bool:
        """Healthy unless the *current* search index sits in an episode.

        Peeks without consuming the fault stream: probes tell the fleet
        whether the device would fail right now, they do not advance
        which searches fail.
        """
        episodes = getattr(self.injector, "episodes", ())
        index = getattr(self.injector, "calls", 0)
        return not any(lo <= index < hi for lo, hi in episodes)

    def simulate_search(self, hash_name, distance, mode="exhaustive", **kwargs) -> SearchTiming:
        """Full timing record; a throttled search burns energy for longer."""
        fault = self._fault()
        timing = self.inner.simulate_search(hash_name, distance, mode, **kwargs)
        factor = self._slow_factor(fault)
        if factor == 1.0:
            return timing
        return dataclasses.replace(
            timing,
            device=f"{timing.device} (throttled x{factor:g})",
            search_seconds=timing.search_seconds * factor,
            energy_joules=timing.energy_joules * factor,
        )


class FlakyEngine(EngineWrapper):
    """A real SearchEngine whose device can die between searches.

    Search geometry (batch size, hash name) forwards from the wrapped
    engine via :class:`~repro.engines.wrappers.EngineWrapper`, so the
    session layer's nonce-binding adapter composes around this wrapper
    unchanged.
    """

    wrapper_name = "flaky"

    def __init__(self, inner, injector, name: str = "primary"):
        super().__init__(inner)
        self.injector = injector
        self.name = name
        self.searches_attempted = 0
        self.failures_injected = 0

    def describe(self) -> str:
        return f"flaky[{self.name}]({describe_engine(self.inner)})"

    def search(self, base_seed, target_digest, max_distance, time_budget=None):
        """Run the inner search unless the fault stream kills the device."""
        index = self.searches_attempted
        self.searches_attempted += 1
        if self.injector.next() == "fail":
            self.failures_injected += 1
            raise DeviceFailure(self.name, index)
        return self.inner.search(
            base_seed, target_digest, max_distance, time_budget=time_budget
        )
