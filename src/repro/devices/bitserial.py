"""Bit-sliced SHA-1 and Keccak on the associative processor.

These are real, working hash implementations written in the associative
machine's instruction set (column-wise boolean ops + bit-serial adds),
validated against ``hashlib``. Running them yields the two quantities
that drive the paper's APU results *from first principles*:

* **column-operation counts** per hash — the cycle-cost model: SHA-1 is
  adder-dominated (5 ops per bit per addition), Keccak is XOR/AND-only
  but has 4x the state width;
* **peak live columns** per PE — the bit-processor footprint that
  determines how many PEs fit on the chip (Section 3.3's 65k-vs-26k).

The bench ``bench_ext_bitserial`` compares the emergent SHA-1:SHA-3 cost
ratio with the ratio calibrated from the paper's measurements.
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import SEED_WORDS64
from repro.devices.associative import AssociativeProcessor, BitColumnWord
from repro.hashes.sha1 import SHA1
from repro.hashes.sha3 import ROTATION_OFFSETS, ROUND_CONSTANTS

__all__ = ["sha1_bitserial", "sha3_256_bitserial", "hash_cost_profile"]

_SHA1_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def _seed_words_to_msg32(words: np.ndarray) -> list[np.ndarray]:
    """``(N, 4)`` uint64 seeds -> 8 big-endian uint32 message word arrays."""
    words = np.asarray(words, dtype=np.uint64)
    msg = []
    for i in range(SEED_WORDS64):
        w = words[:, SEED_WORDS64 - 1 - i]
        msg.append((w >> np.uint64(32)).astype(np.uint64))
        msg.append((w & np.uint64(0xFFFFFFFF)).astype(np.uint64))
    return msg


def sha1_bitserial(
    proc: AssociativeProcessor, seed_words: np.ndarray
) -> np.ndarray:
    """SHA-1 of N 256-bit seeds, executed on the associative machine.

    Returns ``(N, 5)`` uint32 digest words (same layout as the batch
    kernel). One "PE" per row; all rows advance in lockstep, as on the
    real chip.
    """
    msg32 = _seed_words_to_msg32(seed_words)
    n = proc.num_pes
    if msg32[0].shape[0] != n:
        raise ValueError("seed batch size must equal the PE count")

    # Fixed padding for 32-byte messages (Section 3.2.2 applies here too).
    schedule: list[BitColumnWord] = []
    for w in msg32:
        schedule.append(proc.load_words(w, 32))
    schedule.append(proc.constant(0x80000000, 32))
    for _ in range(6):
        schedule.append(proc.constant(0, 32))
    schedule.append(proc.constant(256, 32))

    h_init = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
    a, b, c, d, e = (proc.constant(v, 32) for v in h_init)
    k_words = [proc.constant(k, 32) for k in _SHA1_K]

    w_ring = list(schedule)  # 16-deep ring buffer
    for t in range(80):
        idx = t & 15
        if t >= 16:
            x1 = proc.xor(w_ring[(t - 3) & 15], w_ring[(t - 8) & 15])
            x2 = proc.xor(w_ring[(t - 14) & 15], w_ring[idx])
            x3 = proc.xor(x1, x2)
            wt = x3.rotl(1)
            proc.free_word(x1)
            proc.free_word(x2)
            proc.free_word(w_ring[idx])
            w_ring[idx] = wt
        wt = w_ring[idx]

        if t < 20:
            # Choice: (b & c) | (~b & d) as a fused mux.
            f = proc.mux(b, c, d)
        elif t < 40 or t >= 60:
            f1 = proc.xor(b, c)
            f = proc.xor(f1, d)
            proc.free_word(f1)
        else:
            # Majority: (b & c) | (b & d) | (c & d).
            bc = proc.and_(b, c)
            bd = proc.and_(b, d)
            cd = proc.and_(c, d)
            m1 = proc.or_(bc, bd)
            f = proc.or_(m1, cd)
            for word in (bc, bd, cd, m1):
                proc.free_word(word)

        s1 = proc.add(a.rotl(5), f)
        s2 = proc.add(s1, e)
        s3 = proc.add(s2, k_words[t // 20])
        tmp = proc.add(s3, wt)
        for word in (f, s1, s2, s3):
            proc.free_word(word)
        proc.free_word(e)
        e, d, c, b, a = d, c, b.rotl(30), a, tmp

    out = np.empty((n, 5), dtype=np.uint32)
    for i, (state, init) in enumerate(zip((a, b, c, d, e), h_init)):
        init_word = proc.constant(init, 32)
        final = proc.add(state, init_word)
        out[:, i] = proc.read_words(final).astype(np.uint32)
        proc.free_word(init_word)
        proc.free_word(final)
        proc.free_word(state)
    for word in k_words + w_ring:
        proc.free_word(word)
    return out


def sha3_256_bitserial(
    proc: AssociativeProcessor, seed_words: np.ndarray
) -> np.ndarray:
    """SHA3-256 of N 256-bit seeds on the associative machine.

    Returns ``(N, 4)`` uint64 digest words (batch-kernel layout). Note
    what the machine makes cheap and dear: every rho/pi rotation is free
    column renaming, chi is pure boolean, there are *no adders at all* —
    but the state occupies 1600 live columns against SHA-1's ~700.
    """
    words = np.asarray(seed_words, dtype=np.uint64)
    n = proc.num_pes
    if words.shape != (n, SEED_WORDS64):
        raise ValueError("seed batch size must equal the PE count")

    lanes: list[BitColumnWord] = []
    for j in range(SEED_WORDS64):
        lanes.append(proc.load_words(words[:, SEED_WORDS64 - 1 - j].byteswap(), 64))
    lanes.append(proc.constant(0x06, 64))
    for _ in range(5, 16):
        lanes.append(proc.constant(0, 64))
    lanes.append(proc.constant(0x8000000000000000, 64))
    for _ in range(17, 25):
        lanes.append(proc.constant(0, 64))

    for rc in ROUND_CONSTANTS:
        # Theta.
        c_cols = []
        for x in range(5):
            t1 = proc.xor(lanes[x], lanes[x + 5])
            t2 = proc.xor(t1, lanes[x + 10])
            t3 = proc.xor(t2, lanes[x + 15])
            c_x = proc.xor(t3, lanes[x + 20])
            for word in (t1, t2, t3):
                proc.free_word(word)
            c_cols.append(c_x)
        d_cols = []
        for x in range(5):
            d_cols.append(proc.xor(c_cols[(x - 1) % 5], c_cols[(x + 1) % 5].rotl(1)))
        for word in c_cols:
            proc.free_word(word)
        for x in range(5):
            for y in range(5):
                new = proc.xor(lanes[x + 5 * y], d_cols[x])
                proc.free_word(lanes[x + 5 * y])
                lanes[x + 5 * y] = new
        for word in d_cols:
            proc.free_word(word)
        # Rho + Pi: pure renaming (free).
        b_lanes: list[BitColumnWord | None] = [None] * 25
        for x in range(5):
            for y in range(5):
                b_lanes[y + 5 * ((2 * x + 3 * y) % 5)] = lanes[x + 5 * y].rotl(
                    ROTATION_OFFSETS[x][y]
                )
        # Chi.
        new_lanes: list[BitColumnWord] = [None] * 25  # type: ignore[list-item]
        for y in range(5):
            row = [b_lanes[x + 5 * y] for x in range(5)]
            for x in range(5):
                inverted = proc.not_(row[(x + 1) % 5])
                masked = proc.and_(inverted, row[(x + 2) % 5])
                new_lanes[x + 5 * y] = proc.xor(row[x], masked)
                proc.free_word(inverted)
                proc.free_word(masked)
        for lane in lanes:
            proc.free_word(lane)
        lanes = new_lanes
        # Iota: flip the RC's set bit-columns of lane 0 in place.
        set_bits = [i for i in range(64) if (rc >> i) & 1]
        for i in set_bits:
            lanes[0].columns[i] = ~lanes[0].columns[i]
        proc.op_count += len(set_bits)

    out = np.empty((n, 4), dtype=np.uint64)
    for j in range(4):
        out[:, j] = proc.read_words(lanes[j])
    for lane in lanes:
        proc.free_word(lane)
    return out


def hash_cost_profile(num_pes: int = 4, rng_seed: int = 0) -> dict[str, dict[str, float]]:
    """Measured column-op counts and footprints for both hashes.

    Returns per-hash: ``ops_per_hash`` (column operations) and
    ``peak_columns`` (live bit columns = 16-bit BPs x 16 needed per PE).
    """
    rng = np.random.default_rng(rng_seed)
    seeds = rng.integers(0, 1 << 63, size=(num_pes, 4), dtype=np.int64).astype(np.uint64)

    profile: dict[str, dict[str, float]] = {}
    proc = AssociativeProcessor(num_pes)
    sha1_bitserial(proc, seeds)
    profile["sha1"] = {
        "ops_per_hash": proc.op_count,
        "peak_columns": proc.peak_columns,
    }
    proc = AssociativeProcessor(num_pes)
    sha3_256_bitserial(proc, seeds)
    profile["sha3-256"] = {
        "ops_per_hash": proc.op_count,
        "peak_columns": proc.peak_columns,
    }
    return profile
