"""SALTED-APU device model (GSI Gemini associative processing unit).

The APU's defining constraint is *structural*: processing elements are
carved out of 16-bit bit-processors (BPs), so the PE count is inversely
proportional to the algorithm's state footprint — 2 BPs per SHA-1 PE
gives 65,536 PEs; 5 BPs per SHA-3 PE gives 26,176 (paper Section 3.3).
That single fact drives the paper's APU results: near-GPU throughput for
SHA-1, a ~3x deficit for SHA-3.

The model executes that structure: PE allocation from the bank geometry,
per-PE throughput anchors, batch-of-256 seed permutation between
associative-memory exit-flag checks, and the energy profile of
compute-in-memory (low, flat power).
"""

from __future__ import annotations

import math

from repro.combinatorics.binomial import (
    average_seed_count,
    binomial,
    exhaustive_seed_count,
)
from repro.devices.base import DeviceModel, DeviceSpec, SearchTiming
from repro.devices.calibration import (
    APU_ACTIVE_WATTS,
    APU_BATCH_SEEDS,
    APU_PE_THROUGHPUT,
    PLATFORM_B_APU,
    throughput_for,
)
from repro.hashes.registry import get_hash

__all__ = ["APUModel"]


class APUModel(DeviceModel):
    """Analytic Gemini-APU model for the RBC-SALTED search."""

    #: Chip geometry (paper Figure 2): 4 cores x 16 banks x 2048 BPs.
    CORES = 4
    BANKS_PER_CORE = 16
    BPS_PER_BANK = 2048

    def __init__(self, spec: DeviceSpec = PLATFORM_B_APU, seed_bits: int = 256,
                 num_apus: int = 1):
        self.spec = spec
        self.seed_bits = seed_bits
        if num_apus < 1:
            raise ValueError("num_apus must be positive")
        self.num_apus = num_apus

    def pe_count(self, hash_name: str) -> int:
        """PEs available for ``hash_name`` given its BP footprint."""
        bps = get_hash(hash_name).apu_bps_per_pe
        per_bank = self.BPS_PER_BANK // bps
        return self.CORES * self.BANKS_PER_CORE * per_bank * self.num_apus

    def device_throughput(self, hash_name: str) -> float:
        """Whole-chip seeds/second for ``hash_name``."""
        return self.pe_count(hash_name) * throughput_for(
            APU_PE_THROUGHPUT, hash_name
        )

    def _seeds(self, distance: int, mode: str) -> int:
        if mode == "exhaustive":
            return exhaustive_seed_count(distance, self.seed_bits)
        return average_seed_count(distance, self.seed_bits)

    def search_time(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
    ) -> float:
        """Search-only seconds up to ``distance``.

        Work is quantized to startup-combination batches: each PE loads a
        checkpoint, generates :data:`APU_BATCH_SEEDS` permutations, then
        consults the exit flag — so per shell, every PE processes a whole
        number of batches (paper Section 3.3).
        """
        self._check_mode(mode)
        pes = self.pe_count(hash_name)
        per_pe_rate = throughput_for(APU_PE_THROUGHPUT, hash_name)
        total = 0.0
        for shell_distance in range(1, distance + 1):
            shell = binomial(self.seed_bits, shell_distance)
            if mode == "average" and shell_distance == distance:
                shell //= 2
            per_pe = math.ceil(shell / pes)
            # Batch quantization: finish the current 256-permutation batch
            # before the flag check can stop the shell.
            per_pe_batches = math.ceil(per_pe / APU_BATCH_SEEDS)
            total += per_pe_batches * APU_BATCH_SEEDS / per_pe_rate
        return total

    def simulate_search(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        **kwargs,
    ) -> SearchTiming:
        """Full timing record including the compute-in-memory energy."""
        seconds = self.search_time(hash_name, distance, mode, **kwargs)
        watts = throughput_for(APU_ACTIVE_WATTS, hash_name) * self.num_apus
        return SearchTiming(
            device=self.spec.name if self.num_apus == 1
            else f"{self.num_apus}x{self.spec.name}",
            hash_name=hash_name,
            distance=distance,
            mode=mode,
            seeds_searched=self._seeds(distance, mode),
            search_seconds=seconds,
            kernels_launched=0,
            energy_joules=watts * seconds,
            average_watts=watts,
        )
