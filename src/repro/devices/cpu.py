"""SALTED-CPU device model (dual EPYC 7542, OpenMP-style).

The CPU executes Algorithm 1 exactly as written: ``p`` software threads,
each assigned ``C(256, d)/p`` seeds per shell, a main-memory exit flag.
The model is a per-core throughput anchor plus an Amdahl serial fraction
calibrated from the paper's reported 59x / 63x speedups on 64 cores —
near-perfect scaling, which Section 5 cites as motivation for multi-node
MPI scaling (implemented here in :meth:`CPUModel.cluster_time` as the
paper's future-work extension, using the same per-node efficiency)."""

from __future__ import annotations

from repro.combinatorics.binomial import (
    average_seed_count,
    binomial,
    exhaustive_seed_count,
)
from repro.devices.base import DeviceModel, DeviceSpec, SearchTiming
from repro.devices.calibration import (
    CPU_CORE_THROUGHPUT,
    CPU_SERIAL_FRACTION,
    PLATFORM_A_CPU,
    throughput_for,
)

__all__ = ["CPUModel"]


class CPUModel(DeviceModel):
    """Analytic multicore-CPU model for the RBC-SALTED search."""

    def __init__(self, spec: DeviceSpec = PLATFORM_A_CPU, seed_bits: int = 256):
        self.spec = spec
        self.seed_bits = seed_bits

    def _seeds(self, distance: int, mode: str) -> int:
        if mode == "exhaustive":
            return exhaustive_seed_count(distance, self.seed_bits)
        return average_seed_count(distance, self.seed_bits)

    def single_core_time(self, hash_name: str, distance: int, mode: str = "exhaustive") -> float:
        """Sequential-baseline seconds (p = 1)."""
        self._check_mode(mode)
        rate = throughput_for(CPU_CORE_THROUGHPUT, hash_name)
        return self._seeds(distance, mode) / rate

    def search_time(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        threads: int | None = None,
    ) -> float:
        """Search-only seconds on ``threads`` cores (Amdahl-scaled)."""
        self._check_mode(mode)
        p = threads if threads is not None else self.spec.cores
        if p < 1:
            raise ValueError("threads must be positive")
        serial_fraction = throughput_for(CPU_SERIAL_FRACTION, hash_name)
        t1 = self.single_core_time(hash_name, distance, mode)
        return t1 * (serial_fraction + (1.0 - serial_fraction) / p)

    def speedup(self, hash_name: str, threads: int, distance: int = 5) -> float:
        """Strong-scaling speedup over one core (Section 4.3)."""
        return self.single_core_time(hash_name, distance) / self.search_time(
            hash_name, distance, threads=threads
        )

    def cluster_time(
        self,
        hash_name: str,
        distance: int,
        nodes: int,
        mode: str = "exhaustive",
        threads_per_node: int | None = None,
        network_overhead_seconds: float = 0.05,
    ) -> float:
        """Paper future work: distribute shells across MPI-style nodes.

        Each node takes a ``1/nodes`` rank slice of every shell; the
        per-node time follows :meth:`search_time`; a per-node network
        cost covers the scatter of checkpoints and the gather of results
        (modeled after Philabaum et al.'s distributed-memory engine).
        """
        if nodes < 1:
            raise ValueError("nodes must be positive")
        p = threads_per_node if threads_per_node is not None else self.spec.cores
        serial_fraction = throughput_for(CPU_SERIAL_FRACTION, hash_name)
        t1 = self.single_core_time(hash_name, distance, mode)
        per_node = (t1 / nodes) * (serial_fraction + (1.0 - serial_fraction) / p)
        return per_node + network_overhead_seconds * (nodes - 1)

    def simulate_search(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        **kwargs,
    ) -> SearchTiming:
        """Full timing record; CPU power uses the spec's active envelope."""
        seconds = self.search_time(hash_name, distance, mode, **kwargs)
        threads = kwargs.get("threads") or self.spec.cores
        # Linear idle->max interpolation by core utilization.
        watts = self.spec.idle_watts + (
            self.spec.max_watts - self.spec.idle_watts
        ) * min(1.0, threads / self.spec.cores)
        return SearchTiming(
            device=self.spec.name,
            hash_name=hash_name,
            distance=distance,
            mode=mode,
            seeds_searched=self._seeds(distance, mode),
            search_seconds=seconds,
            kernels_launched=0,
            energy_joules=watts * seconds,
            average_watts=watts,
        )

    def shell_partition(self, distance: int, threads: int) -> list[tuple[int, int]]:
        """Per-thread rank ranges for one shell (Algorithm 1 line 10)."""
        from repro.runtime.partition import partition_ranks

        return partition_ranks(binomial(self.seed_bits, distance), threads)
