"""SALTED-GPU device model (NVIDIA A100-like).

Structure executed by the model (matching the paper's Section 3.2):

* one kernel launch per Hamming distance (the host loop of Algorithm 1);
* ``p = ceil(shell / n)`` threads, each iterating ``n`` seeds from its
  Chase checkpoint (or unranking its block for Algorithm 515);
* occupancy limited by threads-per-block ``b`` and resident-thread
  capacity (latency hiding requires heavy oversubscription);
* per-thread setup cost (checkpoint fetch) — punishes tiny ``n``;
* last-wave imbalance — punishes huge ``n``;
* a unified-memory early-exit flag whose cost appears in average-case
  searches and grows with the number of participating GPUs.

Throughput anchors come from :mod:`repro.devices.calibration`; everything
else (the Figure 3 bowl, Table 4 orderings, Figure 4 curves) emerges from
the structure above.
"""

from __future__ import annotations

import math

from repro.combinatorics.binomial import binomial
from repro.devices.base import DeviceModel, DeviceSpec, SearchTiming
from repro.devices.calibration import (
    GPU_ACTIVE_WATTS,
    GPU_EXIT_OVERHEAD_SECONDS,
    GPU_EXIT_SYNC_SECONDS,
    GPU_GENERIC_PADDING_FACTOR,
    GPU_GLOBAL_STATE_FACTOR,
    GPU_HASH_THROUGHPUT,
    GPU_ITERATOR_FACTOR,
    GPU_KERNEL_LAUNCH_SECONDS,
    GPU_MULTI_SPLIT_SECONDS,
    GPU_THREAD_SETUP_SEED_EQUIV,
    PLATFORM_A_GPU,
    throughput_for,
)
from repro.combinatorics.binomial import average_seed_count, exhaustive_seed_count

__all__ = ["GPUModel"]

#: Resident-thread capacity of an A100: 108 SMs x 2048 threads.
_RESIDENT_THREADS = 108 * 2048

#: Maximum resident blocks per SM (CUDA architectural limit).
_MAX_BLOCKS_PER_SM = 32

#: Modeled scheduling efficiency by block size beyond raw occupancy:
#: launch granularity and register-file quantization. Only the optimum's
#: location (b = 128) and the flatness of the plateau are evidence-backed
#: (paper Section 4.4); the specific percentages are modeling choices.
_BLOCK_EFFICIENCY = {64: 0.995, 256: 0.998, 512: 0.99, 1024: 0.965}


class GPUModel(DeviceModel):
    """Analytic A100 model for the RBC-SALTED search."""

    def __init__(self, spec: DeviceSpec = PLATFORM_A_GPU, seed_bits: int = 256):
        self.spec = spec
        self.seed_bits = seed_bits

    # -- structural pieces ------------------------------------------------

    def occupancy(self, threads_per_block: int) -> float:
        """Fraction of resident-thread capacity a launch config achieves."""
        if threads_per_block < 1 or threads_per_block > 1024:
            raise ValueError("threads per block must be in [1, 1024]")
        resident = min(2048, _MAX_BLOCKS_PER_SM * threads_per_block)
        base = resident / 2048
        return base * _BLOCK_EFFICIENCY.get(threads_per_block, 1.0)

    def effective_throughput(
        self,
        hash_name: str,
        iterator: str = "chase",
        threads_per_block: int = 128,
        fixed_padding: bool = True,
        shared_memory_state: bool = True,
    ) -> float:
        """Seeds hashed per second once all slowdown factors apply."""
        thr = throughput_for(GPU_HASH_THROUGHPUT, hash_name)
        if iterator not in GPU_ITERATOR_FACTOR:
            raise ValueError(
                f"unknown iterator {iterator!r}; choices: {sorted(GPU_ITERATOR_FACTOR)}"
            )
        thr /= GPU_ITERATOR_FACTOR[iterator]
        if not fixed_padding:
            thr /= GPU_GENERIC_PADDING_FACTOR
        if not shared_memory_state:
            thr /= throughput_for(GPU_GLOBAL_STATE_FACTOR, hash_name)
        thr *= self.occupancy(threads_per_block)
        return thr

    def kernel_time(
        self,
        hash_name: str,
        shell_seeds: int,
        total_threads: int,
        threads_per_block: int = 128,
        iterator: str = "chase",
        fixed_padding: bool = True,
        shared_memory_state: bool = True,
    ) -> float:
        """Modeled seconds for one Hamming-distance kernel.

        ``total_threads`` is the launch-wide thread count ``p``; the
        paper tunes it once, for the highest distance, so lower-distance
        kernels run the same ``p`` with fewer seeds per thread.
        """
        if total_threads < 1:
            raise ValueError("total_threads must be positive")
        if shell_seeds <= 0:
            return 0.0
        thr = self.effective_throughput(
            hash_name, iterator, threads_per_block, fixed_padding,
            shared_memory_state,
        )
        threads_active = min(total_threads, shell_seeds)
        per_thread = math.ceil(shell_seeds / total_threads)
        base = shell_seeds / thr
        setup = threads_active * GPU_THREAD_SETUP_SEED_EQUIV / thr
        # Expected idle in the final wave: about half the resident set
        # waits for stragglers that still have up to `per_thread` seeds.
        imbalance = per_thread * min(_RESIDENT_THREADS, threads_active) / 2 / thr
        # Critical path: one thread's sequential work cannot go faster
        # than `per_thread` seeds at the single-thread rate (the machine
        # rate is shared by at most the resident-thread set). This is
        # what undersubscription costs.
        critical_path = per_thread * _RESIDENT_THREADS / thr
        return max(base + setup + imbalance, critical_path) + GPU_KERNEL_LAUNCH_SECONDS

    # -- whole searches ----------------------------------------------------

    def search_time(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        seeds_per_thread: int = 100,
        threads_per_block: int = 128,
        iterator: str = "chase",
        fixed_padding: bool = True,
        shared_memory_state: bool = True,
        num_gpus: int = 1,
    ) -> float:
        """Search-only seconds up to ``distance`` (Algorithm 1 timing)."""
        self._check_mode(mode)
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if seeds_per_thread < 1:
            raise ValueError("seeds per thread must be positive")
        # The paper tunes p for the highest distance searched; lower
        # distances reuse the same launch width.
        top_shell = math.ceil(binomial(self.seed_bits, distance) / num_gpus)
        total_threads = max(1, math.ceil(top_shell / seeds_per_thread))
        total = 0.0
        for shell_distance in range(1, distance + 1):
            shell = binomial(self.seed_bits, shell_distance)
            if mode == "average" and shell_distance == distance:
                shell //= 2
            per_gpu_shell = math.ceil(shell / num_gpus)
            total += self.kernel_time(
                hash_name,
                per_gpu_shell,
                total_threads=total_threads,
                threads_per_block=threads_per_block,
                iterator=iterator,
                fixed_padding=fixed_padding,
                shared_memory_state=shared_memory_state,
            )
        total += GPU_MULTI_SPLIT_SECONDS * (num_gpus - 1)
        if mode == "average":
            total += throughput_for(GPU_EXIT_OVERHEAD_SECONDS, hash_name)
            total += GPU_EXIT_SYNC_SECONDS * (num_gpus - 1)
        return total

    def simulate_search(
        self,
        hash_name: str,
        distance: int,
        mode: str = "exhaustive",
        **kwargs,
    ) -> SearchTiming:
        """Full timing record with seeds, kernel count and energy."""
        seconds = self.search_time(hash_name, distance, mode, **kwargs)
        seeds = (
            exhaustive_seed_count(distance, self.seed_bits)
            if mode == "exhaustive"
            else average_seed_count(distance, self.seed_bits)
        )
        num_gpus = kwargs.get("num_gpus", 1)
        watts = throughput_for(GPU_ACTIVE_WATTS, hash_name) * num_gpus
        return SearchTiming(
            device=self.spec.name if num_gpus == 1 else f"{num_gpus}x{self.spec.name}",
            hash_name=hash_name,
            distance=distance,
            mode=mode,
            seeds_searched=seeds,
            search_seconds=seconds,
            kernels_launched=distance * num_gpus,
            energy_joules=watts * seconds,
            average_watts=watts,
        )
