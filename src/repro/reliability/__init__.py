"""Fault injection and resilience for the RBC serving stack.

Two halves, by design:

* **producing failure** — :class:`FaultSpec` / :class:`FaultPlan` derive
  every stochastic fault choice (message drops, corrupted frames, device
  failure episodes, dead cluster ranks) from one root seed;
  :class:`FaultyTransport` applies the message stream to a link.
* **consuming failure** — :class:`RetryPolicy` bounds the client's
  restart behaviour, :class:`CircuitBreaker` guards the server's search
  backend, and :class:`FailoverSearchService` degrades gracefully to a
  CPU baseline while the fast device is sick.

The chaos harness that wires both halves together lives in
:mod:`repro.reliability.chaos` (imported explicitly — it pulls in the
full serving stack).
"""

from repro.reliability.faults import (
    FaultSpec,
    FaultPlan,
    MessageFaultInjector,
    ScriptedFaultInjector,
    DeviceFaultInjector,
    ClusterFaultInjector,
    ShardFaultInjector,
    VirtualClock,
    MESSAGE_FAULTS,
)
from repro.reliability.retry import (
    RetryPolicy,
    RetryError,
    DeadlineExceeded,
    RetriesExhausted,
)
from repro.reliability.breaker import BreakerState, CircuitBreaker, CircuitOpenError
from repro.reliability.transport import FaultyTransport
from repro.reliability.failover import FailoverSearchService
from repro.reliability.guards import BreakerGuardedEngine, RetryingEngine

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "MessageFaultInjector",
    "ScriptedFaultInjector",
    "DeviceFaultInjector",
    "ClusterFaultInjector",
    "ShardFaultInjector",
    "VirtualClock",
    "MESSAGE_FAULTS",
    "RetryPolicy",
    "RetryError",
    "DeadlineExceeded",
    "RetriesExhausted",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultyTransport",
    "FailoverSearchService",
    "BreakerGuardedEngine",
    "RetryingEngine",
]
