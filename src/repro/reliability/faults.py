"""Deterministic fault planning.

One :class:`FaultPlan` is the single source of randomness for an entire
chaos run: every stochastic choice — which message drops, which byte of
which frame flips, when the simulated device fails, which cluster rank
dies — is drawn from a stream derived from the plan's one root seed via
``numpy.random.SeedSequence``. Two plans built from the same
:class:`FaultSpec` and seed therefore produce *identical* fault
schedules, which is what makes a chaos run a regression test instead of
a dice roll.

Streams are keyed, not spawned, so derivation is order-independent:
``transport_injector(7)`` returns the same injector whether or not
``transport_injector(3)`` was ever requested.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "MessageFaultInjector",
    "ScriptedFaultInjector",
    "DeviceFaultInjector",
    "ClusterFaultInjector",
    "ShardFaultInjector",
    "VirtualClock",
    "MESSAGE_FAULTS",
]

#: Message-level fault kinds, in the order the cumulative draw checks them.
MESSAGE_FAULTS = ("drop", "corrupt", "duplicate", "reorder", "latency-spike")

# Stream keys mixed into the root SeedSequence (never reuse a value).
_STREAM_TRANSPORT = 1
_STREAM_CLIENT = 2
_STREAM_DEVICE = 3
_STREAM_CLUSTER = 4
_STREAM_SHARD = 5


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a failure environment.

    Message-fault rates are mutually exclusive per message (one uniform
    draw decides), so their sum must stay <= 1.
    """

    name: str = "custom"
    # -- link faults (per message) --------------------------------------
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 1.0
    # -- device faults (per search on the primary backend) --------------
    #: Number of failure episodes: contiguous windows of searches during
    #: which the device raises :class:`~repro.devices.flaky.DeviceFailure`.
    device_failure_episodes: int = 0
    device_failure_length: int = 6
    device_slow_rate: float = 0.0
    device_slow_factor: float = 4.0
    # -- cluster faults (per distributed search) ------------------------
    dead_rank_count: int = 0
    straggler_rate: float = 0.0
    straggler_factor: float = 3.0
    # -- directory-shard faults (per shard read/write) ------------------
    #: Probability a shard operation times out (transient; the directory
    #: retries with backoff before failing over to a replica).
    shard_timeout_rate: float = 0.0
    #: Probability a shard operation is slow-but-successful.
    shard_slow_rate: float = 0.0
    shard_slow_seconds: float = 0.05

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{f.name} must be in [0, 1], got {value}")
        if self.message_fault_rate > 1.0:
            raise ValueError("message fault rates must sum to at most 1")
        if self.device_failure_length < 1:
            raise ValueError("device_failure_length must be positive")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def message_fault_rate(self) -> float:
        """Total probability that any given message is faulted."""
        return (
            self.drop_rate
            + self.corrupt_rate
            + self.duplicate_rate
            + self.reorder_rate
            + self.latency_spike_rate
        )


class VirtualClock:
    """A monotonically advancing clock the chaos harness drives.

    The circuit breaker's recovery timer reads it, so breaker state
    transitions happen in *virtual* storm time and stay deterministic.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (never backward)."""
        if seconds < 0:
            raise ValueError("virtual time cannot go backward")
        with self._lock:
            self._now += seconds


class MessageFaultInjector:
    """Per-link fault stream: decides one fault kind (or none) per message."""

    def __init__(self, spec: FaultSpec, rng: np.random.Generator):
        self.spec = spec
        self._rng = rng
        self._lock = threading.Lock()
        #: (message_index, label, fault_kind) for every faulted message.
        self.schedule: list[tuple[int, str, str]] = []
        self.messages_seen = 0

    def next(self, label: str) -> str | None:
        """The fault (if any) to apply to the next message."""
        with self._lock:
            index = self.messages_seen
            self.messages_seen += 1
            draw = self._rng.random()
            threshold = 0.0
            for kind, rate in zip(
                MESSAGE_FAULTS,
                (
                    self.spec.drop_rate,
                    self.spec.corrupt_rate,
                    self.spec.duplicate_rate,
                    self.spec.reorder_rate,
                    self.spec.latency_spike_rate,
                ),
            ):
                threshold += rate
                if draw < threshold:
                    self.schedule.append((index, label, kind))
                    return kind
            return None

    def corrupt(self, payload: bytes) -> bytes:
        """Flip one deterministic-but-random bit of the payload."""
        if not payload:
            return payload
        with self._lock:
            position = int(self._rng.integers(len(payload)))
            bit = 1 << int(self._rng.integers(8))
        corrupted = bytearray(payload)
        corrupted[position] ^= bit
        return bytes(corrupted)


class ScriptedFaultInjector:
    """Test double: replays an explicit fault script instead of drawing.

    ``script`` is a sequence of fault kinds (or ``None``); once it is
    exhausted every further message is clean.
    """

    def __init__(self, script):
        self._script = list(script)
        self.schedule: list[tuple[int, str, str]] = []
        self.messages_seen = 0

    def next(self, label: str) -> str | None:
        index = self.messages_seen
        self.messages_seen += 1
        kind = self._script[index] if index < len(self._script) else None
        if kind is not None:
            self.schedule.append((index, label, kind))
        return kind

    def corrupt(self, payload: bytes) -> bytes:
        corrupted = bytearray(payload)
        corrupted[0] ^= 0x01
        return bytes(corrupted)


class DeviceFaultInjector:
    """Per-search fault stream for a simulated device backend.

    Failure *episodes* are contiguous windows of the device's search
    counter — a sick accelerator stays sick for a while, which is what
    exercises the circuit breaker's open -> half-open -> closed cycle
    (each half-open probe that lands inside the episode re-opens it).
    """

    def __init__(self, spec: FaultSpec, rng: np.random.Generator, horizon: int = 200):
        if horizon < 1:
            raise ValueError("horizon must be positive")
        self.spec = spec
        self._rng = rng
        self._lock = threading.Lock()
        self.calls = 0
        self.episodes: tuple[tuple[int, int], ...] = tuple(
            sorted(
                (start, start + spec.device_failure_length)
                for start in (
                    int(rng.integers(low=2, high=max(3, horizon // 2)))
                    for _ in range(spec.device_failure_episodes)
                )
            )
        )

    def next(self) -> str | None:
        """Fault for the next search: 'fail', 'slow', or None."""
        with self._lock:
            index = self.calls
            self.calls += 1
            if any(lo <= index < hi for lo, hi in self.episodes):
                return "fail"
            if self.spec.device_slow_rate and self._rng.random() < self.spec.device_slow_rate:
                return "slow"
            return None


class ShardFaultInjector:
    """Per-operation fault stream for one enrollment-directory shard.

    Each read/write against the shard draws once: ``"timeout"`` (the
    operation fails with a retryable timeout), ``"slow"`` (it succeeds
    after a modeled delay), or ``None`` (clean). Keyed per shard index,
    so shard 3's schedule is independent of whether shard 1 was ever
    consulted.
    """

    def __init__(self, spec: FaultSpec, rng: np.random.Generator):
        self.spec = spec
        self._rng = rng
        self._lock = threading.Lock()
        self.operations_seen = 0
        #: (operation_index, fault_kind) for every faulted operation.
        self.schedule: list[tuple[int, str]] = []

    def next(self) -> str | None:
        """The fault (if any) to apply to the next shard operation."""
        with self._lock:
            index = self.operations_seen
            self.operations_seen += 1
            draw = self._rng.random()
            threshold = self.spec.shard_timeout_rate
            if draw < threshold:
                self.schedule.append((index, "timeout"))
                return "timeout"
            threshold += self.spec.shard_slow_rate
            if draw < threshold:
                self.schedule.append((index, "slow"))
                return "slow"
            return None


class ClusterFaultInjector:
    """Rank-level faults for one distributed search: deaths and stragglers."""

    def __init__(self, spec: FaultSpec, rng: np.random.Generator, ranks: int):
        if ranks < 1:
            raise ValueError("ranks must be positive")
        # Never kill the whole cluster — recovery needs a survivor.
        dead_count = min(spec.dead_rank_count, ranks - 1)
        dead = rng.choice(ranks, size=dead_count, replace=False) if dead_count else []
        self.dead_ranks: frozenset[int] = frozenset(int(r) for r in dead)
        self._factors = {
            rank: float(spec.straggler_factor)
            for rank in range(ranks)
            if rank not in self.dead_ranks
            and spec.straggler_rate
            and rng.random() < spec.straggler_rate
        }

    @property
    def straggler_ranks(self) -> tuple[int, ...]:
        """Ranks that run but at a slowdown factor."""
        return tuple(sorted(self._factors))

    def straggle_factor(self, rank: int) -> float:
        """Wall-time multiplier for one rank (1.0 if healthy)."""
        return self._factors.get(rank, 1.0)


class FaultPlan:
    """All fault streams for one chaos run, derived from one root seed."""

    def __init__(self, spec: FaultSpec, seed: int):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.spec = spec
        self.seed = int(seed)

    def _rng(self, *key: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, *key))
        )

    def transport_injector(self, index: int) -> MessageFaultInjector:
        """The message-fault stream for client ``index``'s link."""
        return MessageFaultInjector(self.spec, self._rng(_STREAM_TRANSPORT, index))

    def client_rng(self, index: int) -> np.random.Generator:
        """Client-side randomness (retry jitter) for client ``index``."""
        return self._rng(_STREAM_CLIENT, index)

    def device_injector(self, horizon: int = 200) -> DeviceFaultInjector:
        """The device-fault stream for the primary search backend."""
        return DeviceFaultInjector(self.spec, self._rng(_STREAM_DEVICE), horizon)

    def cluster_injector(self, ranks: int) -> ClusterFaultInjector:
        """Rank death/straggler assignment for a ``ranks``-node search."""
        return ClusterFaultInjector(self.spec, self._rng(_STREAM_CLUSTER), ranks)

    def shard_injector(self, index: int) -> ShardFaultInjector:
        """The operation-fault stream for enrollment-directory shard ``index``."""
        return ShardFaultInjector(self.spec, self._rng(_STREAM_SHARD, index))
