"""Circuit breaker guarding a search backend.

Standard three-state machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip it open.
* **open** — requests are refused instantly (:class:`CircuitOpenError`)
  until ``recovery_seconds`` of clock time pass.
* **half-open** — a limited number of probe requests are admitted; one
  success closes the breaker, one failure re-opens it.

The clock is injectable so the chaos harness can run the breaker on the
storm's *virtual* clock — state transitions then happen in deterministic
virtual time and the transition history itself becomes a reproducible,
assertable artifact.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

__all__ = ["BreakerState", "CircuitOpenError", "CircuitBreaker"]

T = TypeVar("T")


class BreakerState:
    """The three breaker states (plain strings, handy in reports)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """Refused without trying: the breaker is open."""

    def __init__(self, retry_at: float):
        super().__init__(f"circuit open; retry after t={retry_at:.2f}s")
        self.retry_at = retry_at


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: (from_state, to_state, at_seconds), in order.
        self.transitions: list[tuple[str, str, float]] = []
        self.calls_allowed = 0
        self.calls_refused = 0
        self.failures_recorded = 0
        self.successes_recorded = 0

    # -- state ----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, refreshing an expired open interval first."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, to_state: str) -> None:
        self.transitions.append((self._state, to_state, self._clock()))
        self._state = to_state

    def _maybe_half_open(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_in_flight = 0

    def transition_names(self) -> tuple[str, ...]:
        """The transition history as 'from->to' strings."""
        with self._lock:
            return tuple(f"{a}->{b}" for a, b, _at in self.transitions)

    # -- request gating --------------------------------------------------

    def allow_request(self) -> bool:
        """Whether a request may proceed right now (counts half-open probes)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BreakerState.CLOSED:
                self.calls_allowed += 1
                return True
            if self._state == BreakerState.HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    self.calls_allowed += 1
                    return True
                self.calls_refused += 1
                return False
            self.calls_refused += 1
            return False

    def record_success(self) -> None:
        """Report a successful backend call."""
        with self._lock:
            self.successes_recorded += 1
            self._consecutive_failures = 0
            if self._state == BreakerState.HALF_OPEN:
                self._transition(BreakerState.CLOSED)
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        """Report a failed backend call."""
        with self._lock:
            self.failures_recorded += 1
            self._consecutive_failures += 1
            if self._state == BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
                self._opened_at = self._clock()
                self._probes_in_flight = 0
            elif (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(BreakerState.OPEN)
                self._opened_at = self._clock()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow_request():
            raise CircuitOpenError(self._opened_at + self.recovery_seconds)
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
