"""Authentication storms under a named fault plan.

This is the integration layer the rest of :mod:`repro.reliability`
exists for: enroll a fleet, put every client behind a
:class:`~repro.reliability.transport.FaultyTransport`, serve them from a
:class:`~repro.net.concurrent.ConcurrentCAServer` whose backend is a
:class:`~repro.reliability.failover.FailoverSearchService` (flaky fast
engine behind a circuit breaker, CPU baseline behind it), and report
what happened as a deterministic
:class:`~repro.analysis.metrics.ResilienceReport`.

Clients run back-to-back on one storm timeline: each client's virtual
link time advances the shared :class:`VirtualClock` that the breaker's
recovery timer reads. That serialization is what makes the whole report
— including the breaker's transition history — a pure function of
(fault spec, seed).

Every authenticated result is *re-verified* against the submitted digest
(`H(found seed) == M1`), so a false authentication cannot hide: the
acceptance bar for every fault plan is ``false_authentications == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.metrics import ResilienceReport, percentile
from repro.core import (
    CertificateAuthority,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.hashes.registry import get_hash
from repro.keygen.interface import get_keygen
from repro.net.client import NetworkClient
from repro.net.concurrent import ConcurrentCAServer
from repro.net.errors import ServerBusy
from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)
from repro.net.transport import US_LINK, InProcessTransport
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.failover import FailoverSearchService
from repro.reliability.faults import FaultPlan, FaultSpec, VirtualClock
from repro.reliability.retry import DeadlineExceeded, RetriesExhausted, RetryPolicy
from repro.reliability.transport import FaultyTransport
from repro.engines import TelemetryHooks, build_engine
from repro.devices.flaky import DeviceFailure, FlakyEngine
from repro.sched.errors import RequestShed

__all__ = [
    "StormConfig",
    "NAMED_PLANS",
    "run_storm",
    "run_named_storm",
    "run_device_loss_storm",
    "run_shard_loss_storm",
]


@dataclass(frozen=True)
class StormConfig:
    """Shape of one authentication storm (independent of the fault spec)."""

    clients: int = 100
    workers: int = 4
    max_queue: int = 64
    #: Serve the storm through the deadline-aware continuous-batching
    #: scheduler instead of the FIFO worker pool. The transport-level
    #: fault plan still applies in full; device-failure episodes do not
    #: (the scheduler owns its device and has no failover behind it).
    scheduler: bool = False
    hash_name: str = "sha1"
    max_distance: int = 1
    noise_target_distance: int = 1
    num_cells: int = 2048
    breaker_failure_threshold: int = 3
    breaker_recovery_seconds: float = 5.0
    retry: RetryPolicy = RetryPolicy(
        max_attempts=6,
        base_backoff_seconds=0.25,
        backoff_multiplier=2.0,
        max_backoff_seconds=2.0,
        jitter_fraction=0.2,
        attempt_deadline_seconds=None,
        deadline_seconds=45.0,
    )

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError("clients must be positive")


#: Named fault plans the CLI and CI smoke runs refer to.
NAMED_PLANS: dict[str, tuple[FaultSpec, StormConfig]] = {
    "clean": (FaultSpec(name="clean"), StormConfig()),
    # The acceptance-criteria plan: a lossy WAN plus one device-failure
    # episode long enough to walk the breaker through open -> half-open
    # (re-open on a sick probe) -> closed.
    "lossy-wan": (
        FaultSpec(
            name="lossy-wan",
            drop_rate=0.20,
            corrupt_rate=0.05,
            duplicate_rate=0.02,
            reorder_rate=0.02,
            latency_spike_rate=0.03,
            latency_spike_seconds=1.0,
            device_failure_episodes=1,
            device_failure_length=6,
        ),
        StormConfig(clients=100),
    ),
    "flaky-device": (
        FaultSpec(
            name="flaky-device",
            device_failure_episodes=2,
            device_failure_length=5,
            device_slow_rate=0.2,
        ),
        StormConfig(clients=60),
    ),
    # Small and fast: CI's deterministic smoke run.
    "smoke": (
        FaultSpec(
            name="smoke",
            drop_rate=0.15,
            corrupt_rate=0.05,
            device_failure_episodes=1,
            device_failure_length=4,
        ),
        StormConfig(clients=12, breaker_recovery_seconds=3.0),
    ),
}


class _VerifyingAuthority:
    """Delegates to a CertificateAuthority, re-verifying every find.

    The chaos harness's tripwire: if the search backend ever claims a
    seed whose digest does not match the submitted ``M1``, that is a
    false authentication and the report must count it.
    """

    def __init__(self, authority: CertificateAuthority):
        self._authority = authority
        self.false_authentications = 0
        self._submitted_digests: dict[str, bytes] = {}

    def __getattr__(self, name):
        return getattr(self._authority, name)

    def record_digest(self, client_id: str, client_digest: bytes) -> None:
        """Remember the M1 a client submitted (scheduler-path tripwire)."""
        self._submitted_digests[client_id] = client_digest

    def run_search(
        self,
        client_id: str,
        client_digest: bytes,
        deadline_seconds: float | None = None,
    ):
        self.record_digest(client_id, client_digest)
        result = self._authority.run_search(
            client_id, client_digest, deadline_seconds=deadline_seconds
        )
        if result.found:
            algo = get_hash(self._authority.hash_name)
            if algo.scalar(result.seed) != client_digest:
                self.false_authentications += 1
        return result

    def issue_public_key(self, client_id: str, found_seed: bytes) -> bytes:
        # The scheduler-backed server bypasses run_search (it feeds the
        # shared work stream directly), so the verification tripwire
        # lives here too: every key issuance re-checks the found seed
        # against the digest the client actually submitted.
        expected = self._submitted_digests.get(client_id)
        if expected is not None:
            algo = get_hash(self._authority.hash_name)
            if algo.scalar(found_seed) != expected:
                self.false_authentications += 1
        return self._authority.issue_public_key(client_id, found_seed)


class _StormFrontend:
    """CAServer-shaped facade over the concurrent server for NetworkClient."""

    def __init__(self, authority, concurrent: ConcurrentCAServer):
        self.authority = authority
        self.concurrent = concurrent

    def handle_handshake(self, request: HandshakeRequest) -> HandshakeResponse:
        challenge = self.authority.issue_challenge(request.client_id)
        return HandshakeResponse(
            client_id=challenge.client_id,
            address=challenge.address,
            window=challenge.window,
            usable_mask=HandshakeResponse.pack_usable(challenge.usable),
            bit_count=challenge.bit_count,
            hash_name=challenge.hash_name,
        )

    def handle_digest(self, submission: DigestSubmission) -> AuthenticationResult:
        record = getattr(self.authority, "record_digest", None)
        if record is not None:
            record(submission.client_id, submission.digest)
        try:
            future = self.concurrent.submit(
                submission.client_id,
                submission.digest,
                deadline_seconds=submission.deadline_seconds,
            )
        except (RuntimeError, RequestShed) as exc:
            raise ServerBusy(str(exc)) from exc
        try:
            return future.result(timeout=300)
        except RequestShed:
            # The scheduler gave up on the request at runtime (deadline
            # or shutdown): a clean, observable rejection.
            return AuthenticationResult(
                client_id=submission.client_id,
                authenticated=False,
                distance=None,
                public_key=None,
                search_seconds=0.0,
                timed_out=True,
            )
        except DeviceFailure:
            # The backend died with no failover in place: report a clean
            # rejection; the client's retry policy decides what's next.
            return AuthenticationResult(
                client_id=submission.client_id,
                authenticated=False,
                distance=None,
                public_key=None,
                search_seconds=0.0,
                timed_out=True,
            )


def _enroll_fleet(spec_seed: int, config: StormConfig):
    """Build a CA with ``config.clients`` enrolled PUF devices."""
    authority = CertificateAuthority(
        search_service=None,  # installed by run_storm
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"chaos-master-key"),
        hash_name=config.hash_name,
    )
    clients = []
    for index in range(config.clients):
        puf = SRAMPuf(
            num_cells=config.num_cells,
            stable_error=0.001,
            seed=spec_seed * 1_000_003 + index,
        )
        mask = enroll_with_masking(
            puf, address=0, window=config.num_cells, reads=48,
            instability_threshold=0.02,
        )
        client_id = f"client-{index:04d}"
        authority.enroll(client_id, mask)
        device = ClientDevice(
            client_id,
            puf,
            noise_target_distance=config.noise_target_distance,
            rng=np.random.default_rng((spec_seed, index)),
        )
        clients.append((client_id, device, mask))
    return authority, clients


def run_storm(
    spec: FaultSpec, seed: int, config: StormConfig | None = None
) -> ResilienceReport:
    """Run one deterministic authentication storm and report on it."""
    config = config if config is not None else StormConfig()
    plan = FaultPlan(spec, seed)
    clock = VirtualClock()

    authority, clients = _enroll_fleet(seed, config)
    device_injector = plan.device_injector(horizon=max(40, config.clients))
    # One telemetry tap across both backends: the report's engine
    # counters cover every batch either engine actually ran.
    telemetry = TelemetryHooks()
    primary = FlakyEngine(
        build_engine(
            "batch", hash_name=config.hash_name, batch_size=16384,
            hooks=telemetry,
        ),
        device_injector,
        name="accelerator",
    )
    fallback = build_engine(
        "batch", hash_name=config.hash_name, batch_size=4096, hooks=telemetry
    )
    breaker = CircuitBreaker(
        failure_threshold=config.breaker_failure_threshold,
        recovery_seconds=config.breaker_recovery_seconds,
        clock=clock.now,
    )
    service = FailoverSearchService(
        primary,
        fallback,
        breaker,
        max_distance=config.max_distance,
    )
    authority.search_service = service
    verifying = _VerifyingAuthority(authority)

    scheduler_engine = None
    if config.scheduler:
        from repro.sched.engine import ScheduledSearchEngine

        scheduler_engine = ScheduledSearchEngine(
            hash_name=config.hash_name,
            batch_size=16384,
            hooks=telemetry,
            max_queue=config.max_queue,
        )

    outcomes: dict[str, int] = {}
    fault_counts: dict[str, int] = {}
    latencies: list[float] = []
    attempts_total = 0
    max_attempts = 0

    with ConcurrentCAServer(
        verifying,
        workers=config.workers,
        max_queue=config.max_queue,
        scheduler=scheduler_engine,
    ) as server:
        frontend = _StormFrontend(verifying, server)
        for index, (client_id, device, mask) in enumerate(clients):
            transport = FaultyTransport(
                InProcessTransport(latency=US_LINK),
                plan.transport_injector(index),
            )
            network_client = NetworkClient(
                device,
                transport,
                reference_mask=mask,
                retry_policy=config.retry,
                rng=plan.client_rng(index),
            )
            try:
                result = network_client.authenticate(frontend)
                outcome = "authenticated" if result.authenticated else "rejected"
            except DeadlineExceeded:
                outcome = "deadline_exceeded"
            except RetriesExhausted:
                outcome = "retries_exhausted"
            except ServerBusy:
                outcome = "server_busy"
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            for _index, _label, kind in transport.fault_log:
                fault_counts[kind] = fault_counts.get(kind, 0) + 1
            latencies.append(transport.elapsed_seconds)
            attempts_total += network_client.last_attempts
            max_attempts = max(max_attempts, network_client.last_attempts)
            # The next client arrives after this one's round completed.
            clock.advance(transport.elapsed_seconds)

    succeeded = outcomes.get("authenticated", 0)
    return ResilienceReport(
        plan=spec.name,
        seed=seed,
        clients=config.clients,
        succeeded=succeeded,
        failed_clean=config.clients - succeeded,
        false_authentications=verifying.false_authentications,
        outcomes=tuple(sorted(outcomes.items())),
        faults_injected=tuple(sorted(fault_counts.items())),
        attempts_total=attempts_total,
        max_attempts_single_client=max_attempts,
        latency_p50=round(percentile(latencies, 50), 6),
        latency_p95=round(percentile(latencies, 95), 6),
        latency_max=round(max(latencies), 6),
        breaker_transitions=breaker.transition_names(),
        primary_searches=service.primary_searches,
        fallback_searches=service.fallback_searches,
        device_failures=primary.failures_injected,
        engine_seeds_hashed=telemetry.seeds_hashed,
        engine_shells_completed=telemetry.shells_completed,
    )


def run_named_storm(
    name: str, seed: int = 0, clients: int | None = None, workers: int | None = None
) -> ResilienceReport:
    """Run one of :data:`NAMED_PLANS`, optionally resizing the fleet."""
    if name not in NAMED_PLANS:
        raise KeyError(
            f"unknown fault plan {name!r}; choices: {sorted(NAMED_PLANS)}"
        )
    spec, config = NAMED_PLANS[name]
    if clients is not None:
        config = replace(config, clients=clients)
    if workers is not None:
        config = replace(config, workers=workers)
    return run_storm(spec, seed, config)


def run_device_loss_storm(*args, **kwargs):
    """Device-loss storm over the multi-device fleet — see :mod:`repro.fleet.storm`.

    A different chaos axis from :data:`NAMED_PLANS` (which stress one
    engine behind a failover stack): here a whole *device* in a
    :class:`~repro.fleet.engine.FleetSearchEngine` is killed mid-run and
    the fleet must re-dispatch its orphaned chunks. Delegates so callers
    have one chaos namespace; deliberately not a named plan because its
    report type differs (:class:`~repro.fleet.storm.DeviceLossStormReport`).
    """
    from repro.fleet.storm import run_device_loss_storm as _run

    return _run(*args, **kwargs)


def run_shard_loss_storm(*args, **kwargs):
    """Shard-loss storm over the enrollment directory — see
    :mod:`repro.directory.storm`.

    A third chaos axis: :data:`NAMED_PLANS` stress the search engine,
    :func:`run_device_loss_storm` kills a compute device, and this one
    kills whole *enrollment shards* — first one (replica failover must
    carry every read), then a full replica set (exactly the doomed keys
    must shed typed, nothing may error or falsely authenticate), then
    both revive (read repair must heal the divergence planted while they
    were dark). Delegates so callers have one chaos namespace; its
    report type is :class:`~repro.directory.storm.ShardLossStormReport`.
    """
    from repro.directory.storm import run_shard_loss_storm as _run

    return _run(*args, **kwargs)
