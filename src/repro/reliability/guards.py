"""Reliability guards as composable engine wrappers.

The retry policy and circuit breaker were born as free-standing
machinery (the client loop drives :class:`RetryPolicy` by hand, the
failover service drives :class:`CircuitBreaker`). These wrappers let the
same machinery compose *around any engine* through the common
:class:`~repro.engines.wrappers.EngineWrapper` surface::

    engine = RetryingEngine(
        BreakerGuardedEngine(build_engine("batch"), breaker),
        policy=RetryPolicy(max_attempts=3),
    )

Geometry (batch size, hash name) still reports from the innermost
engine, so session adapters and capacity planners see through the
guard stack. No guard ever sleeps for real: backoff is charged to an
injectable waiter (the chaos harness passes its virtual clock).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.engines.result import SearchResult
from repro.engines.wrappers import EngineWrapper, describe_engine
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.retry import RetriesExhausted, RetryPolicy

__all__ = ["BreakerGuardedEngine", "RetryingEngine"]


class BreakerGuardedEngine(EngineWrapper):
    """Route every search through a circuit breaker.

    A failing backend trips the breaker after its consecutive-failure
    threshold; while open, searches are refused instantly with
    :class:`~repro.reliability.breaker.CircuitOpenError` instead of
    hammering a dead device.
    """

    wrapper_name = "breaker"

    def __init__(self, inner, breaker: CircuitBreaker | None = None):
        super().__init__(inner)
        self.breaker = breaker if breaker is not None else CircuitBreaker()

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Run the inner search if the breaker admits the request."""
        return self.breaker.call(
            lambda: self.inner.search(
                base_seed, target_digest, max_distance, time_budget=time_budget
            )
        )


class RetryingEngine(EngineWrapper):
    """Retry a failing search under a bounded :class:`RetryPolicy`.

    Backoff between attempts is never slept: it is handed to ``waiter``
    (e.g. a virtual clock's ``advance``) or silently accounted when no
    waiter is given, so tests and the chaos harness stay instant.
    """

    wrapper_name = "retry"

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        waiter: Callable[[float], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(inner)
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng
        self.waiter = waiter
        self._clock = clock
        self.attempts_made = 0
        self.retries_used = 0
        self.backoff_charged_seconds = 0.0

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Attempt the inner search up to ``policy.max_attempts`` times."""
        start = self._clock()
        last_error: Exception | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.attempts_made += 1
            try:
                return self.inner.search(
                    base_seed, target_digest, max_distance,
                    time_budget=time_budget,
                )
            except Exception as exc:  # noqa: BLE001 - any backend fault retries
                last_error = exc
                if attempt == self.policy.max_attempts:
                    break
                self.retries_used += 1
                backoff = self.policy.backoff_seconds(attempt, self.rng)
                self.backoff_charged_seconds += backoff
                if self.waiter is not None:
                    self.waiter(backoff)
        assert last_error is not None
        raise RetriesExhausted(
            self.policy.max_attempts, self._clock() - start, last_error
        )

    def describe(self) -> str:
        return (
            f"retry[{self.policy.max_attempts}]"
            f"({describe_engine(self.inner)})"
        )
