"""Graceful degradation: fast backend behind a breaker, CPU baseline behind it.

:class:`FailoverSearchService` is a drop-in replacement for
:class:`~repro.core.search.RBCSearchService` (same ``find_seed`` /
``max_distance`` / ``time_threshold`` / ``engine`` surface, so the CA,
the concurrent server, and the session layer compose with it unchanged)
— and it is also an :class:`~repro.engines.wrappers.EngineWrapper`, so
it serves the common ``search()`` surface and forwards the geometry of
whichever engine would handle the *next* request. Requests route to the
*primary* engine while its circuit breaker allows them; a backend
failure records into the breaker and the request is served by the
*fallback* engine instead, so the client sees a slower answer, never an
error. While the breaker is open, requests skip the primary entirely;
half-open probes go to the primary again and close the breaker once the
device recovers.
"""

from __future__ import annotations

from repro.core.search import DEFAULT_TIME_THRESHOLD, SearchEngine
from repro.engines.result import SearchResult
from repro.engines.wrappers import EngineWrapper, describe_engine
from repro.reliability.breaker import BreakerState, CircuitBreaker

__all__ = ["FailoverSearchService"]


class FailoverSearchService(EngineWrapper):
    """RBCSearchService-compatible service with breaker-gated failover."""

    wrapper_name = "failover"

    def __init__(
        self,
        primary: SearchEngine,
        fallback: SearchEngine,
        breaker: CircuitBreaker | None = None,
        max_distance: int = 5,
        time_threshold: float = DEFAULT_TIME_THRESHOLD,
    ):
        super().__init__(primary)
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.max_distance = max_distance
        self.time_threshold = time_threshold
        self.primary_searches = 0
        self.fallback_searches = 0

    @property
    def primary(self) -> SearchEngine:
        """The preferred (breaker-guarded) engine."""
        return self.inner

    @property
    def engine(self) -> SearchEngine:
        """The engine a request would use right now (session-layer hook)."""
        if self.breaker.state == BreakerState.OPEN:
            return self.fallback
        return self.primary

    def _geometry_source(self) -> SearchEngine:
        # Dynamic routing: report the geometry of whichever engine would
        # serve the next request, so adapters batch like it will.
        return self.engine

    def describe(self) -> str:
        return (
            f"failover({describe_engine(self.primary)}"
            f" -> {describe_engine(self.fallback)})"
        )

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Breaker-gated routing on the common engine surface."""
        if self.breaker.allow_request():
            try:
                result = self.primary.search(
                    base_seed,
                    target_digest,
                    max_distance=max_distance,
                    time_budget=time_budget,
                )
            except Exception:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
                self.primary_searches += 1
                return result
        self.fallback_searches += 1
        return self.fallback.search(
            base_seed,
            target_digest,
            max_distance=max_distance,
            time_budget=time_budget,
        )

    def find_seed(
        self,
        enrolled_seed: bytes,
        client_digest: bytes,
        deadline_seconds: float | None = None,
    ) -> SearchResult:
        """Search via the primary when healthy, the fallback otherwise.

        As in :class:`~repro.core.search.RBCSearchService`, a client
        deadline tightens (never loosens) the protocol budget.
        """
        if self.max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        budget = self.time_threshold
        if deadline_seconds is not None:
            if deadline_seconds < 0:
                raise ValueError("deadline_seconds must be non-negative")
            budget = min(budget, deadline_seconds)
        return self.search(
            enrolled_seed,
            client_digest,
            max_distance=self.max_distance,
            time_budget=budget,
        )

    def plan_max_distance(self, throughput_hashes_per_second: float) -> int:
        """Largest d tractable under T at the given engine throughput."""
        from repro.core.complexity import tractable_distance

        return tractable_distance(throughput_hashes_per_second, self.time_threshold)
