"""Fault-injecting wrapper over the in-process transport.

``FaultyTransport`` sits between an endpoint and an
:class:`~repro.net.transport.InProcessTransport` and applies the fault
stream of a :class:`~repro.reliability.faults.MessageFaultInjector` to
every message:

* **drop** — the sender waits out the link's timeout (charged to the
  virtual clock) and sees :class:`~repro.net.errors.MessageDropped`;
* **corrupt** — one bit of the delivered frame flips (the CRC framing
  in :mod:`repro.net.messages` turns this into a clean
  :class:`~repro.net.errors.MessageCorrupted` at parse time);
* **duplicate** — the frame is delivered twice, costing double;
* **reorder** — the frame arrives late by half an RTT (hold-back);
* **latency-spike** — a one-off queueing delay.

All costs are charged to the same virtual clock as normal traffic, so
end-to-end latency reports stay honest and deterministic.
"""

from __future__ import annotations

from repro.net.errors import MessageDropped
from repro.net.transport import InProcessTransport
from repro.reliability.faults import MessageFaultInjector

__all__ = ["FaultyTransport"]


class FaultyTransport:
    """An InProcessTransport with an injected failure personality."""

    def __init__(self, inner: InProcessTransport, injector: MessageFaultInjector):
        self.inner = inner
        self.injector = injector
        #: (message_index_on_this_link, label, fault_kind) as applied.
        self.fault_log: list[tuple[int, str, str]] = []
        self.messages_sent = 0

    # -- delegated accounting --------------------------------------------

    @property
    def latency(self):
        return self.inner.latency

    @property
    def elapsed_seconds(self) -> float:
        return self.inner.elapsed_seconds

    @property
    def messages_delivered(self) -> int:
        return self.inner.messages_delivered

    @property
    def bytes_delivered(self) -> int:
        return self.inner.bytes_delivered

    @property
    def log(self):
        return self.inner.log

    def reset(self) -> None:
        """Zero the underlying clock and both logs."""
        self.inner.reset()
        self.fault_log.clear()
        self.messages_sent = 0

    def charge(self, label: str, seconds: float) -> None:
        """Charge arbitrary wait time to the virtual clock."""
        self.inner.charge(label, seconds)

    def charge_puf_read(self) -> None:
        """Account for the client's USB PUF read."""
        self.inner.charge_puf_read()

    # -- faulted delivery -------------------------------------------------

    def deliver(self, label: str, payload: bytes) -> bytes:
        """Deliver one message, applying at most one injected fault."""
        index = self.messages_sent
        self.messages_sent += 1
        fault = self.injector.next(label)
        if fault is not None:
            self.fault_log.append((index, label, fault))

        if fault == "drop":
            waited = self.latency.timeout_seconds
            self.inner.charge(f"{label}:timeout", waited)
            raise MessageDropped(label, waited)
        if fault == "latency-spike":
            spec = getattr(self.injector, "spec", None)
            spike = spec.latency_spike_seconds if spec is not None else 1.0
            self.inner.charge(f"{label}:latency-spike", spike)
        if fault == "reorder":
            # Held back behind newer traffic: arrives half an RTT late.
            self.inner.charge(f"{label}:reorder", self.latency.round_trip_seconds / 2)

        delivered = self.inner.deliver(label, payload)
        if fault == "duplicate":
            self.inner.deliver(f"{label}:duplicate", payload)
        if fault == "corrupt":
            return self.injector.corrupt(delivered)
        return delivered
