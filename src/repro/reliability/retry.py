"""Client-side retry discipline: bounded, backed-off, deadline-aware.

The paper's client "simply resends" the handshake on a timeout. This
module makes that behaviour real *and bounded*: exponential backoff with
jitter between attempts, a per-attempt budget that converts a crawling
round into a retry, and an end-to-end deadline after which the client
stops burning the link and reports a typed error. All waiting is charged
to the transport's virtual clock, never slept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "RetryError", "DeadlineExceeded", "RetriesExhausted"]


class RetryError(Exception):
    """Base class for terminal retry outcomes."""

    def __init__(self, message: str, attempts: int, elapsed_seconds: float):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds


class DeadlineExceeded(RetryError):
    """The end-to-end deadline passed before any attempt succeeded."""


class RetriesExhausted(RetryError):
    """Every allowed attempt failed with a retryable transport error."""

    def __init__(self, attempts: int, elapsed_seconds: float, last_error: Exception):
        super().__init__(
            f"all {attempts} attempts failed (last: {last_error})",
            attempts,
            elapsed_seconds,
        )
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter + deadlines for one authentication."""

    max_attempts: int = 4
    base_backoff_seconds: float = 0.25
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    #: Backoff is scaled by a uniform factor in [1 - j, 1 + j].
    jitter_fraction: float = 0.2
    #: A round whose virtual duration exceeds this counts as a failed
    #: attempt even if it eventually produced a rejection (None = off).
    attempt_deadline_seconds: float | None = None
    #: Hard end-to-end budget across all attempts (None = off).
    deadline_seconds: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def backoff_seconds(
        self, retry_index: int, rng: np.random.Generator | None = None
    ) -> float:
        """Wait before retry number ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        backoff = min(
            self.base_backoff_seconds * self.backoff_multiplier ** (retry_index - 1),
            self.max_backoff_seconds,
        )
        if rng is not None and self.jitter_fraction and backoff:
            backoff *= 1.0 + self.jitter_fraction * (2.0 * float(rng.random()) - 1.0)
        return backoff
