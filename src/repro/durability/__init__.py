"""Crash-consistent durability for the enrollment state.

PR 6 made CTR-nonce safety depend on a per-record re-enrollment version
counter; this package makes that counter (and every enrollment record)
survive ``kill -9``:

* :mod:`repro.durability.wal` — CRC-framed append-only write-ahead log
  with configurable fsync policy and torn-tail-aware scanning;
* :mod:`repro.durability.log` — per-shard :class:`ShardLog`: WAL plus
  atomic encrypted checkpoints, and the recovery pass that loads the
  latest checkpoint, replays the log version-monotonically, truncates a
  torn tail, and refuses mid-log damage with a typed
  :class:`~repro.durability.errors.WalCorrupt`;
* :mod:`repro.durability.store` — :class:`DurableImageStore`, the
  drop-in WAL-backed :class:`~repro.puf.image_db.EncryptedImageDatabase`
  a server recovers from before announcing readiness.

The recovery invariant: the restored version counter for every client
is >= the last durable version, enforced end-to-end by the nonce-reuse
tripwire (:class:`~repro.puf.image_db.NonceReuseError`).
"""

from repro.durability.errors import (
    CheckpointCorrupt,
    DurabilityError,
    WalCorrupt,
)
from repro.durability.log import (
    EnrollRecord,
    RecoveryResult,
    ShardLog,
    replay_into,
)
from repro.durability.store import DurableImageStore
from repro.durability.wal import (
    FsyncPolicy,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "DurabilityError",
    "WalCorrupt",
    "CheckpointCorrupt",
    "FsyncPolicy",
    "WriteAheadLog",
    "WalScan",
    "scan_wal",
    "ShardLog",
    "EnrollRecord",
    "RecoveryResult",
    "replay_into",
    "DurableImageStore",
]
