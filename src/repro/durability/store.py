"""A crash-consistent :class:`~repro.puf.image_db.EncryptedImageDatabase`.

:class:`DurableImageStore` is the drop-in enrollment store for a server
that must survive ``kill -9``: every enrollment is appended to a
per-store write-ahead log *before* it is acknowledged, the log is
compacted into an encrypted checkpoint every ``checkpoint_every``
appends, and construction recovers whatever the directory holds —
checkpoint first, then a version-monotonic WAL replay, then the
nonce-reuse floor so the tripwire in the inner store can prove the
restored counters clear every keystream a durable ciphertext exists
under.

It duck-types the image database's surface (``enroll`` / ``lookup`` /
``version_of`` / ``__contains__`` / ``__len__`` / record import-export),
so it drops into
:class:`~repro.core.authentication.CertificateAuthority.image_db`
unchanged.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.durability.log import RecoveryResult, ShardLog, replay_into
from repro.durability.wal import FsyncPolicy
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.ternary import TernaryMask

__all__ = ["DurableImageStore"]


class DurableImageStore:
    """WAL-backed enrollment store with checkpointed recovery."""

    def __init__(
        self,
        data_dir: str | Path,
        master_key: bytes,
        fsync: FsyncPolicy | str | None = None,
        checkpoint_every: int = 64,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if isinstance(fsync, str):
            fsync = FsyncPolicy.parse(fsync)
        self.checkpoint_every = checkpoint_every
        self._store = EncryptedImageDatabase(master_key)
        self._log = ShardLog(data_dir, fsync=fsync)
        self._lock = threading.Lock()
        self._appends_since_checkpoint = 0
        self.recovery: RecoveryResult = self._recover()

    # -- recovery --------------------------------------------------------

    def _recover(self) -> RecoveryResult:
        started = time.perf_counter()
        result = self._log.recover()
        if result.checkpoint is not None:
            self._store.restore(result.checkpoint)
        result.applied = replay_into(self._store, result.records)
        # Every version the log acknowledged raises the tripwire floor,
        # even if a newer checkpoint superseded the record itself.
        for record in result.records:
            self._store.register_used_version(record.client_id, record.version)
        result.recovery_seconds = time.perf_counter() - started
        return result

    # -- EncryptedImageDatabase surface ----------------------------------

    def enroll(self, client_id: str, mask: TernaryMask) -> None:
        """Enroll, then make it durable; only then return (= acknowledge)."""
        with self._lock:
            self._store.enroll(client_id, mask)
            blob, version = self._store.export_record(client_id)
            self._log.append(client_id, version, blob)
            self._appends_since_checkpoint += 1
            if self._appends_since_checkpoint >= self.checkpoint_every:
                self._checkpoint_locked()

    def lookup(self, client_id: str) -> TernaryMask:
        with self._lock:
            return self._store.lookup(client_id)

    def version_of(self, client_id: str) -> int:
        with self._lock:
            return self._store.version_of(client_id)

    def __contains__(self, client_id: str) -> bool:
        with self._lock:
            return client_id in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def client_ids(self) -> tuple[str, ...]:
        with self._lock:
            return self._store.client_ids()

    def encrypted_record(self, client_id: str) -> bytes:
        with self._lock:
            return self._store.encrypted_record(client_id)

    def export_record(self, client_id: str) -> tuple[bytes, int]:
        with self._lock:
            return self._store.export_record(client_id)

    def import_record(self, client_id: str, blob: bytes, version: int) -> None:
        """Install a replica-transferred record — durably, like enroll."""
        with self._lock:
            self._store.import_record(client_id, blob, version)
            self._log.append(client_id, version, blob)
            self._appends_since_checkpoint += 1
            if self._appends_since_checkpoint >= self.checkpoint_every:
                self._checkpoint_locked()

    @property
    def nonce_reuse_trips(self) -> int:
        return self._store.nonce_reuse_trips

    # -- checkpoint / lifecycle ------------------------------------------

    def checkpoint(self) -> None:
        """Compact the WAL into a fresh encrypted checkpoint now."""
        with self._lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        self._log.checkpoint(self._store.snapshot())
        self._appends_since_checkpoint = 0

    def sync(self) -> None:
        """Force WAL durability regardless of the fsync policy."""
        with self._lock:
            self._log.sync()

    def counters(self) -> dict[str, float]:
        """Durability telemetry for the admin metrics frame."""
        with self._lock:
            counters: dict[str, float] = dict(self._log.counters())
        counters["recovered_records"] = self.recovery.recovered_records
        counters["recovery_seconds"] = self.recovery.recovery_seconds
        counters["torn_bytes_dropped"] = self.recovery.torn_bytes_dropped
        counters["nonce_reuse_trips"] = self.nonce_reuse_trips
        return counters

    def close(self) -> None:
        with self._lock:
            self._log.close()

    def __enter__(self) -> "DurableImageStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
