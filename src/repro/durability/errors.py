"""Typed failures of the durability layer.

Recovery distinguishes two kinds of on-disk damage and refuses to paper
over the dangerous one:

* a **torn tail** — the final record is incomplete because the process
  died mid-append. The record was never acknowledged (acknowledgement
  happens only after the append returns), so truncating it loses
  nothing a client was promised. Recovery truncates and proceeds.
* **mid-log corruption** — a CRC mismatch with valid data *after* it.
  That is not a crash artifact (appends are sequential); it means the
  medium or a tool damaged history that acknowledged writes depend on.
  Recovery refuses with :class:`WalCorrupt` instead of silently serving
  a store missing acknowledged records.
"""

from __future__ import annotations

__all__ = ["DurabilityError", "WalCorrupt", "CheckpointCorrupt"]


class DurabilityError(RuntimeError):
    """Base class for durability-layer failures."""


class WalCorrupt(DurabilityError):
    """The write-ahead log is damaged in a way truncation cannot heal.

    Raised when a record fails its CRC (or structural) check and valid
    records follow it — acknowledged history is missing, so recovery
    must stop rather than reconstruct a store with silent holes.
    """

    def __init__(self, path, offset: int, reason: str):
        super().__init__(
            f"WAL {path} corrupt at byte {offset}: {reason} "
            "(valid records follow; refusing to drop acknowledged writes)"
        )
        self.path = str(path)
        self.offset = offset
        self.reason = reason


class CheckpointCorrupt(DurabilityError):
    """A checkpoint file failed its integrity check."""

    def __init__(self, path, reason: str):
        super().__init__(f"checkpoint {path} corrupt: {reason}")
        self.path = str(path)
        self.reason = reason
