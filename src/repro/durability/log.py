"""Per-shard durable log: WAL + periodic checkpoint, and recovery.

A :class:`ShardLog` owns one directory on disk::

    <dir>/wal.log          append-only enrollment records
    <dir>/checkpoint.snap  latest compaction (still-encrypted snapshot)

Enrollment records carry ``(client_id, version, ciphertext)`` — the
payload is the *encrypted* record straight from
:meth:`~repro.puf.image_db.EncryptedImageDatabase.export_record`, so
nothing the WAL persists is more sensitive than the database file
itself, and a recovered record is byte-identical to the acknowledged
one (the CTR nonce is a pure function of id and version, so the blob is
portable into the restored store).

A checkpoint is the store's encrypted ``snapshot()`` written
atomically (temp file, fsync, rename, directory fsync) and *then* the
WAL is reset — a crash between the rename and the reset replays old
records over the new checkpoint, which the version guard in
:func:`replay_into` makes idempotent.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.durability.errors import CheckpointCorrupt
from repro.durability.wal import (
    FsyncPolicy,
    WAL_HEADER,
    WAL_MAGIC,
    WriteAheadLog,
    scan_wal,
)

__all__ = ["ShardLog", "RecoveryResult", "EnrollRecord", "replay_into"]

_WAL_NAME = "wal.log"
_CHECKPOINT_NAME = "checkpoint.snap"


@dataclass(frozen=True)
class EnrollRecord:
    """One durable enrollment: who, which version, which ciphertext."""

    client_id: str
    version: int
    blob: bytes

    def to_payload(self) -> bytes:
        return json.dumps(
            {
                "client_id": self.client_id,
                "version": self.version,
                "blob": self.blob.hex(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()

    @classmethod
    def from_payload(cls, payload: bytes) -> "EnrollRecord":
        body = json.loads(payload.decode())
        return cls(
            client_id=body["client_id"],
            version=int(body["version"]),
            blob=bytes.fromhex(body["blob"]),
        )


@dataclass
class RecoveryResult:
    """Everything one recovery pass restored and measured."""

    checkpoint: bytes | None
    records: list[EnrollRecord]
    torn_bytes_dropped: int
    wal_bytes: int
    recovery_seconds: float = 0.0
    #: Records actually applied to the store (replay skips records a
    #: newer checkpoint already absorbed).
    applied: int = 0

    @property
    def recovered_records(self) -> int:
        return len(self.records)


def replay_into(store, records: list[EnrollRecord]) -> int:
    """Apply WAL records onto a restored store, version-monotonically.

    A record older than what the store already holds for that client is
    skipped — that is what makes "checkpoint then crash before WAL
    reset" idempotent — so the restored version counter is always the
    maximum the log ever acknowledged.
    """
    applied = 0
    for record in records:
        try:
            current = store.version_of(record.client_id)
        except KeyError:
            current = -1
        if record.version < current:
            continue
        store.import_record(record.client_id, record.blob, record.version)
        applied += 1
    return applied


class ShardLog:
    """One shard's durability: append records, checkpoint, recover."""

    def __init__(
        self,
        directory: str | Path,
        fsync: FsyncPolicy | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync if fsync is not None else FsyncPolicy()
        self.wal_path = self.directory / _WAL_NAME
        self.checkpoint_path = self.directory / _CHECKPOINT_NAME
        self._wal: WriteAheadLog | None = None
        # -- counters --------------------------------------------------
        self.checkpoints = 0
        self.records_appended = 0

    # -- append path -----------------------------------------------------

    def _open_wal(self) -> WriteAheadLog:
        if self._wal is None:
            self._wal = WriteAheadLog(self.wal_path, fsync=self.fsync_policy)
        return self._wal

    def append(self, client_id: str, version: int, blob: bytes) -> None:
        """Make one enrollment durable (per the fsync policy)."""
        record = EnrollRecord(client_id, version, blob)
        self._open_wal().append(record.to_payload())
        self.records_appended += 1

    def sync(self) -> None:
        if self._wal is not None:
            self._wal.sync()

    # -- checkpoint ------------------------------------------------------

    def checkpoint(self, snapshot: bytes) -> None:
        """Atomically persist a snapshot, then reset the WAL.

        The snapshot is CRC-framed exactly like a WAL record so recovery
        can validate it with the same codec, and it reaches its final
        name only through an fsynced rename — a crash at any point
        leaves either the old checkpoint or the new one, never a hybrid.
        """
        frame = (
            WAL_HEADER.pack(WAL_MAGIC, len(snapshot), zlib.crc32(snapshot))
            + snapshot
        )
        tmp_path = self.checkpoint_path.with_suffix(".tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.checkpoint_path)
        self._fsync_directory()
        self._open_wal().reset()
        self.checkpoints += 1

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _read_checkpoint(self) -> bytes | None:
        if not self.checkpoint_path.exists():
            return None
        data = self.checkpoint_path.read_bytes()
        if len(data) < WAL_HEADER.size:
            raise CheckpointCorrupt(self.checkpoint_path, "truncated header")
        magic, length, crc = WAL_HEADER.unpack_from(data)
        if magic != WAL_MAGIC:
            raise CheckpointCorrupt(self.checkpoint_path, "bad magic")
        payload = data[WAL_HEADER.size : WAL_HEADER.size + length]
        if len(payload) != length:
            raise CheckpointCorrupt(self.checkpoint_path, "truncated payload")
        if zlib.crc32(payload) != crc:
            raise CheckpointCorrupt(
                self.checkpoint_path, "failed its CRC-32 check"
            )
        return payload

    # -- recovery --------------------------------------------------------

    def recover(self) -> RecoveryResult:
        """Scan checkpoint + WAL; truncate a torn tail in place.

        Raises :class:`~repro.durability.errors.WalCorrupt` /
        :class:`~repro.durability.errors.CheckpointCorrupt` on mid-log
        or checkpoint damage. Call *before* the first :meth:`append`.
        """
        checkpoint = self._read_checkpoint()
        scan = scan_wal(self.wal_path)
        if scan.tail_was_torn:
            # Drop the unacknowledged torn append so the next write
            # starts on a clean frame boundary.
            with WriteAheadLog(self.wal_path, fsync=self.fsync_policy) as wal:
                wal.truncate_to(scan.valid_bytes)
                wal.sync()
        records = [EnrollRecord.from_payload(raw) for raw in scan.records]
        return RecoveryResult(
            checkpoint=checkpoint,
            records=records,
            torn_bytes_dropped=scan.torn_bytes,
            wal_bytes=scan.valid_bytes,
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def wal_appends(self) -> int:
        return self._wal.appends if self._wal is not None else 0

    @property
    def wal_fsyncs(self) -> int:
        return self._wal.fsyncs if self._wal is not None else 0

    @property
    def wal_size_bytes(self) -> int:
        return self._wal.size_bytes if self._wal is not None else 0

    def counters(self) -> dict[str, int]:
        return {
            "wal_appends": self.wal_appends,
            "wal_fsyncs": self.wal_fsyncs,
            "wal_size_bytes": self.wal_size_bytes,
            "checkpoints": self.checkpoints,
            "records_appended": self.records_appended,
        }

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "ShardLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
