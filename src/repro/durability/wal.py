"""CRC-framed, append-only write-ahead log.

One record on disk is::

    [u16 magic][u32 payload-length][u32 crc32(payload)][payload]

An append writes header+payload with a single ``write`` call, flushes,
and fsyncs per the configured :class:`FsyncPolicy` — only then does the
caller acknowledge the write to its client. A crash therefore leaves at
most one *torn* record at the tail (a prefix of the final append), and
recovery can truncate it without losing anything that was promised.

The scan rules are deliberately asymmetric about where damage sits:

* incomplete header or incomplete payload at the tail → torn tail,
  truncate and recover (the append was never acknowledged);
* a CRC mismatch on the *final* complete record → treated as torn
  (power loss can persist a garbled final sector), truncate;
* a CRC or magic failure with valid bytes *after* it → the log's middle
  is damaged, acknowledged history is gone — refuse with
  :class:`~repro.durability.errors.WalCorrupt` rather than serve a
  store with silent holes.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.durability.errors import WalCorrupt

__all__ = [
    "FsyncPolicy",
    "WriteAheadLog",
    "WalScan",
    "scan_wal",
    "WAL_HEADER",
    "WAL_MAGIC",
    "MAX_WAL_RECORD_BYTES",
]

#: ``>H`` magic + ``>I`` payload length + ``>I`` CRC-32 of the payload.
WAL_HEADER = struct.Struct(">HII")
WAL_MAGIC = 0x5741  # "WA"

#: Upper bound on one record's payload. Enrollment records are a few KiB
#: at the paper's window sizes; a corrupt length field must not turn
#: into a gigantic allocation during recovery.
MAX_WAL_RECORD_BYTES = 1 << 24


@dataclass(frozen=True)
class FsyncPolicy:
    """When an append becomes *durable* (fsync) rather than just written.

    * ``always`` — fsync before every acknowledgement. Crash-safe for
      every acknowledged write; the slow, honest default.
    * ``interval`` — fsync at most once per ``interval_seconds``
      (opportunistically, on the append path). Bounded data loss on
      power failure, near-lossless on plain process crash (the page
      cache survives a SIGKILL), and much cheaper.
    * ``none`` — never fsync; the OS flushes when it pleases. The lossy
      baseline the recovery bench contrasts against.
    """

    mode: str = "always"
    interval_seconds: float = 0.05

    _MODES = ("always", "interval", "none")

    def __post_init__(self):
        if self.mode not in self._MODES:
            raise ValueError(
                f"fsync mode must be one of {self._MODES}, got {self.mode!r}"
            )
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")

    @classmethod
    def parse(cls, token: str) -> "FsyncPolicy":
        """``"always"`` / ``"none"`` / ``"interval"`` / ``"interval:0.2"``."""
        if ":" in token:
            mode, _, arg = token.partition(":")
            return cls(mode=mode, interval_seconds=float(arg))
        return cls(mode=token)

    def describe(self) -> str:
        if self.mode == "interval":
            return f"interval:{self.interval_seconds:g}"
        return self.mode


def encode_wal_record(payload: bytes) -> bytes:
    """Frame one payload for the log."""
    if not payload:
        raise ValueError("cannot log an empty payload")
    if len(payload) > MAX_WAL_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(payload)} bytes exceeds "
            f"{MAX_WAL_RECORD_BYTES}"
        )
    return (
        WAL_HEADER.pack(WAL_MAGIC, len(payload), zlib.crc32(payload)) + payload
    )


@dataclass
class WalScan:
    """What a recovery scan found in one log file."""

    records: list[bytes]
    #: Byte offset where valid data ends (start of any torn tail).
    valid_bytes: int
    #: Bytes past ``valid_bytes`` that belong to a torn final append.
    torn_bytes: int

    @property
    def tail_was_torn(self) -> bool:
        return self.torn_bytes > 0


def scan_wal(path: str | Path) -> WalScan:
    """Scan a log, separating valid records from a torn tail.

    Raises :class:`~repro.durability.errors.WalCorrupt` on mid-log
    damage (see the module docstring for the exact discrimination).
    """
    path = Path(path)
    data = path.read_bytes() if path.exists() else b""
    size = len(data)
    records: list[bytes] = []
    offset = 0
    while offset < size:
        remaining = size - offset
        if remaining < WAL_HEADER.size:
            # A torn header: the append died before the header landed.
            return WalScan(records, offset, remaining)
        magic, length, crc = WAL_HEADER.unpack_from(data, offset)
        if magic != WAL_MAGIC:
            raise WalCorrupt(path, offset, f"bad record magic 0x{magic:04x}")
        if length == 0 or length > MAX_WAL_RECORD_BYTES:
            raise WalCorrupt(path, offset, f"implausible record length {length}")
        end = offset + WAL_HEADER.size + length
        if end > size:
            # A torn payload: header landed, payload did not finish.
            return WalScan(records, offset, remaining)
        payload = data[offset + WAL_HEADER.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                # The final record is complete but fails its CRC: power
                # loss can garble the last sector it was writing. It was
                # never acknowledged under fsync=always, so drop it.
                return WalScan(records, offset, remaining)
            raise WalCorrupt(path, offset, "record failed its CRC-32 check")
        records.append(payload)
        offset = end
    return WalScan(records, offset, 0)


class WriteAheadLog:
    """One append-only log file with explicit durability accounting."""

    def __init__(
        self,
        path: str | Path,
        fsync: FsyncPolicy | None = None,
        clock=time.monotonic,
    ):
        self.path = Path(path)
        self.fsync_policy = fsync if fsync is not None else FsyncPolicy()
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._last_fsync = self._clock()
        # -- counters --------------------------------------------------
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.unsynced_appends = 0

    def append(self, payload: bytes) -> int:
        """Frame, write, flush, and (per policy) fsync one record.

        Returns the byte offset the record starts at. Only after this
        method returns may the caller acknowledge the write.
        """
        frame = encode_wal_record(payload)
        offset = self._handle.tell()
        self._handle.write(frame)
        self._handle.flush()
        self.appends += 1
        self.bytes_written += len(frame)
        self.unsynced_appends += 1
        policy = self.fsync_policy
        if policy.mode == "always":
            self._fsync()
        elif (
            policy.mode == "interval"
            and self._clock() - self._last_fsync >= policy.interval_seconds
        ):
            self._fsync()
        return offset

    def _fsync(self) -> None:
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        self.unsynced_appends = 0
        self._last_fsync = self._clock()

    def sync(self) -> None:
        """Force durability now, regardless of policy."""
        self._handle.flush()
        self._fsync()

    def truncate_to(self, offset: int) -> None:
        """Cut the file at ``offset`` (recovery drops a torn tail)."""
        self._handle.flush()
        self._handle.truncate(offset)
        self._handle.seek(0, os.SEEK_END)

    def reset(self) -> None:
        """Empty the log (a checkpoint just absorbed its records)."""
        self.truncate_to(0)
        self._fsync()

    @property
    def size_bytes(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
