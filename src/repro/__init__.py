"""repro — reproduction of *Evaluating Accelerators for a High-Throughput
Hash-Based Security Protocol* (Lee et al., ICPP-W 2023).

The package implements RBC-SALTED — the hash-search optimization of
Response-Based Cryptography — together with every substrate the paper's
evaluation depends on: from-scratch scalar and batched SHA-1/SHA-256/SHA-3,
four combination generators, a statistical PUF with TAPKI masking, AES /
ChaCha20 / SPECK / toy-LWE key generation, calibrated CPU/GPU/APU device
simulators, a real multiprocessing search runtime, and the client<->CA
network protocol.

Quickstart::

    import numpy as np
    from repro import quick_setup

    ca, client, mask = quick_setup(seed=7)
    from repro.core import RBCSaltedProtocol
    outcome = RBCSaltedProtocol(ca).authenticate(client, reference_mask=mask)
    assert outcome.authenticated

See ``examples/`` for full scenarios and ``benchmarks/`` for the per-table
reproduction harness.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro._bitutils import SEED_BITS, SEED_BYTES
from repro.core import (
    RBCSaltedProtocol,
    RBCSearchService,
    CertificateAuthority,
    RegistrationAuthority,
    DEFAULT_TIME_THRESHOLD,
)
from repro.engines import build_engine
from repro.runtime import BatchSearchExecutor, ParallelSearchExecutor

__all__ = [
    "__version__",
    "SEED_BITS",
    "SEED_BYTES",
    "RBCSaltedProtocol",
    "RBCSearchService",
    "CertificateAuthority",
    "RegistrationAuthority",
    "DEFAULT_TIME_THRESHOLD",
    "BatchSearchExecutor",
    "ParallelSearchExecutor",
    "build_engine",
    "quick_setup",
]


def quick_setup(
    seed: int = 0,
    hash_name: str = "sha3-256",
    max_distance: int = 2,
    keygen_name: str = "aes-128",
    noise_target_distance: int | None = 2,
    num_cells: int = 2048,
):
    """Build a ready-to-run CA + enrolled client for experimentation.

    Returns ``(certificate_authority, client_device, ternary_mask)``.
    Small defaults (d <= 2) keep a pure-Python search interactive; raise
    ``max_distance`` if you have the patience (d=3 is ~2.8M hashes).
    """
    import numpy as np

    from repro.core.protocol import ClientDevice
    from repro.core.salting import HashChainSalt
    from repro.keygen.interface import get_keygen
    from repro.puf.image_db import EncryptedImageDatabase
    from repro.puf.model import SRAMPuf
    from repro.puf.ternary import enroll_with_masking

    puf = SRAMPuf(num_cells=num_cells, stable_error=0.001, seed=seed)
    mask = enroll_with_masking(
        puf, address=0, window=num_cells, reads=64, instability_threshold=0.02
    )
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            build_engine("batch", hash_name=hash_name, batch_size=16384),
            max_distance=max_distance,
        ),
        salt=HashChainSalt(),
        keygen=get_keygen(keygen_name),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"repro-master-k!!"),
        hash_name=hash_name,
    )
    authority.enroll("client-0", mask)
    client = ClientDevice(
        "client-0",
        puf,
        noise_target_distance=noise_target_distance,
        rng=np.random.default_rng(seed + 1),
    )
    return authority, client, mask
