"""Engine registry and factory: every engine constructible by name.

The stack grew seven-plus engine classes that were constructed ad hoc
with magic batch sizes at dozens of call sites. This module is the one
construction path:

* :func:`register_engine` — decorator that records a factory under a
  short name together with its parameter schema (derived from the
  factory signature) and option aliases (``bs`` -> ``batch_size``);
* :class:`EngineConfig` — a parsed engine spec;
* :func:`build_engine` — turn a spec string, config, or name plus
  keyword overrides into a live engine.

Spec grammar::

    name[:arg,...][,key=value,...]

    "batch"                        -> BatchSearchExecutor, defaults
    "batch:sha3-256,bs=16384"      -> positional hash, aliased option
    "parallel:sha1,workers=4"      -> full option names work too
    "cluster:4,hash=sha1,bs=4096"  -> ranks first, like the constructor

Dotted specs bypass the registry and name a factory directly::

    "repro.runtime.executor.BatchSearchExecutor:sha1,bs=4096"

Values are coerced to the type of the factory parameter's default
(int / float / bool / str); parameters without a usable default fall
back to literal guessing (int, then float, then str).

Built-in engines live in :mod:`repro.engines.builtin`; the module is
imported lazily on first use so the registry itself stays import-light
and free of cycles with :mod:`repro.runtime`.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engines.result import SearchEngine

__all__ = [
    "EngineConfig",
    "EngineEntry",
    "register_engine",
    "build_engine",
    "engine_names",
    "engine_entries",
    "get_entry",
]

#: Option aliases every engine accepts, merged with per-engine aliases.
_COMMON_ALIASES = {
    "bs": "batch_size",
    "hash": "hash_name",
    "it": "iterator",
    "kg": "keygen_name",
}

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class EngineConfig:
    """A parsed engine spec: name, positional args, keyword options."""

    name: str
    args: tuple[str, ...] = ()
    options: tuple[tuple[str, str], ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "EngineConfig":
        """Parse ``name[:arg,...][,key=value,...]`` into a config."""
        spec = spec.strip()
        if not spec:
            raise ValueError("empty engine spec")
        name, _, rest = spec.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"engine spec {spec!r} has no engine name")
        args: list[str] = []
        options: list[tuple[str, str]] = []
        for token in filter(None, (t.strip() for t in rest.split(","))):
            key, eq, value = token.partition("=")
            if eq:
                options.append((key.strip(), value.strip()))
            elif options:
                raise ValueError(
                    f"positional value {token!r} after keyword options "
                    f"in spec {spec!r}"
                )
            else:
                args.append(token)
        return cls(name=name, args=tuple(args), options=tuple(options))

    def spec_string(self) -> str:
        """Render back to the canonical spec string."""
        parts = list(self.args) + [f"{k}={v}" for k, v in self.options]
        return self.name if not parts else f"{self.name}:{','.join(parts)}"


@dataclass(frozen=True)
class EngineEntry:
    """One registry row: factory plus its introspected config schema."""

    name: str
    factory: Callable[..., SearchEngine]
    description: str
    aliases: tuple[tuple[str, str], ...] = ()
    #: (param, default_repr, type_name) rows, in signature order.
    schema: tuple[tuple[str, str, str], ...] = field(default=())

    def alias_map(self) -> dict[str, str]:
        merged = dict(_COMMON_ALIASES)
        merged.update(self.aliases)
        return merged


_REGISTRY: dict[str, EngineEntry] = {}
_builtins_loaded = False


def _signature_of(factory: Callable[..., Any]) -> inspect.Signature:
    target = factory.__init__ if inspect.isclass(factory) else factory
    signature = inspect.signature(target)
    if inspect.isclass(factory):
        parameters = [
            p for name, p in signature.parameters.items() if name != "self"
        ]
        signature = signature.replace(parameters=parameters)
    return signature


def _schema_rows(signature: inspect.Signature) -> tuple[tuple[str, str, str], ...]:
    rows = []
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            default_repr, type_name = "<required>", "?"
        else:
            default_repr = repr(parameter.default)
            type_name = (
                type(parameter.default).__name__
                if parameter.default is not None
                else "?"
            )
        rows.append((parameter.name, default_repr, type_name))
    return tuple(rows)


def register_engine(
    name: str,
    *,
    description: str,
    aliases: dict[str, str] | None = None,
) -> Callable[[Callable[..., SearchEngine]], Callable[..., SearchEngine]]:
    """Decorator: record ``factory`` under ``name`` in the registry."""

    def _register(factory: Callable[..., SearchEngine]) -> Callable[..., SearchEngine]:
        if name in _REGISTRY:
            raise ValueError(f"engine {name!r} is already registered")
        signature = _signature_of(factory)
        _REGISTRY[name] = EngineEntry(
            name=name,
            factory=factory,
            description=description,
            aliases=tuple(sorted((aliases or {}).items())),
            schema=_schema_rows(signature),
        )
        return factory

    return _register


def _ensure_builtins() -> None:
    """Load the built-in registrations exactly once, lazily.

    Lazy so that ``repro.runtime`` modules can import this module at
    module scope without creating an import cycle (the builtin module
    imports the runtime engines).
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        importlib.import_module("repro.engines.builtin")


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def engine_entries() -> tuple[EngineEntry, ...]:
    """Every registry row, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_entry(name: str) -> EngineEntry:
    """The registry row for ``name`` (raises ``KeyError`` with choices)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _coerce(value: str, default: Any) -> Any:
    """Coerce a spec-string value to the type of the parameter default."""
    if isinstance(default, bool):
        lowered = value.lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS:
            return False
        raise ValueError(f"expected a boolean, got {value!r}")
    if isinstance(default, int):
        return int(value)
    if isinstance(default, float):
        return float(value)
    if isinstance(default, str) or default is None:
        if default is None:
            for caster in (int, float):
                try:
                    return caster(value)
                except ValueError:
                    continue
        return value
    return value


def _dotted_factory(name: str) -> Callable[..., SearchEngine]:
    """Resolve ``pkg.module.Attribute`` to a callable factory."""
    module_name, _, attribute = name.rpartition(".")
    if not module_name:
        raise ValueError(f"dotted engine spec {name!r} has no module part")
    module = importlib.import_module(module_name)
    factory = getattr(module, attribute)
    if not callable(factory):
        raise TypeError(f"dotted engine spec {name!r} is not callable")
    return factory


def _bind_config(
    config: EngineConfig,
    factory: Callable[..., SearchEngine],
    alias_map: dict[str, str],
    overrides: dict[str, Any],
) -> SearchEngine:
    signature = _signature_of(factory)
    parameters = [
        p
        for p in signature.parameters.values()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.KEYWORD_ONLY,
        )
    ]
    var_positional = next(
        (
            p
            for p in signature.parameters.values()
            if p.kind == inspect.Parameter.VAR_POSITIONAL
        ),
        None,
    )
    kwargs: dict[str, Any] = {}

    positional = [
        p for p in parameters if p.kind != inspect.Parameter.KEYWORD_ONLY
    ]
    varargs: tuple[str, ...] = ()
    if len(config.args) > len(positional):
        if var_positional is None:
            raise ValueError(
                f"engine {config.name!r} takes at most {len(positional)} "
                f"positional values, got {len(config.args)}"
            )
        # Factories with a *args parameter (e.g. ``fleet:gpu,flaky-apu``)
        # receive the overflow as raw strings; such factories should make
        # every other parameter keyword-only.
        varargs = config.args[len(positional) :]
    for parameter, value in zip(positional, config.args):
        kwargs[parameter.name] = _coerce(value, parameter.default)

    by_name = {p.name: p for p in parameters}
    for key, value in config.options:
        canonical = alias_map.get(key, key)
        if canonical not in by_name:
            raise ValueError(
                f"engine {config.name!r} has no option {key!r}; "
                f"known: {', '.join(sorted(by_name))}"
            )
        if canonical in kwargs:
            raise ValueError(
                f"option {canonical!r} given twice in spec for {config.name!r}"
            )
        kwargs[canonical] = _coerce(value, by_name[canonical].default)

    for key, value in overrides.items():
        canonical = alias_map.get(key, key)
        if canonical not in by_name:
            raise ValueError(
                f"engine {config.name!r} has no option {key!r}; "
                f"known: {', '.join(sorted(by_name))}"
            )
        kwargs[canonical] = value
    if varargs:
        return factory(*varargs, **kwargs)
    return factory(**kwargs)


def build_engine(spec: str | EngineConfig, **overrides: Any) -> SearchEngine:
    """Construct an engine from a spec string, config, or name.

    ``overrides`` are applied after the spec's own options and accept
    the same aliases, so call sites can say
    ``build_engine("batch", hash_name=name, batch_size=4096)``.
    """
    config = EngineConfig.parse(spec) if isinstance(spec, str) else spec
    if "." in config.name:
        factory = _dotted_factory(config.name)
        alias_map = dict(_COMMON_ALIASES)
    else:
        entry = get_entry(config.name)
        factory = entry.factory
        alias_map = entry.alias_map()
    return _bind_config(config, factory, alias_map, overrides)
