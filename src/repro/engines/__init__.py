"""Unified search-engine stack: registry, wrappers, one result type.

Every way this repo can run Algorithm 1 — single-process vectorized
batch search, multiprocessing, the in-process MPI-style cluster, the
original-RBC cipher baseline, and the device-model-backed accelerator
engines — is reachable through one front door::

    from repro.engines import build_engine

    engine = build_engine("batch:sha3-256,bs=16384")
    result = engine.search(base_seed, target, max_distance=3)

Specs follow ``name[:arg,...][,key=value,...]`` with short aliases
(``bs`` → ``batch_size``, ``hash`` → ``hash_name``), or a dotted path
to any callable returning an engine. Wrappers (:class:`EngineWrapper`
subclasses — fault injection, failover, retry, circuit breaking, nonce
binding) compose around any engine while forwarding its search
geometry, and every engine returns the same instrumented
:class:`SearchResult`.

This module is intentionally cheap to import: the built-in engines are
registered lazily on first registry use.
"""

from __future__ import annotations

from repro.engines.hooks import EngineHooks, NullHooks, TelemetryHooks
from repro.engines.registry import (
    EngineConfig,
    EngineEntry,
    build_engine,
    engine_entries,
    engine_names,
    get_entry,
    register_engine,
)
from repro.engines.result import (
    AmortizationStats,
    ClusterStats,
    DirectoryStats,
    FleetStats,
    SchedulingStats,
    SearchEngine,
    SearchResult,
    ShellStats,
    merge_shells,
)
from repro.engines.wrappers import DEFAULT_BATCH_SIZE, EngineWrapper, describe_engine

__all__ = [
    "EngineConfig",
    "EngineEntry",
    "register_engine",
    "build_engine",
    "engine_names",
    "engine_entries",
    "get_entry",
    "SearchResult",
    "ShellStats",
    "AmortizationStats",
    "ClusterStats",
    "SchedulingStats",
    "FleetStats",
    "DirectoryStats",
    "SearchEngine",
    "merge_shells",
    "EngineHooks",
    "NullHooks",
    "TelemetryHooks",
    "EngineWrapper",
    "DEFAULT_BATCH_SIZE",
    "describe_engine",
    "engine_target",
]


def engine_target(engine: object, seed: bytes) -> bytes:
    """The public value ``engine`` searches for, given the true ``seed``.

    Hash engines (SALTED) respond with a digest of the seed; the
    original-RBC baseline responds with a cipher output keyed by the
    seed. This helper computes the right target for either family (and
    unwraps composed wrappers first), so callers — the CLI, the
    equivalence tests — can treat every registered engine uniformly.
    """
    base = engine.unwrap() if isinstance(engine, EngineWrapper) else engine
    response_batch = getattr(base, "response_batch", None)
    if response_batch is not None:
        from repro._bitutils import seed_to_words

        return bytes(response_batch(seed_to_words(seed)[None, :])[0].tobytes())
    algo = getattr(base, "algo", None)
    if algo is not None:
        return algo.hash_seed(seed)
    from repro.hashes.registry import get_hash

    hash_name = getattr(base, "hash_name", "sha3-256")
    return get_hash(hash_name).hash_seed(seed)
