"""Composable engine wrappers: geometry and identity forwarded once.

Before this module existed every wrapper hand-copied geometry off the
engine it wrapped (``getattr(inner, "batch_size", 4096)`` appeared in
the fault injector *and* the session layer). :class:`EngineWrapper`
centralizes that: geometry (``batch_size``, ``iterator``,
``fixed_padding``) and identity (``hash_name``, ``describe()``) are
forwarded properties, so wrappers nest arbitrarily — a nonce-binding
adapter around a flaky engine around a batch executor still reports the
innermost engine's geometry.
"""

from __future__ import annotations

from typing import Any

from repro.engines.result import SearchEngine, SearchResult

__all__ = ["DEFAULT_BATCH_SIZE", "EngineWrapper", "describe_engine"]

#: The one fallback batch size, for inner engines that expose none.
DEFAULT_BATCH_SIZE = 4096


def describe_engine(engine: Any) -> str:
    """Best-effort one-line identity of any engine-shaped object."""
    describe = getattr(engine, "describe", None)
    if callable(describe):
        return str(describe())
    return type(engine).__name__


class EngineWrapper:
    """Base for engines that wrap another engine.

    Subclasses override :meth:`search` (and usually call
    ``self.inner.search``); geometry and identity come along for free.
    A subclass whose routing is dynamic (e.g. failover) overrides
    :meth:`_geometry_source` to point at whichever engine would serve
    the next request.
    """

    #: Short name used in ``describe()``; subclasses override.
    wrapper_name = "wrapper"

    def __init__(self, inner: SearchEngine):
        self.inner = inner

    # -- forwarded geometry and identity -------------------------------

    def _geometry_source(self) -> SearchEngine:
        """The engine whose geometry this wrapper reports."""
        return self.inner

    @property
    def batch_size(self) -> int:
        """The wrapped engine's kernel batch size (lane width)."""
        return int(
            getattr(self._geometry_source(), "batch_size", DEFAULT_BATCH_SIZE)
        )

    @property
    def hash_name(self) -> str | None:
        """The wrapped engine's hash algorithm, when it has one."""
        return getattr(self._geometry_source(), "hash_name", None)

    @property
    def iterator(self) -> str | None:
        """The wrapped engine's combination source, when it has one."""
        return getattr(self._geometry_source(), "iterator", None)

    @property
    def fixed_padding(self) -> bool | None:
        """The wrapped engine's padding mode, when it has one."""
        return getattr(self._geometry_source(), "fixed_padding", None)

    def unwrap(self) -> SearchEngine:
        """The innermost wrapped engine."""
        engine: Any = self.inner
        while isinstance(engine, EngineWrapper):
            engine = engine.inner
        return engine

    def describe(self) -> str:
        """``wrapper(inner)`` chain, e.g. ``flaky(batch:sha1,bs=4096)``."""
        return f"{self.wrapper_name}({describe_engine(self.inner)})"

    # -- forwarded behaviour -------------------------------------------

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Delegate to the wrapped engine (subclasses decorate this)."""
        return self.inner.search(
            base_seed, target_digest, max_distance, time_budget=time_budget
        )

    def throughput_probe(self, *args: Any, **kwargs: Any) -> float:
        """Delegate to the wrapped engine's probe, when it has one."""
        probe = getattr(self._geometry_source(), "throughput_probe", None)
        if probe is None:
            raise AttributeError(
                f"{describe_engine(self)} wraps an engine with no "
                "throughput_probe"
            )
        return float(probe(*args, **kwargs))
