"""Built-in engine registrations — the registry's one construction site.

Imported lazily by :mod:`repro.engines.registry` on first use. This is
deliberately the only module in ``src/repro`` outside the engines'
own implementations that constructs engine classes directly; everything
else goes through :func:`repro.engines.build_engine`.
"""

from __future__ import annotations

from repro.engines.hooks import EngineHooks
from repro.engines.modeled import ModeledDeviceEngine
from repro.engines.registry import register_engine
from repro.runtime.cluster import ClusterSearchExecutor, Interconnect
from repro.runtime.executor import BatchSearchExecutor
from repro.runtime.original_batch import BatchOriginalRBCSearch
from repro.runtime.parallel import ParallelSearchExecutor
from repro.runtime.pool import PooledSearchExecutor
from repro.fleet.engine import FleetSearchEngine
from repro.sched.engine import ScheduledSearchEngine

__all__: list[str] = []


@register_engine(
    "batch",
    description="Single-process vectorized SALTED search (NumPy lanes)",
)
def _build_batch(
    hash_name: str = "sha3-256",
    batch_size: int = 16384,
    iterator: str = "unrank",
    fixed_padding: bool = True,
    hooks: EngineHooks | None = None,
    cache: bool = False,
    warm: int = 0,
) -> BatchSearchExecutor:
    return BatchSearchExecutor(
        hash_name=hash_name,
        batch_size=batch_size,
        iterator=iterator,
        fixed_padding=fixed_padding,
        hooks=hooks,
        cache=cache,
        warm=warm,
    )


@register_engine(
    "parallel",
    description="Multiprocessing SALTED search with a shared early-exit flag",
    aliases={"w": "workers"},
)
def _build_parallel(
    hash_name: str = "sha3-256",
    workers: int | None = None,
    batch_size: int = 8192,
    iterator: str = "unrank",
    fixed_padding: bool = True,
    hooks: EngineHooks | None = None,
) -> ParallelSearchExecutor:
    return ParallelSearchExecutor(
        hash_name=hash_name,
        workers=workers,
        batch_size=batch_size,
        iterator=iterator,
        fixed_padding=fixed_padding,
        hooks=hooks,
    )


@register_engine(
    "pool",
    description="Warm persistent-pool SALTED search with shared mask plans",
    aliases={"w": "workers"},
)
def _build_pool(
    hash_name: str = "sha3-256",
    workers: int | None = None,
    batch_size: int = 16384,
    iterator: str = "unrank",
    fixed_padding: bool = True,
    hooks: EngineHooks | None = None,
    cache: bool = True,
    warm: int = 0,
) -> PooledSearchExecutor:
    return PooledSearchExecutor(
        hash_name=hash_name,
        workers=workers,
        batch_size=batch_size,
        iterator=iterator,
        fixed_padding=fixed_padding,
        hooks=hooks,
        cache=cache,
        warm=warm,
    )


@register_engine(
    "sched",
    description="Deadline-aware continuous-batching scheduler over the vectorized kernel",
)
def _build_sched(
    hash_name: str = "sha3-256",
    batch_size: int = 16384,
    iterator: str = "unrank",
    fixed_padding: bool = True,
    hooks: EngineHooks | None = None,
    cache: bool = True,
    warm: int = 0,
    chunk_ranks: int = 131072,
    max_queue: int = 256,
    deep_distance: int = 3,
    fairness_cap: float = 0.75,
    aging_seconds: float = 30.0,
) -> ScheduledSearchEngine:
    return ScheduledSearchEngine(
        hash_name=hash_name,
        batch_size=batch_size,
        iterator=iterator,
        fixed_padding=fixed_padding,
        hooks=hooks,
        cache=cache,
        warm=warm,
        chunk_ranks=chunk_ranks,
        max_queue=max_queue,
        deep_distance=deep_distance,
        fairness_cap=fairness_cap,
        aging_seconds=aging_seconds if aging_seconds > 0 else None,
    )


@register_engine(
    "fleet",
    description="Health-checked multi-device dispatch with re-dispatch and hedging",
)
def _build_fleet(
    *devices: str,
    hash_name: str = "sha3-256",
    batch_size: int = 8192,
    iterator: str = "unrank",
    fixed_padding: bool = True,
    hooks: EngineHooks | None = None,
    cache: bool = True,
    warm: int = 0,
    chunk_ranks: int = 131072,
    max_queue: int = 256,
    deep_distance: int = 3,
    fairness_cap: float = 0.75,
    aging_seconds: float = 30.0,
    heartbeat_seconds: float = 0.02,
    hedge_factor: float = 4.0,
    hedge_min_seconds: float = 0.05,
    no_device_grace: float = 2.0,
    failure_threshold: int = 2,
    recovery_seconds: float = 0.25,
    fault_seed: int = 0,
    slow_factor: float = 8.0,
) -> FleetSearchEngine:
    return FleetSearchEngine(
        *devices,
        hash_name=hash_name,
        batch_size=batch_size,
        iterator=iterator,
        fixed_padding=fixed_padding,
        hooks=hooks,
        cache=cache,
        warm=warm,
        chunk_ranks=chunk_ranks,
        max_queue=max_queue,
        deep_distance=deep_distance,
        fairness_cap=fairness_cap,
        aging_seconds=aging_seconds,
        heartbeat_seconds=heartbeat_seconds,
        hedge_factor=hedge_factor,
        hedge_min_seconds=hedge_min_seconds,
        no_device_grace=no_device_grace,
        failure_threshold=failure_threshold,
        recovery_seconds=recovery_seconds,
        fault_seed=fault_seed,
        slow_factor=slow_factor,
    )


@register_engine(
    "cluster",
    description="MPI-style distributed SALTED search over in-process ranks",
    aliases={"r": "ranks"},
)
def _build_cluster(
    ranks: int = 2,
    hash_name: str = "sha3-256",
    batch_size: int = 16384,
    interconnect: Interconnect | None = None,
    fault_injector=None,
    hooks: EngineHooks | None = None,
) -> ClusterSearchExecutor:
    return ClusterSearchExecutor(
        ranks,
        hash_name=hash_name,
        batch_size=batch_size,
        interconnect=interconnect,
        fault_injector=fault_injector,
        hooks=hooks,
    )


@register_engine(
    "original",
    description="Key-agile batched original-RBC baseline (AES/SPECK/ChaCha20)",
)
def _build_original(
    keygen_name: str = "aes-128",
    batch_size: int = 8192,
    hooks: EngineHooks | None = None,
) -> BatchOriginalRBCSearch:
    return BatchOriginalRBCSearch(
        keygen_name=keygen_name, batch_size=batch_size, hooks=hooks
    )


def _register_modeled(name: str, model_factory, description: str) -> None:
    @register_engine(name, description=description)
    def _build_modeled(
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        mode: str = "exhaustive",
        hooks: EngineHooks | None = None,
    ) -> ModeledDeviceEngine:
        return ModeledDeviceEngine(
            model_factory(),
            hash_name=hash_name,
            batch_size=batch_size,
            mode=mode,
            hooks=hooks,
        )


def _gpu_model():
    from repro.devices.gpu import GPUModel

    return GPUModel()


def _apu_model():
    from repro.devices.apu import APUModel

    return APUModel()


def _cpu_model():
    from repro.devices.cpu import CPUModel

    return CPUModel()


_register_modeled(
    "gpu-model",
    _gpu_model,
    "Real search, wall time modeled on the paper's A100 GPU",
)
_register_modeled(
    "apu-model",
    _apu_model,
    "Real search, wall time modeled on the paper's Gemini APU",
)
_register_modeled(
    "cpu-model",
    _cpu_model,
    "Real search, wall time modeled on the paper's EPYC CPU",
)
