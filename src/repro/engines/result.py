"""The one instrumented outcome type every search engine returns.

Historically the stack had two result shapes: the single-node engines
returned ``SearchResult`` while the distributed engine returned a
``ClusterSearchResult`` with per-rank accounting. Every consumer — the
serving layer, the chaos harness, the analysis code — had to know which
one it was holding. This module merges them: per-rank statistics become
an optional :class:`ClusterStats` extension, and ``timed_out`` /
``shells`` are populated by every engine, so one telemetry shape flows
from the combinator-driven kernels all the way up to the servers.

Nothing in this module imports from the rest of :mod:`repro` — it is the
bottom of the engine-stack dependency graph, safe to import from any
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "ShellStats",
    "merge_shells",
    "AmortizationStats",
    "ClusterStats",
    "SchedulingStats",
    "FleetStats",
    "DirectoryStats",
    "SearchResult",
    "SearchEngine",
]


@dataclass(frozen=True)
class ShellStats:
    """Per-Hamming-distance breakdown of one search."""

    distance: int
    seeds_hashed: int
    seconds: float

    @property
    def throughput(self) -> float:
        """Seeds hashed per second within this shell."""
        return self.seeds_hashed / self.seconds if self.seconds > 0 else 0.0


def merge_shells(
    shell_groups: "list[tuple[ShellStats, ...]]",
) -> tuple[ShellStats, ...]:
    """Merge concurrent per-worker shell stats into one per-distance view.

    Seed counts add across workers; seconds take the slowest worker
    (the shells ran concurrently, so the maximum is the wall time).
    """
    hashed: dict[int, int] = {}
    seconds: dict[int, float] = {}
    for shells in shell_groups:
        for shell in shells:
            hashed[shell.distance] = hashed.get(shell.distance, 0) + shell.seeds_hashed
            seconds[shell.distance] = max(
                seconds.get(shell.distance, 0.0), shell.seconds
            )
    return tuple(
        ShellStats(distance, hashed[distance], seconds[distance])
        for distance in sorted(hashed)
    )


@dataclass(frozen=True)
class AmortizationStats:
    """Amortized-pipeline extension: what this search reused vs. rebuilt.

    Populated by engines that consult the mask-plan cache or run on the
    persistent worker pool (``batch:...,cache=yes`` and ``pool:`` specs).
    ``plan_hits``/``plan_misses`` count cache lookups for this search's
    mask plans; ``pool_reused`` is True when the search ran on an
    already-warm pool instead of paying a fork/join.
    """

    plan_hits: int = 0
    plan_misses: int = 0
    #: Bytes of mask plans currently resident in the process-wide cache.
    plan_bytes: int = 0
    #: Searches this pool has served since its workers were spawned
    #: (including this one); 0 for engines without a pool.
    pool_searches: int = 0
    pool_reused: bool = False
    #: Worker processes spawned over the pool's lifetime (a healthy warm
    #: pool spawns exactly ``workers`` once, then never again).
    workers_spawned: int = 0


@dataclass(frozen=True)
class SchedulingStats:
    """Scheduler extension: how the continuous batcher served this search.

    Populated by the ``sched:`` engine family (:mod:`repro.sched`). A
    search that rode the shared work stream records which lane it ran
    in, how long it queued before its first device batch, how many
    device batches carried its candidates (and how many of those were
    shared with other requests), and how often it was set aside so
    another request could use the device.
    """

    lane: str = ""
    #: Tenant the request was attributed to ("" for pre-tenancy engines;
    #: the scheduler stamps ``"default"`` for untenanted submissions).
    tenant: str = ""
    #: Client-supplied deadline, if any (relative seconds at submit).
    deadline_seconds: float | None = None
    #: Admission -> first device batch.
    queue_seconds: float = 0.0
    #: First device batch -> final state.
    service_seconds: float = 0.0
    #: Device batches that carried at least one of this search's chunks.
    batches: int = 0
    #: Of those, batches shared with other requests' candidates.
    shared_batches: int = 0
    #: Times the device was handed to another request while this one
    #: still had work pending.
    preemptions: int = 0
    #: Work units the decomposer produced / actually executed (early
    #: exit retires the difference).
    chunks_total: int = 0
    chunks_run: int = 0


@dataclass(frozen=True)
class FleetStats:
    """Multi-device extension: how the device fleet served this search.

    Populated by the ``fleet:`` engine family (:mod:`repro.fleet`). A
    search placed on a health-checked device fleet records which devices
    carried its batches, which device found the seed, and how often its
    chunks had to be re-dispatched (device failure), duplicated (hedged
    straggler batches), or moved to another device entirely.
    """

    #: Devices that served at least one batch for this request, sorted.
    devices: tuple[str, ...] = ()
    #: Device whose batch produced the matching seed (None if not found).
    finder_device: str | None = None
    #: ``(device, batches)`` pairs, sorted by device name.
    batches_by_device: tuple[tuple[str, int], ...] = ()
    #: Chunks returned to the queue after a device failed mid-flight
    #: (plus pending chunks moved when the request changed devices).
    redispatched_chunks: int = 0
    #: Batches of this request duplicated onto a second device because
    #: the first was past the straggler latency threshold.
    hedged_batches: int = 0
    #: Times this request's device affinity moved to another device.
    reassignments: int = 0


@dataclass(frozen=True)
class DirectoryStats:
    """Enrollment-directory extension: how this search's image was fetched.

    Populated when the CA's image database is a sharded enrollment
    directory (:mod:`repro.directory`). Records where the enrolled PUF
    image came from — the per-shard hot cache, the key's primary shard,
    or a replica after failover — and what the quorum read cost.
    """

    #: ``"hot-cache"``, ``"primary"``, or ``"replica"`` (failover read).
    source: str = ""
    #: Tenant namespace the looked-up key lived in ("" before tenancy).
    tenant: str = ""
    #: Shard that served the read ("" for a pure cache hit).
    shard: str = ""
    #: Replicas consulted by the quorum read (0 for a cache hit).
    replicas_read: int = 0
    #: Transient shard timeouts retried during the read.
    retries: int = 0
    #: Stale or missing replica copies repaired by this read.
    read_repairs: int = 0
    #: Whether the per-shard hot cache answered without a shard read.
    hot_hit: bool = False
    #: Wall time of the directory lookup itself.
    lookup_seconds: float = 0.0


@dataclass(frozen=True)
class ClusterStats:
    """Distributed-search extension: per-rank accounting and recovery."""

    finder_rank: int | None = None
    per_rank_seconds: tuple[float, ...] = ()
    per_rank_hashed: tuple[int, ...] = ()
    #: Ranks that died before the search and whose slices were recovered.
    dead_ranks: tuple[int, ...] = ()
    #: Ranks that ran at a slowdown factor (reflected in wall time).
    straggler_ranks: tuple[int, ...] = ()
    #: Wall time of the recovery pass alone (0.0 when no rank died or a
    #: survivor found the seed before recovery was needed).
    recovery_seconds: float = 0.0
    #: Actual serial execution time of the simulation (for reference).
    simulation_seconds: float = 0.0


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one RBC search — the unified, instrumented shape.

    ``elapsed_seconds`` is always the answer-latency the protocol
    compares against T: real wall time for host engines, modeled
    concurrent wall time for the cluster engine, modeled device time for
    the device-model-backed engines.
    """

    found: bool
    seed: bytes | None
    distance: int | None
    seeds_hashed: int
    elapsed_seconds: float
    timed_out: bool = False
    #: Per-shell breakdown; every engine populates it.
    shells: tuple[ShellStats, ...] = ()
    #: Which engine produced this result (its ``describe()`` string).
    engine: str | None = None
    #: Distributed extension; ``None`` for single-node engines.
    cluster: ClusterStats | None = field(default=None)
    #: Amortized-pipeline extension (plan cache / warm pool telemetry);
    #: ``None`` for engines that pay full per-search costs.
    amortized: AmortizationStats | None = field(default=None)
    #: Scheduler extension (lane, queueing, batch sharing); ``None`` for
    #: searches that ran outside the continuous batcher.
    scheduling: SchedulingStats | None = field(default=None)
    #: Multi-device extension (per-device batches, re-dispatch, hedging);
    #: ``None`` for searches served by a single device.
    fleet: FleetStats | None = field(default=None)
    #: Enrollment-directory extension (hot-cache/quorum/failover lookup
    #: telemetry); ``None`` when the enrolled image came from a plain
    #: in-memory database.
    directory: DirectoryStats | None = field(default=None)

    def __bool__(self) -> bool:
        return self.found

    @property
    def throughput(self) -> float:
        """Seeds hashed per second over the whole search."""
        return (
            self.seeds_hashed / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )

    # -- legacy ClusterSearchResult surface ----------------------------
    # The distributed engine used to return its own result type; these
    # properties keep that vocabulary alive on the unified shape.

    @property
    def wall_seconds(self) -> float:
        """Modeled concurrent wall time (alias of ``elapsed_seconds``)."""
        return self.elapsed_seconds

    @property
    def seeds_hashed_total(self) -> int:
        """Total seeds hashed across all ranks (alias of ``seeds_hashed``)."""
        return self.seeds_hashed

    @property
    def finder_rank(self) -> int | None:
        return self.cluster.finder_rank if self.cluster is not None else None

    @property
    def per_rank_seconds(self) -> tuple[float, ...]:
        return self.cluster.per_rank_seconds if self.cluster is not None else ()

    @property
    def per_rank_hashed(self) -> tuple[int, ...]:
        return self.cluster.per_rank_hashed if self.cluster is not None else ()

    @property
    def dead_ranks(self) -> tuple[int, ...]:
        return self.cluster.dead_ranks if self.cluster is not None else ()

    @property
    def straggler_ranks(self) -> tuple[int, ...]:
        return self.cluster.straggler_ranks if self.cluster is not None else ()

    @property
    def recovery_seconds(self) -> float:
        return self.cluster.recovery_seconds if self.cluster is not None else 0.0

    @property
    def simulation_seconds(self) -> float:
        return (
            self.cluster.simulation_seconds
            if self.cluster is not None
            else self.elapsed_seconds
        )


@runtime_checkable
class SearchEngine(Protocol):
    """Anything that can run the Algorithm-1 search."""

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Run Algorithm 1 up to ``max_distance`` within ``time_budget``."""
        ...
