"""Engine-lifecycle hooks: one telemetry tap for every engine.

Engines call :meth:`EngineHooks.on_batch` after each kernel batch and
:meth:`EngineHooks.on_shell_complete` when a Hamming-distance shell
finishes. The serving layer, the chaos harness, and the analysis code
all observe searches through this one interface instead of each
inventing its own counters.

``on_amortization``, ``on_schedule``, and ``on_fleet`` are *optional*
extensions: amortized-pipeline engines (plan cache / warm pool) call
``on_amortization`` once per search with that search's
:class:`~repro.engines.result.AmortizationStats`, the scheduler
(:mod:`repro.sched`) calls ``on_schedule`` once per request — at
retirement — with its
:class:`~repro.engines.result.SchedulingStats`, and the device fleet
(:mod:`repro.fleet`) calls ``on_fleet`` once per request with its
:class:`~repro.engines.result.FleetStats`. All three are discovered
via ``getattr`` so third-party hook objects implementing only the two
required methods keep working unchanged.

Hook discipline:

* hooks must be cheap — they run inside the search hot loop;
* hooks see *backend* activity: a distributed engine reports every
  rank's shells (duplicate distances are expected), a multiprocessing
  engine reports merged per-distance shells from the parent process
  (hooks do not cross process boundaries);
* a hook that raises aborts the search — don't raise.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

from repro.engines.result import (
    AmortizationStats,
    FleetStats,
    SchedulingStats,
    ShellStats,
)

__all__ = ["EngineHooks", "NullHooks", "TelemetryHooks"]


@runtime_checkable
class EngineHooks(Protocol):
    """What an engine tells the world while it searches."""

    def on_batch(self, distance: int, seeds_hashed: int) -> None:
        """One kernel batch of ``seeds_hashed`` candidates finished."""
        ...

    def on_shell_complete(self, shell: ShellStats) -> None:
        """One Hamming-distance shell finished (found, exhausted, or cut)."""
        ...


class NullHooks:
    """The do-nothing default."""

    def on_batch(self, distance: int, seeds_hashed: int) -> None:
        return None

    def on_shell_complete(self, shell: ShellStats) -> None:
        return None

    def on_amortization(self, stats: AmortizationStats) -> None:
        return None

    def on_schedule(self, stats: SchedulingStats) -> None:
        return None

    def on_fleet(self, stats: FleetStats) -> None:
        return None


class TelemetryHooks:
    """Thread-safe accumulating hooks — the standard telemetry consumer.

    Safe to share across engines and across the serving layer's worker
    threads; ``snapshot()`` returns a consistent copy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batches = 0
        self.seeds_hashed = 0
        self.shells_completed = 0
        self.shell_seconds = 0.0
        self.seeds_by_distance: dict[int, int] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        self.pool_reuses = 0
        self.scheduled = 0
        self.shared_batches = 0
        self.preemptions = 0
        self.queue_seconds = 0.0
        self.fleet_requests = 0
        self.redispatched_chunks = 0
        self.hedged_batches = 0

    def on_batch(self, distance: int, seeds_hashed: int) -> None:
        with self._lock:
            self.batches += 1
            self.seeds_hashed += seeds_hashed
            self.seeds_by_distance[distance] = (
                self.seeds_by_distance.get(distance, 0) + seeds_hashed
            )

    def on_shell_complete(self, shell: ShellStats) -> None:
        with self._lock:
            self.shells_completed += 1
            self.shell_seconds += shell.seconds

    def on_amortization(self, stats: AmortizationStats) -> None:
        with self._lock:
            self.plan_hits += stats.plan_hits
            self.plan_misses += stats.plan_misses
            if stats.pool_reused:
                self.pool_reuses += 1

    def on_schedule(self, stats: SchedulingStats) -> None:
        with self._lock:
            self.scheduled += 1
            self.shared_batches += stats.shared_batches
            self.preemptions += stats.preemptions
            self.queue_seconds += stats.queue_seconds

    def on_fleet(self, stats: FleetStats) -> None:
        with self._lock:
            self.fleet_requests += 1
            self.redispatched_chunks += stats.redispatched_chunks
            self.hedged_batches += stats.hedged_batches

    def snapshot(self) -> dict[str, object]:
        """A consistent copy of every counter."""
        with self._lock:
            return {
                "batches": self.batches,
                "seeds_hashed": self.seeds_hashed,
                "shells_completed": self.shells_completed,
                "shell_seconds": self.shell_seconds,
                "seeds_by_distance": dict(self.seeds_by_distance),
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "pool_reuses": self.pool_reuses,
                "scheduled": self.scheduled,
                "shared_batches": self.shared_batches,
                "preemptions": self.preemptions,
                "queue_seconds": self.queue_seconds,
                "fleet_requests": self.fleet_requests,
                "redispatched_chunks": self.redispatched_chunks,
                "hedged_batches": self.hedged_batches,
            }
