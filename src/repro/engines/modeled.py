"""Device-model-backed engine: real search, modeled accelerator time.

The paper's headline numbers come from hardware we don't have; the
device models (:mod:`repro.devices`) supply calibrated timing for it.
:class:`ModeledDeviceEngine` splices those models into the live engine
stack: the *correctness* path (which seed is found, at what distance,
how many candidates were hashed) executes for real on the host's
vectorized kernels, while ``elapsed_seconds`` is replaced by the device
model's predicted time for the distance actually searched. Every
consumer of the unified result — the search service, the capacity
planner, the CLI — thereby sees "what would an A100 / Gemini APU / EPYC
have answered, and how fast".

Timeouts stay honest: ``timed_out`` reflects the *real* execution
against the caller's budget (the host actually ran the search), so the
protocol's T-threshold semantics are identical across every registered
engine.
"""

from __future__ import annotations

from dataclasses import replace

from repro.engines.hooks import EngineHooks
from repro.engines.registry import build_engine
from repro.engines.result import SearchResult
from repro.engines.wrappers import EngineWrapper

__all__ = ["ModeledDeviceEngine"]


class ModeledDeviceEngine(EngineWrapper):
    """Search on the host, report the modeled accelerator's wall time."""

    wrapper_name = "modeled"

    def __init__(
        self,
        model,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        mode: str = "exhaustive",
        hooks: EngineHooks | None = None,
    ):
        super().__init__(
            build_engine(
                "batch", hash_name=hash_name, batch_size=batch_size, hooks=hooks
            )
        )
        self.model = model
        self.mode = mode

    def describe(self) -> str:
        device = getattr(self.model.spec, "name", type(self.model).__name__)
        return f"modeled[{device}]({self.inner.describe()})"

    def modeled_seconds(self, distance: int) -> float:
        """The device model's predicted time to search out to ``distance``."""
        if distance < 1:
            return 0.0
        return float(
            self.model.search_time(self.inner.hash_name, distance, self.mode)
        )

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Real search; elapsed time swapped for the model's prediction."""
        result = self.inner.search(
            base_seed, target_digest, max_distance, time_budget=time_budget
        )
        if result.timed_out:
            # The host ran out of budget: keep the honest real timing.
            return replace(result, engine=self.describe())
        reached = result.distance if result.found else max_distance
        return replace(
            result,
            elapsed_seconds=self.modeled_seconds(reached or 0),
            engine=self.describe(),
        )
