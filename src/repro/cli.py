"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``       — one full authentication round (quickstart).
* ``tables``     — regenerate the paper's headline tables from the
                   device models (Table 5, Table 6, Figure 4 endpoints).
* ``probe``      — measure this host's real kernel throughputs.
* ``engines``    — list the search-engine registry and each engine's
                   configuration schema.
* ``search``     — run one Algorithm-1 search on any registered engine
                   (``--engine batch:sha3-256,bs=16384``).
* ``attack``     — run the opponent simulation against a fresh digest.
* ``complexity`` — print Table 1 and the tractability planner.
* ``chaos``      — run a deterministic fault-injected authentication
                   storm and print the resilience report.
* ``sched``      — serve a mixed shallow/deep request fleet through the
                   deadline-aware scheduler and compare its tail
                   latencies against the FIFO baseline.
* ``deploy``     — stand a topology up as real OS processes over TCP
                   and drive a trace-driven storm under emulated WAN
                   profiles.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import quick_setup
    from repro.core import RBCSaltedProtocol

    authority, client, mask = quick_setup(
        seed=args.seed, max_distance=args.distance,
        noise_target_distance=args.distance,
    )
    outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
    print(f"authenticated: {outcome.authenticated}")
    print(f"distance:      {outcome.distance}")
    print(f"seeds hashed:  {outcome.seeds_hashed:,}")
    print(f"search time:   {outcome.search_seconds:.3f} s")
    if outcome.public_key:
        print(f"public key:    {outcome.public_key[:16].hex()}…")
    return 0 if outcome.authenticated else 1


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.devices import APUModel, COMM_TIME_SECONDS, CPUModel, GPUModel, speedup_curve

    models = [("GPU", GPUModel()), ("APU", APUModel()), ("CPU", CPUModel())]
    rows = []
    for hash_name in ("sha1", "sha3-256"):
        for mode in ("exhaustive", "average"):
            for label, model in models:
                search = model.search_time(hash_name, 5, mode)
                rows.append([label, hash_name, mode, f"{search:.2f}",
                             f"{COMM_TIME_SECONDS + search:.2f}"])
    print(format_table(
        ["platform", "hash", "mode", "search (s)", "total (s)"],
        rows, title="Table 5 (reproduced)"))
    print()
    energy_rows = []
    for label, model in models[:2]:
        for hash_name in ("sha1", "sha3-256"):
            timing = model.simulate_search(hash_name, 5)
            energy_rows.append([label, hash_name, f"{timing.energy_joules:.1f}"])
    print(format_table(["platform", "hash", "joules"], energy_rows,
                       title="Table 6 (reproduced)"))
    print()
    for h in ("sha1", "sha3-256"):
        for mode in ("exhaustive", "average"):
            pts = speedup_curve(h, mode, 3)
            print(f"Fig 4 {h:9s} {mode:11s}: "
                  + ", ".join(f"{p.speedup:.2f}x" for p in pts))
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.engines import build_engine
    from repro.runtime.original_batch import BATCH_KEYGEN_CHOICES

    print("hash kernels (seeds/s):")
    for name in ("sha1", "sha256", "sha3-256"):
        rate = build_engine("batch", hash_name=name).throughput_probe(args.samples)
        print(f"  {name:10s} {rate:14,.0f}")
    print("key-agile cipher kernels (responses/s):")
    for name in BATCH_KEYGEN_CHOICES:
        rate = build_engine(
            "original", keygen_name=name
        ).throughput_probe(args.samples)
        print(f"  {name:10s} {rate:14,.0f}")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    """List the engine registry and each engine's config schema."""
    from repro.analysis.tables import format_table
    from repro.engines import engine_entries

    entries = engine_entries()
    print(format_table(
        ["engine", "description"],
        [[entry.name, entry.description] for entry in entries],
        title="registered engines (build_engine spec: name[:arg,...][,k=v,...])",
    ))
    print()
    for entry in entries:
        aliases = ", ".join(
            f"{short}={full}" for short, full in sorted(entry.aliases)
        )
        print(f"{entry.name}:")
        for param, default, kind in entry.schema:
            print(f"  {param:15s} {kind:6s} default={default}")
        if aliases:
            print(f"  aliases: {aliases}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """One Algorithm-1 search on any registered engine spec."""
    import numpy as np

    from repro._bitutils import flip_bits
    from repro.engines import build_engine, describe_engine, engine_target

    try:
        engine = build_engine(args.engine)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro search: error: {message}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    enrolled = rng.bytes(32)
    # Plant the "client's" seed a known number of bit flips away, then
    # search from the enrolled seed — the CA's side of the protocol.
    positions = (
        sorted(int(p) for p in rng.choice(256, size=args.distance, replace=False))
        if args.distance
        else []
    )
    client_seed = flip_bits(enrolled, positions)
    target = engine_target(engine, client_seed)
    max_distance = (
        args.max_distance if args.max_distance is not None else args.distance
    )
    result = engine.search(
        enrolled, target, max_distance, time_budget=args.budget
    )
    print(f"engine:        {result.engine or describe_engine(engine)}")
    print(f"found:         {result.found}")
    print(f"distance:      {result.distance}")
    print(f"timed out:     {result.timed_out}")
    print(f"seeds hashed:  {result.seeds_hashed:,}")
    print(f"elapsed:       {result.elapsed_seconds:.4f} s")
    if result.shells:
        print("shells:")
        for shell in result.shells:
            print(
                f"  d={shell.distance}: {shell.seeds_hashed:,} seeds "
                f"in {shell.seconds:.4f} s"
            )
    if result.cluster is not None:
        stats = result.cluster
        print(f"finder rank:   {stats.finder_rank}")
        print(f"per-rank seeds:{list(stats.per_rank_hashed)}")
        if stats.dead_ranks:
            print(f"dead ranks:    {list(stats.dead_ranks)} "
                  f"(recovery {stats.recovery_seconds:.4f} s)")
    if result.found and result.seed != client_seed:
        # A different seed with the same response is possible in
        # principle but at these sizes indicates an engine bug.
        print("warning: found seed differs from the planted seed")
    return 0 if result.found else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.attack import OpponentSimulator, avalanche_profile
    from repro.hashes.registry import get_hash

    rng = np.random.default_rng(args.seed)
    digest = get_hash(args.hash).scalar(rng.bytes(32))
    simulator = OpponentSimulator(args.hash)
    estimate = simulator.brute_force(digest, budget_seconds=args.budget, rng=rng)
    print("opponent brute force:", estimate.summary())
    mean, std = avalanche_profile(args.hash, samples=100, rng=rng)
    print(f"avalanche: {mean:.3f} ± {std:.3f} (ideal 0.5)")
    print(f"server advantage at d=5: {simulator.informed_search_advantage(5):.3g}x")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import render_index

    print(render_index())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Assemble benchmarks/results/*.txt into one markdown report."""
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    sections = sorted(results_dir.glob("*.txt"))
    if not sections:
        print("results directory is empty", file=sys.stderr)
        return 1
    lines = [
        "# Reproduction results",
        "",
        "Assembled from `benchmarks/results/` — regenerate with "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for path in sections:
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    output = pathlib.Path(args.output)
    output.write_text("\n".join(lines))
    print(f"wrote {output} ({len(sections)} sections)")
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.core.complexity import table1_rows, tractable_distance

    rows = [[r.d, f"{r.exhaustive:,}", f"{r.average:,}"] for r in table1_rows(args.max_d)]
    print(format_table(["d", "exhaustive", "average"], rows, title="Table 1"))
    if args.throughput:
        d = tractable_distance(args.throughput, args.threshold)
        print(f"\nat {args.throughput:,.0f} hashes/s and T={args.threshold}s: d_max = {d}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.reliability.chaos import run_named_storm

    report = run_named_storm(
        args.plan, seed=args.seed, clients=args.clients, workers=args.workers
    )
    print(report.render())
    return 0 if report.false_authentications == 0 else 1


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.engines import build_engine
    from repro.hashes.registry import get_hash
    from repro.sched.workload import (
        mixed_workload,
        run_fifo,
        run_scheduled,
        summarize_latencies,
    )

    algo = get_hash(args.hash)
    depths = tuple(int(d) for d in args.depths.split(","))
    workload = mixed_workload(
        algo,
        requests=args.requests,
        depths=depths,
        seed=args.seed,
        deadline_seconds=args.deadline,
    )

    fifo_engine = build_engine(
        "batch", hash_name=args.hash, batch_size=args.batch_size, cache=True
    )
    fifo = summarize_latencies(run_fifo(fifo_engine, workload, args.budget))

    sched_engine = build_engine(
        "sched", hash_name=args.hash, batch_size=args.batch_size
    )
    try:
        sched = summarize_latencies(
            run_scheduled(sched_engine, workload, args.budget)
        )
        snapshot = sched_engine.scheduler.snapshot()
    finally:
        sched_engine.close()

    def row(label: str, stats: dict) -> str:
        if stats["count"] == 0:
            return f"  {label:<8} (no requests)"
        return (
            f"  {label:<8} n={stats['count']:<3} "
            f"p50={stats['p50_seconds']:.3f}s "
            f"p99={stats['p99_seconds']:.3f}s "
            f"max={stats['max_seconds']:.3f}s "
            f"found={stats['found']} timed_out={stats['timed_out']} "
            f"shed={stats['shed']}"
        )

    print(f"workload: {args.requests} requests, depths {depths}, "
          f"T={args.budget}s, hash={args.hash}")
    print("FIFO (one device, submission order):")
    for label in ("shallow", "deep", "all"):
        print(row(label, fifo[label]))
    print("scheduled (continuous batching, EDF lanes):")
    for label in ("shallow", "deep", "all"):
        print(row(label, sched[label]))
    print(
        f"scheduler: batches={snapshot['batches']} "
        f"shared={snapshot['shared_batches']} shed={snapshot['shed']} "
        f"preempted={snapshot['preempted']} "
        f"peak_queue={snapshot['peak_queue_depth']}"
    )
    fifo_p99 = fifo["shallow"].get("p99_seconds")
    sched_p99 = sched["shallow"].get("p99_seconds")
    if fifo_p99 is not None and sched_p99 is not None:
        print(f"shallow p99: FIFO {fifo_p99:.3f}s -> sched {sched_p99:.3f}s")
        return 0 if sched_p99 <= fifo_p99 else 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.storm import run_device_loss_storm

    devices = tuple(t.strip() for t in args.devices.split(",") if t.strip())
    depths = tuple(int(d) for d in args.depths.split(","))

    if args.storm:
        report = run_device_loss_storm(
            seed=args.seed,
            requests=args.requests,
            depths=depths,
            hash_name=args.hash,
            batch_size=args.batch_size,
            devices=devices,
            kill_fraction=args.kill_fraction,
            revive_fraction=args.revive_fraction,
        )
        print(report.render())
        return 0 if report.passed else 1

    from repro.fleet.engine import FleetSearchEngine
    from repro.hashes.registry import get_hash
    from repro.sched.errors import RequestShed
    from repro.sched.workload import mixed_workload

    algo = get_hash(args.hash)
    workload = mixed_workload(
        algo, requests=args.requests, depths=depths, seed=args.seed
    )
    engine = FleetSearchEngine(
        *devices, hash_name=args.hash, batch_size=args.batch_size
    )
    found = shed = 0
    try:
        tickets = [
            (
                request,
                engine.submit(
                    request.base_seed,
                    request.target_digest,
                    request.max_distance,
                    time_budget=args.budget,
                    client_id=request.client_id,
                ),
            )
            for request in workload
        ]
        for request, ticket in tickets:
            try:
                result = ticket.result(timeout=300.0)
            except RequestShed as exc:
                shed += 1
                print(f"  {request.client_id}: shed ({exc.reason})")
                continue
            found += 1 if result.found else 0
            stats = result.fleet
            device = stats.finder_device if stats else "?"
            print(
                f"  {request.client_id}: found={result.found} "
                f"d={result.distance} device={device} "
                f"elapsed={result.elapsed_seconds:.3f}s"
            )
        snapshot = engine.scheduler.snapshot()
    finally:
        engine.close()
    print(
        f"fleet {engine.describe()}: {found} found, {shed} shed; "
        f"batches={snapshot['batches']} "
        f"redispatched={snapshot['redispatched_chunks']} "
        f"hedges={snapshot['hedges_launched']} "
        f"quarantines={snapshot['quarantines']}"
    )
    for name, dev in sorted(snapshot["devices"].items()):
        print(
            f"  device {name}: health={dev['health']} "
            f"batches={dev['batches']} rows={dev['rows_hashed']} "
            f"failures={dev['failures']} probes={dev['probes']}"
        )
    return 0


def _cmd_directory(args: argparse.Namespace) -> int:
    if args.storm:
        from repro.directory.storm import run_shard_loss_storm

        report = run_shard_loss_storm(
            seed=args.seed,
            clients=args.clients if args.clients is not None else 24,
            shards=args.shards,
            replication=args.replication,
            shed_ceiling=args.shed_ceiling,
        )
        print(report.render())
        return 0 if report.passed else 1

    import numpy as np

    from repro.core.protocol import ClientDevice
    from repro.directory import ShardedEnrollmentDirectory
    from repro.net.concurrent import ConcurrentCAServer
    from repro.puf.model import SRAMPuf
    from repro.puf.ternary import enroll_with_masking
    from repro import quick_setup

    authority, _client, _mask = quick_setup(seed=args.seed, max_distance=2)
    directory = ShardedEnrollmentDirectory(
        master_key=b"demo-master-key!",
        shards=args.shards,
        replication=args.replication,
    )
    authority.image_db = directory

    print(f"directory: {args.shards} shards, replication {args.replication}")
    fleet = {}
    demo_clients = args.clients if args.clients is not None else 8
    for index in range(demo_clients):
        client_id = f"client-{index:02d}"
        puf = SRAMPuf(num_cells=2048, stable_error=0.001,
                      seed=args.seed * 1_000_003 + index)
        mask = enroll_with_masking(puf, address=0, window=2048, reads=48,
                                   instability_threshold=0.02)
        authority.enroll(client_id, mask)
        device = ClientDevice(client_id, puf, noise_target_distance=1,
                              rng=np.random.default_rng((args.seed, index)))
        fleet[client_id] = (device, authority.issue_challenge(client_id), mask)
        replicas = ", ".join(directory.replicas_for(client_id))
        print(f"  enrolled {client_id} -> [{replicas}]")

    def authenticate_all(server):
        for client_id, (device, challenge, mask) in fleet.items():
            digest = device.respond(challenge, reference_mask=mask)
            result = server.submit(client_id, digest).result(timeout=60.0)
            stats = directory.snapshot()
            print(f"  {client_id}: authenticated={result.authenticated} "
                  f"hot_hits={stats['hot_hits']} "
                  f"failovers={stats['failovers']}")

    with ConcurrentCAServer(authority, workers=2) as server:
        print("healthy pass (cold caches -> quorum reads):")
        authenticate_all(server)
        print("warm pass (hot-cache hits):")
        authenticate_all(server)
        primaries = [directory.replicas_for(c)[0] for c in fleet]
        victim = max(set(primaries), key=primaries.count)
        print(f"killing {victim}; replicas must carry its keys:")
        directory.kill_shard(victim)
        directory.drop_hot_caches()
        authenticate_all(server)
        metrics = server.metrics.snapshot()
    snapshot = directory.snapshot()
    print(f"directory: quorum_reads={snapshot['quorum_reads']} "
          f"hot_hits={snapshot['hot_hits']} "
          f"failovers={snapshot['failovers']} "
          f"read_repairs={snapshot['read_repairs']} "
          f"retries={snapshot['retries']}")
    print(f"server: completed={metrics['completed']:.0f} "
          f"directory_hot_hits={metrics['directory_hot_hits']:.0f} "
          f"directory_failovers={metrics['directory_failovers']:.0f} "
          f"shed_directory={metrics['shed_directory']:.0f}")
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    from repro.tenancy.workload import (
        AGGRESSOR_TENANT,
        VICTIM_TENANT,
        evaluate_gates,
        run_noisy_neighbor,
    )

    record = run_noisy_neighbor(
        hash_name=args.hash,
        victims=args.victims,
        aggressors=args.aggressors,
        aggressor_rate=args.aggressor_rate,
        aggressor_burst=args.aggressor_burst,
        workers=args.workers,
        seed=args.seed,
    )
    config = record["config"]

    def row(phase: str, tenant: str) -> str:
        stats = record[phase].get(tenant)
        if stats is None:
            return f"  {phase:<12} {tenant:<10} (absent)"
        tail = (
            f"p50={stats['p50_seconds']:.3f}s p99={stats['p99_seconds']:.3f}s"
            if stats["served"]
            else "(nothing served)"
        )
        return (
            f"  {phase:<12} {tenant:<10} n={stats['count']:<3} "
            f"served={stats['served']:<3} shed={stats['shed']:<3} {tail}"
        )

    print("tenants: noisy-neighbor storm under per-tenant quotas")
    print(f"  {config['victims']} victim + {config['aggressors']} aggressor "
          f"requests, aggressor bucket {config['aggressor_rate']}/s "
          f"burst={config['aggressor_burst']}, workers={config['workers']}, "
          f"hash={config['hash_name']}")
    print(row("baseline", VICTIM_TENANT))
    print(row("storm", VICTIM_TENANT))
    print(row("storm", AGGRESSOR_TENANT))
    print(row("unprotected", VICTIM_TENANT))
    print(f"  aggressor: {record['aggressor_admitted']} admitted, "
          f"{record['aggressor_shed']} shed {record['aggressor_shed_reasons']}")
    print(f"  victim p99: baseline "
          f"{record['victim_p99_baseline_seconds']:.3f}s -> storm "
          f"{record['victim_p99_storm_seconds']:.3f}s"
          + (f" ({record['victim_p99_ratio']:.2f}x)"
             if record["victim_p99_ratio"] is not None else "")
          + f"; unprotected "
            f"{record['victim_p99_unprotected_seconds']:.3f}s")

    print("per-tenant ledger (storm phase):")
    for tenant_id, stats in sorted(record["server"]["storm_tenants"].items()):
        line = (f"  {tenant_id:<10} "
                f"submitted={stats['submitted']:.0f} "
                f"completed={stats['completed']:.0f} "
                f"authenticated={stats['authenticated']:.0f} "
                f"shed={stats['shed']:.0f} "
                f"quota_hits={stats['quota_hits']:.0f}")
        if stats.get("p99_seconds") is not None:
            line += f" p99={stats['p99_seconds']:.3f}s"
        print(line)

    failures = evaluate_gates(record, ratio_limit=args.ratio_limit)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy.storm import DEFAULT_PROFILES, run_deployment_storm
    from repro.deploy.topology import TopologySpec

    if not args.storm:
        print(
            "repro deploy: only --storm is implemented; "
            "run `repro deploy --storm`",
            file=sys.stderr,
        )
        return 2
    profiles = (
        tuple(p.strip() for p in args.profiles.split(",") if p.strip())
        if args.profiles
        else DEFAULT_PROFILES
    )
    topology = TopologySpec(
        servers=args.servers,
        devices=tuple(t.strip() for t in args.devices.split(",") if t.strip()),
        engine=args.engine,
        hash_name=args.hash,
        max_distance=args.distance,
        workers=args.workers,
        time_budget=args.budget,
        clients=args.clients,
        tenants=(
            tuple(t.strip() for t in args.tenants.split(",") if t.strip())
            if args.tenants
            else ()
        ),
        durability=args.fsync,
    )
    if args.crash:
        return _run_crash(args, topology)
    print(f"deployment storm: {topology.describe()}")
    print(f"profiles: {', '.join(profiles)}; {args.requests} requests "
          f"over {args.duration:g}s x{args.loadgens} loadgen(s)")
    report = run_deployment_storm(
        topology,
        profiles=profiles,
        seed=args.seed,
        requests=args.requests,
        duration_seconds=args.duration,
        num_loadgens=args.loadgens,
        time_scale=args.time_scale,
        output_path=args.output,
        log=print,
    )
    for profile in report.profiles:
        status = "ok" if profile.passed else "FAILED"
        outcomes = ", ".join(
            f"{k}={v}" for k, v in profile.outcomes.items()
        )
        print(f"[{profile.profile}] {status}: {outcomes}")
        print(f"  p50={profile.latency_p50_ms:.1f}ms "
              f"p99={profile.latency_p99_ms:.1f}ms "
              f"throughput={profile.throughput_rps:.2f}req/s "
              f"false_auths={profile.false_authentications}")
        for failure in profile.gate_failures:
            print(f"  GATE: {failure}", file=sys.stderr)
    if args.output:
        print(f"wrote {args.output}")
    return 0 if report.passed else 1


def _run_crash(args: argparse.Namespace, topology) -> int:
    """``repro deploy --storm --crash``: the kill-9 crash-restart storm."""
    from repro.deploy.storm import run_crash_storm
    from repro.deploy.supervisor import RestartPolicy

    report = run_crash_storm(
        topology,
        seed=args.seed,
        crashes=args.crashes,
        restart_policy=RestartPolicy(
            max_restarts=args.max_restarts, seed=args.seed
        ),
        output_path=args.output,
        log=print,
    )
    status = "ok" if report.passed else "FAILED"
    print(f"crash storm {status}: {report.crashes} kill-9 round(s), "
          f"{report.acknowledged_total} acked enrollments, "
          f"{report.lost_acknowledged} lost, "
          f"{report.nonce_reuse_trips} nonce-reuse trip(s), "
          f"{report.false_authentications} false auth(s)")
    for entry in report.rounds:
        print(f"  round {entry.round_index}: {entry.victim} recovered "
              f"{entry.recovered_records} record(s) in "
              f"{entry.recovery_seconds * 1000:.1f}ms")
    print(f"  durable {report.durable_enroll_rps:.1f} enroll/s vs lossy "
          f"{report.lossy_enroll_rps:.1f} enroll/s "
          f"({report.durability_overhead_pct:+.1f}% fsync cost); "
          f"{report.restarts} restart(s), "
          f"{report.backoff_seconds:.2f}s backoff")
    for failure in report.gate_failures:
        print(f"  GATE: {failure}", file=sys.stderr)
    if args.output:
        print(f"wrote {args.output}")
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="RBC-SALTED reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one authentication round")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--distance", type=int, default=2, choices=(1, 2, 3))
    demo.set_defaults(fn=_cmd_demo)

    tables = sub.add_parser("tables", help="regenerate headline tables")
    tables.set_defaults(fn=_cmd_tables)

    probe = sub.add_parser("probe", help="measure host kernel throughput")
    probe.add_argument("--samples", type=int, default=30000)
    probe.set_defaults(fn=_cmd_probe)

    engines = sub.add_parser("engines", help="list the engine registry")
    engines.set_defaults(fn=_cmd_engines)

    search = sub.add_parser("search", help="run one search on any engine")
    search.add_argument(
        "--engine", default="batch:sha3-256,bs=16384",
        help="engine spec, e.g. cluster:4,bs=8192 or a dotted factory path",
    )
    search.add_argument("--distance", type=int, default=2,
                        help="bit flips to plant between client and CA")
    search.add_argument("--max-distance", type=int, default=None,
                        dest="max_distance",
                        help="search horizon (default: the planted distance)")
    search.add_argument("--budget", type=float, default=None,
                        help="time budget in seconds (protocol T)")
    search.add_argument("--seed", type=int, default=0)
    search.set_defaults(fn=_cmd_search)

    attack = sub.add_parser("attack", help="opponent simulation")
    attack.add_argument("--hash", default="sha3-256")
    attack.add_argument("--budget", type=float, default=1.0)
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(fn=_cmd_attack)

    experiments = sub.add_parser("experiments", help="list the experiment index")
    experiments.set_defaults(fn=_cmd_experiments)

    report = sub.add_parser("report", help="assemble benchmark results")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default="RESULTS.md")
    report.set_defaults(fn=_cmd_report)

    complexity = sub.add_parser("complexity", help="Table 1 and planning")
    complexity.add_argument("--max-d", type=int, default=5, dest="max_d")
    complexity.add_argument("--throughput", type=float, default=None)
    complexity.add_argument("--threshold", type=float, default=20.0)
    complexity.set_defaults(fn=_cmd_complexity)

    chaos = sub.add_parser("chaos", help="fault-injected authentication storm")
    # Kept literal so parsing stays import-free; test_chaos checks it
    # matches sorted(NAMED_PLANS).
    chaos.add_argument(
        "--plan",
        default="lossy-wan",
        choices=("clean", "flaky-device", "lossy-wan", "smoke"),
        help="named fault plan",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--clients", type=int, default=None,
                       help="override the plan's fleet size")
    chaos.add_argument("--workers", type=int, default=None,
                       help="override the server worker count")
    chaos.set_defaults(fn=_cmd_chaos)

    sched = sub.add_parser(
        "sched", help="scheduler vs FIFO tail latency on a mixed fleet"
    )
    sched.add_argument("--hash", default="sha1")
    sched.add_argument("--requests", type=int, default=16)
    sched.add_argument("--depths", default="1,2,3,4",
                       help="comma-separated search depths, cycled")
    sched.add_argument("--budget", type=float, default=5.0,
                       help="per-request time budget (protocol T)")
    sched.add_argument("--deadline", type=float, default=None,
                       help="client deadline attached to shallow requests")
    sched.add_argument("--batch-size", type=int, default=16384,
                       dest="batch_size")
    sched.add_argument("--seed", type=int, default=0)
    sched.set_defaults(fn=_cmd_sched)

    fleet = sub.add_parser(
        "fleet", help="multi-device dispatch demo / device-loss storm"
    )
    fleet.add_argument("--devices", default="host,host",
                       help="comma-separated device tokens, e.g. "
                            "host,flaky-apu or gpu,slow-host")
    fleet.add_argument("--hash", default="sha1")
    fleet.add_argument("--requests", type=int, default=8)
    fleet.add_argument("--depths", default="1,2,2,3",
                       help="comma-separated search depths, cycled")
    fleet.add_argument("--budget", type=float, default=None,
                       help="per-request time budget (protocol T)")
    fleet.add_argument("--batch-size", type=int, default=4096,
                       dest="batch_size")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--storm", action="store_true",
                       help="run the device-loss chaos storm instead "
                            "(kill a device mid-run; exit 1 on any lost "
                            "request, false auth, or byte mismatch)")
    fleet.add_argument("--kill-fraction", type=float, default=0.25,
                       dest="kill_fraction")
    fleet.add_argument("--revive-fraction", type=float, default=0.75,
                       dest="revive_fraction")
    fleet.set_defaults(fn=_cmd_fleet)

    directory = sub.add_parser(
        "directory",
        help="sharded enrollment directory demo / shard-loss storm",
    )
    directory.add_argument("--shards", type=int, default=8)
    directory.add_argument("--replication", type=int, default=2)
    directory.add_argument("--clients", type=int, default=None,
                           help="fleet size (default: 8 for the demo, "
                                "24 for the storm)")
    directory.add_argument("--seed", type=int, default=0)
    directory.add_argument("--storm", action="store_true",
                           help="run the shard-loss chaos storm instead "
                                "(kill one shard, then a whole replica "
                                "set, then revive; exit 1 on any false "
                                "auth, untyped shed, or unhealed replica)")
    directory.add_argument("--shed-ceiling", type=float, default=0.5,
                           dest="shed_ceiling",
                           help="max tolerated overall shed rate across "
                                "the storm's four waves")
    directory.set_defaults(fn=_cmd_directory)

    tenants = sub.add_parser(
        "tenants",
        help="noisy-neighbor storm: per-tenant quotas vs an aggressor "
             "burst (exit 1 if the victim's tail degrades or a shed "
             "is mistyped)",
    )
    tenants.add_argument("--hash", default="sha1")
    tenants.add_argument("--victims", type=int, default=6,
                         help="victim fleet size (requests)")
    tenants.add_argument("--aggressors", type=int, default=12,
                         help="aggressor burst size (requests)")
    tenants.add_argument("--aggressor-rate", type=float, default=1.0,
                         dest="aggressor_rate",
                         help="aggressor token-bucket refill "
                              "(lookups/second)")
    tenants.add_argument("--aggressor-burst", type=float, default=1.0,
                         dest="aggressor_burst",
                         help="aggressor token-bucket capacity")
    tenants.add_argument("--workers", type=int, default=2)
    tenants.add_argument("--seed", type=int, default=0)
    tenants.add_argument("--ratio-limit", type=float, default=1.25,
                         dest="ratio_limit",
                         help="allowed victim p99 degradation under "
                              "the storm")
    tenants.set_defaults(fn=_cmd_tenants)

    deploy = sub.add_parser(
        "deploy",
        help="multi-process deployment storm: real server/loadgen "
             "processes over TCP under emulated WAN profiles (exit 1 "
             "on any false auth, untyped failure, or unclean drain)",
    )
    deploy.add_argument("--storm", action="store_true",
                        help="stand up the topology, drive the trace, "
                             "scrape metrics, tear down")
    deploy.add_argument("--profiles", default=None,
                        help="comma-separated WAN profiles "
                             "(default: lan,wan,lossy-wan)")
    deploy.add_argument("--servers", type=int, default=1)
    deploy.add_argument("--devices", default="host,host",
                        help="fleet device tokens per server")
    deploy.add_argument("--engine", default="fleet",
                        choices=("fleet", "sched", "fifo"))
    deploy.add_argument("--hash", default="sha1")
    deploy.add_argument("--distance", type=int, default=2)
    deploy.add_argument("--workers", type=int, default=2)
    deploy.add_argument("--budget", type=float, default=5.0,
                        help="per-search time budget (protocol T)")
    deploy.add_argument("--clients", type=int, default=8,
                        help="enrolled fleet size")
    deploy.add_argument("--tenants", default=None,
                        help="comma-separated tenant namespaces")
    deploy.add_argument("--requests", type=int, default=36,
                        help="requests per profile")
    deploy.add_argument("--duration", type=float, default=6.0,
                        help="trace window in seconds")
    deploy.add_argument("--loadgens", type=int, default=2,
                        help="load-generator processes")
    deploy.add_argument("--time-scale", type=float, default=1.0,
                        dest="time_scale",
                        help="compress (<1) or stretch (>1) arrivals")
    deploy.add_argument("--seed", type=int, default=0)
    deploy.add_argument("--output", default=None,
                        help="write BENCH_deployment.json here "
                             "(BENCH_recovery.json with --crash)")
    deploy.add_argument("--crash", action="store_true",
                        help="kill-9 crash-restart storm instead of the "
                             "WAN-profile sweep: SIGKILL a server "
                             "mid-enrollment burst, restart it, gate on "
                             "zero acknowledged loss / nonce reuse / "
                             "false auths")
    deploy.add_argument("--crashes", type=int, default=3,
                        help="kill-9 rounds (--crash only)")
    deploy.add_argument("--max-restarts", type=int, default=8,
                        dest="max_restarts",
                        help="supervisor restart budget (--crash only)")
    deploy.add_argument("--fsync", default="",
                        help="WAL fsync policy: always, interval[:secs], "
                             "or none; empty keeps the in-memory store "
                             "(--crash forces always when empty)")
    deploy.set_defaults(fn=_cmd_deploy)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
