"""HMAC (RFC 2104) over the from-scratch hash implementations.

Used by the hardened session layer (:mod:`repro.net.session`) to
authenticate handshake responses: a compromised network cannot redirect
a client to attacker-chosen PUF addresses without the enrollment-derived
MAC key. Validated against RFC 4231 / ``hmac`` stdlib vectors in tests.
"""

from __future__ import annotations

from typing import Callable

from repro.hashes.sha1 import sha1
from repro.hashes.sha256 import sha256
from repro.hashes.sha3 import sha3_256
from repro.hashes.sha512 import sha512

__all__ = ["hmac_digest", "hmac_verify"]

#: (hash function, block size in bytes) per supported algorithm.
_HASHES: dict[str, tuple[Callable[[bytes], bytes], int]] = {
    "sha1": (sha1, 64),
    "sha256": (sha256, 64),
    "sha512": (sha512, 128),
    # SHA-3 needs no HMAC (sponge keying suffices), but HMAC-SHA3 is
    # standardized; rate-derived block size per FIPS 202 / NIST guidance.
    "sha3-256": (sha3_256, 136),
}


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """HMAC(key, message) with the named from-scratch hash."""
    if hash_name not in _HASHES:
        raise KeyError(f"unsupported HMAC hash {hash_name!r}; options: {sorted(_HASHES)}")
    hash_fn, block_size = _HASHES[hash_name]
    if len(key) > block_size:
        key = hash_fn(key)
    key = key.ljust(block_size, b"\x00")
    inner = hash_fn(bytes(k ^ 0x36 for k in key) + message)
    return hash_fn(bytes(k ^ 0x5C for k in key) + inner)


def hmac_verify(
    key: bytes, message: bytes, tag: bytes, hash_name: str = "sha256"
) -> bool:
    """Constant-time-ish tag comparison (length-independent accumulate)."""
    expected = hmac_digest(key, message, hash_name)
    if len(tag) != len(expected):
        return False
    diff = 0
    for a, b in zip(tag, expected):
        diff |= a ^ b
    return diff == 0
