"""SHA-3 (Keccak) from scratch (FIPS 202).

The paper's secure hash of choice: standardized by NIST, one-way, and —
unlike the AES used by the original RBC engine — asymmetric-friendly (the
digest reveals nothing useful about the seed beyond equality).

This module implements the full Keccak-f[1600] permutation and the four
SHA-3 fixed-length variants. The sponge is written for arbitrary-length
input; the fixed-input fast path the paper describes (Section 3.2.2) lives
in the batch kernel (:mod:`repro.hashes.batch_sha3`) where it matters.
"""

from __future__ import annotations

__all__ = [
    "keccak_f1600",
    "keccak_sponge",
    "sha3_224",
    "sha3_256",
    "sha3_384",
    "sha3_512",
    "ROUND_CONSTANTS",
    "ROTATION_OFFSETS",
]

_MASK64 = (1 << 64) - 1

# Iota step round constants for the 24 rounds of Keccak-f[1600].
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rho step rotation offsets, indexed [x][y] for lane A[x, y].
ROTATION_OFFSETS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)


def _rotl64(x: int, s: int) -> int:
    s %= 64
    if s == 0:
        return x
    return ((x << s) | (x >> (64 - s))) & _MASK64


def keccak_f1600(lanes: list[int]) -> list[int]:
    """Apply Keccak-f[1600] to 25 lanes (index = x + 5*y), returning new lanes."""
    if len(lanes) != 25:
        raise ValueError("Keccak-f[1600] state is 25 lanes")
    a = list(lanes)
    for rc in ROUND_CONSTANTS:
        # Theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] ^= d[x]
        # Rho and Pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    a[x + 5 * y], ROTATION_OFFSETS[x][y]
                )
        # Chi
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] = b[x + 5 * y] ^ (
                    (~b[(x + 1) % 5 + 5 * y] & _MASK64) & b[(x + 2) % 5 + 5 * y]
                )
        # Iota
        a[0] ^= rc
    return a


def keccak_sponge(
    data: bytes, rate_bytes: int, digest_size: int, domain: int = 0x06
) -> bytes:
    """Generic Keccak sponge: absorb ``data``, squeeze ``digest_size`` bytes.

    ``domain`` is the domain-separation suffix prepended to the 10*1 pad
    (0x06 for SHA-3, 0x1F for SHAKE).
    """
    if not 0 < rate_bytes < 200:
        raise ValueError("rate must be in (0, 200) bytes")
    lanes = [0] * 25
    # Absorb full blocks.
    offset = 0
    while len(data) - offset >= rate_bytes:
        block = data[offset : offset + rate_bytes]
        for i in range(rate_bytes // 8):
            lanes[i] ^= int.from_bytes(block[8 * i : 8 * i + 8], "little")
        lanes = keccak_f1600(lanes)
        offset += rate_bytes
    # Pad the final (possibly empty) partial block: domain bits then 10*1.
    block = bytearray(data[offset:])
    block.append(domain)
    block.extend(b"\x00" * (rate_bytes - len(block)))
    block[rate_bytes - 1] |= 0x80
    for i in range(rate_bytes // 8):
        lanes[i] ^= int.from_bytes(block[8 * i : 8 * i + 8], "little")
    lanes = keccak_f1600(lanes)
    # Squeeze.
    out = bytearray()
    while len(out) < digest_size:
        for i in range(rate_bytes // 8):
            out.extend(lanes[i].to_bytes(8, "little"))
            if len(out) >= digest_size:
                break
        if len(out) < digest_size:
            lanes = keccak_f1600(lanes)
    return bytes(out[:digest_size])


def sha3_224(data: bytes) -> bytes:
    """SHA3-224 digest (rate 144, capacity 448)."""
    return keccak_sponge(data, rate_bytes=144, digest_size=28)


def sha3_256(data: bytes) -> bytes:
    """SHA3-256 digest (rate 136, capacity 512) — the paper's SHA-3."""
    return keccak_sponge(data, rate_bytes=136, digest_size=32)


def sha3_384(data: bytes) -> bytes:
    """SHA3-384 digest (rate 104, capacity 768)."""
    return keccak_sponge(data, rate_bytes=104, digest_size=48)


def sha3_512(data: bytes) -> bytes:
    """SHA3-512 digest (rate 72, capacity 1024)."""
    return keccak_sponge(data, rate_bytes=72, digest_size=64)
