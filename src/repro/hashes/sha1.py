"""SHA-1 from scratch (FIPS 180-4).

Included for parity with the paper's evaluation: SHA-1 is no longer
considered collision-resistant, but its low register footprint makes it
the throughput-friendly end of the comparison (65k APU PEs vs SHA-3's
26k). Never use it for new security designs.
"""

from __future__ import annotations

import struct

__all__ = ["SHA1", "sha1"]

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, s: int) -> int:
    return ((x << s) | (x >> (32 - s))) & _MASK32


class SHA1:
    """Incremental SHA-1 with the familiar update()/digest() interface."""

    digest_size = 20
    block_size = 64
    name = "sha1"

    _H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

    def __init__(self, data: bytes = b""):
        self._h = list(self._H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        """Absorb more message bytes; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            tmp = (_rotl32(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, tmp
        self._h = [
            (h + v) & _MASK32 for h, v in zip(self._h, (a, b, c, d, e))
        ]

    def digest(self) -> bytes:
        # Finalize on a copy so update() can continue afterwards.
        """The digest of everything absorbed so far (non-finalizing)."""
        h = list(self._h)
        buffer = self._buffer
        bit_length = self._length * 8
        padded = buffer + b"\x80"
        pad_zeros = (56 - len(padded) % 64) % 64
        padded += b"\x00" * pad_zeros + struct.pack(">Q", bit_length)
        clone = SHA1()
        clone._h = h
        for off in range(0, len(padded), 64):
            clone._compress(padded[off : off + 64])
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        """The digest as a hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """An independent clone of the current hash state."""
        clone = SHA1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
