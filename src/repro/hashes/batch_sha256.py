"""NumPy-vectorized SHA-256 over batches of 256-bit seeds.

Same one-hash-per-lane mapping as :mod:`repro.hashes.batch_sha1`; provided
as the SHA-2 point in the design space between SHA-1 (cheapest) and SHA-3
(largest state footprint).
"""

from __future__ import annotations

import numpy as np

from repro.hashes.batch_sha1 import _padded_block_fixed, _padded_block_generic

__all__ = ["sha256_batch_seeds", "sha256_digest_to_words", "SHA256_INITIAL_STATE"]

_U32 = np.uint32

SHA256_INITIAL_STATE = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_K = np.array([
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
], dtype=_U32)


def _rotr32(x: np.ndarray, s: int) -> np.ndarray:
    return (x >> _U32(s)) | (x << _U32(32 - s))


def sha256_batch_seeds(words: np.ndarray, fixed_padding: bool = True) -> np.ndarray:
    """SHA-256 digests of N 256-bit seeds: ``(N, 4)`` uint64 -> ``(N, 8)`` uint32."""
    block = (_padded_block_fixed if fixed_padding else _padded_block_generic)(words)
    n = block[0].shape[0]

    state = [np.full(n, h, dtype=_U32) for h in SHA256_INITIAL_STATE]
    a, b, c, d, e, f, g, h = state

    w = list(block)  # 16-deep ring buffer
    for t in range(64):
        idx = t & 15
        if t >= 16:
            w15 = w[(t - 15) & 15]
            w2 = w[(t - 2) & 15]
            s0 = _rotr32(w15, 7) ^ _rotr32(w15, 18) ^ (w15 >> _U32(3))
            s1 = _rotr32(w2, 17) ^ _rotr32(w2, 19) ^ (w2 >> _U32(10))
            w[idx] = w[idx] + s0 + w[(t - 7) & 15] + s1
        wt = w[idx]
        big_s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = h + big_s1 + ch + _K[t] + wt
        big_s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = big_s0 + maj
        h, g, f, e, d, c, b, a = g, f, e, d + temp1, c, b, a, temp1 + temp2

    out = np.empty((n, 8), dtype=_U32)
    for i, (col, h0) in enumerate(zip((a, b, c, d, e, f, g, h), SHA256_INITIAL_STATE)):
        out[:, i] = col + _U32(h0)
    return out


def sha256_digest_to_words(digest: bytes) -> np.ndarray:
    """A 32-byte SHA-256 digest as the ``(8,)`` uint32 comparison form."""
    if len(digest) != 32:
        raise ValueError("SHA-256 digests are 32 bytes")
    return np.frombuffer(digest, dtype=">u4").astype(_U32)
