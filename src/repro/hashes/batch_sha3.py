"""NumPy-vectorized Keccak-f[1600] / SHA3-256 over batches of seeds.

The state is a list of 25 lanes, each a ``(N,)`` uint64 array — lane-major
layout so that every theta/rho/pi/chi operation streams over contiguous
memory (the batch equivalent of coalesced GPU accesses).

The fixed-padding fast path (Section 3.2.2 of the paper) exploits that RBC
only hashes 32-byte seeds: the padded sponge block is four message lanes
plus two constant lanes, so absorption skips all length logic.
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import SEED_WORDS64
from repro.hashes.sha3 import ROUND_CONSTANTS, ROTATION_OFFSETS

__all__ = [
    "keccak_f1600_batch",
    "sha3_256_batch_seeds",
    "sha3_256_batch_seeds_suffixed",
    "sha3_256_digest_to_words",
]

_U64 = np.uint64
_RATE_LANES_SHA3_256 = 136 // 8  # 17

# Flattened (src_index, dst_index, rotation) schedule for rho+pi.
_RHO_PI = tuple(
    (x + 5 * y, y + 5 * ((2 * x + 3 * y) % 5), ROTATION_OFFSETS[x][y])
    for x in range(5)
    for y in range(5)
)

_RC_ARRAYS = tuple(np.uint64(rc) for rc in ROUND_CONSTANTS)


def _rotl64(x: np.ndarray, s: int) -> np.ndarray:
    if s == 0:
        return x
    return (x << _U64(s)) | (x >> _U64(64 - s))


def keccak_f1600_batch(lanes: list[np.ndarray]) -> list[np.ndarray]:
    """Apply Keccak-f[1600] to N states at once.

    ``lanes`` is 25 arrays of shape ``(N,)`` uint64 (index = x + 5*y).
    The input arrays are not modified.
    """
    if len(lanes) != 25:
        raise ValueError("Keccak-f[1600] state is 25 lanes")
    a = [lane.copy() for lane in lanes]
    for rc in _RC_ARRAYS:
        # Theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            dx = d[x]
            for y in range(5):
                a[x + 5 * y] ^= dx
        # Rho + Pi
        b = [None] * 25
        for src, dst, rot in _RHO_PI:
            b[dst] = _rotl64(a[src], rot)
        # Chi
        for y in range(5):
            row = b[5 * y : 5 * y + 5]
            for x in range(5):
                a[x + 5 * y] = row[x] ^ (~row[(x + 1) % 5] & row[(x + 2) % 5])
        # Iota
        a[0] = a[0] ^ rc
    return a


def _absorb_seed_block_fixed(words: np.ndarray) -> list[np.ndarray]:
    """Initial sponge state for a 32-byte message with the fixed pad."""
    words = np.asarray(words, dtype=_U64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    n = words.shape[0]
    zero = np.zeros(n, dtype=_U64)
    lanes: list[np.ndarray] = []
    # Seed bytes are big-endian; Keccak absorbs little-endian lanes, so
    # lane j is the byteswap of seed word (3 - j).
    for j in range(SEED_WORDS64):
        lanes.append(words[:, SEED_WORDS64 - 1 - j].byteswap())
    # Fixed padding: byte 32 = 0x06 (lane 4 LSB), byte 135 = 0x80 (lane 16 MSB).
    lanes.append(np.full(n, 0x06, dtype=_U64))
    lanes.extend(zero for _ in range(5, 16))
    lanes.append(np.full(n, 0x8000000000000000, dtype=_U64))
    lanes.extend(zero for _ in range(17, 25))
    return lanes


def _absorb_seed_block_generic(words: np.ndarray) -> list[np.ndarray]:
    """Initial sponge state built by the general padding routine.

    Performs the byte-level work a variable-length sponge would: build
    the padded byte block from the message length, place the domain
    suffix and the final pad bit with computed indices, then pack lanes.
    The output is identical to the fixed template; the difference is the
    per-call work, which is what bench_s322 measures.
    """
    words = np.asarray(words, dtype=_U64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    n = words.shape[0]
    rate = 136
    msg_bytes = 32
    # Byte-level block assembly, as a generic sponge implementation does.
    block = np.zeros((n, rate), dtype=np.uint8)
    msg_le = np.empty((n, SEED_WORDS64), dtype=_U64)
    for j in range(SEED_WORDS64):
        msg_le[:, j] = words[:, SEED_WORDS64 - 1 - j].byteswap()
    block[:, :msg_bytes] = msg_le.view(np.uint8).reshape(n, msg_bytes)
    block[:, msg_bytes] = 0x06
    block[:, rate - 1] |= 0x80
    lanes_2d = np.ascontiguousarray(block).view("<u8").reshape(n, rate // 8)
    lanes = [lanes_2d[:, j].copy() for j in range(rate // 8)]
    zero = np.zeros(n, dtype=_U64)
    lanes.extend(zero for _ in range(rate // 8, 25))
    return lanes


def sha3_256_batch_seeds(words: np.ndarray, fixed_padding: bool = True) -> np.ndarray:
    """SHA3-256 digests of N seeds: ``(N, 4)`` uint64 -> ``(N, 4)`` uint64.

    Output columns are the first four state lanes (little-endian digest
    words), so equality against a target digest is a 4-column compare.
    """
    absorb = _absorb_seed_block_fixed if fixed_padding else _absorb_seed_block_generic
    lanes = keccak_f1600_batch(absorb(words))
    n = lanes[0].shape[0]
    out = np.empty((n, 4), dtype=_U64)
    for j in range(4):
        out[:, j] = lanes[j]
    return out


def sha3_256_batch_seeds_suffixed(words: np.ndarray, suffix: bytes) -> np.ndarray:
    """SHA3-256 of ``seed ‖ suffix`` for N seeds, vectorized.

    The nonce-binding kernel of the hardened session layer: the 32-byte
    seed plus a suffix of up to 103 bytes still fits one 136-byte rate
    block, so replay protection costs nothing over the plain kernel.
    Row i equals ``sha3_256(seed_i + suffix)``.
    """
    if len(suffix) > 136 - 32 - 1:
        raise ValueError("suffix must leave room for padding in one rate block")
    words = np.asarray(words, dtype=_U64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    n = words.shape[0]
    # Constant tail: suffix bytes, domain bits, final pad bit.
    tail = bytearray(136 - 32)
    tail[: len(suffix)] = suffix
    tail[len(suffix)] = 0x06
    tail[-1] |= 0x80
    tail_lanes = np.frombuffer(bytes(tail), dtype="<u8")

    lanes: list[np.ndarray] = []
    for j in range(SEED_WORDS64):
        lanes.append(words[:, SEED_WORDS64 - 1 - j].byteswap())
    for lane_value in tail_lanes:
        lanes.append(np.full(n, lane_value, dtype=_U64))
    zero = np.zeros(n, dtype=_U64)
    lanes.extend(zero for _ in range(len(lanes), 25))
    out_lanes = keccak_f1600_batch(lanes)
    out = np.empty((n, 4), dtype=_U64)
    for j in range(4):
        out[:, j] = out_lanes[j]
    return out


def sha3_256_digest_to_words(digest: bytes) -> np.ndarray:
    """A 32-byte SHA3-256 digest as the ``(4,)`` uint64 comparison form."""
    if len(digest) != 32:
        raise ValueError("SHA3-256 digests are 32 bytes")
    return np.frombuffer(digest, dtype="<u8").astype(_U64)
