"""NumPy-vectorized Keccak-f[1600] / SHA3-256 over batches of seeds.

The state is a list of 25 lanes, each a ``(N,)`` uint64 array — lane-major
layout so that every theta/rho/pi/chi operation streams over contiguous
memory (the batch equivalent of coalesced GPU accesses).

The fixed-padding fast path (Section 3.2.2 of the paper) exploits that RBC
only hashes 32-byte seeds: the padded sponge block is four message lanes
plus two constant lanes, so absorption skips all length logic.

The permutation itself is allocation-free in steady state: every theta /
rho+pi / chi temporary lives in a per-batch-size scratch workspace
(:class:`_KeccakScratch`) and all bitwise operations write through
``out=`` parameters. Before this, one ``keccak_f1600_batch`` call
allocated ~50 fresh arrays per round (~1200 per permutation); now the
only steady-state allocation on the fixed-padding path is the ``(N, 4)``
digest output. Scratch workspaces are cached per (thread, batch size),
so concurrent server threads never share mutable state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro._bitutils import SEED_WORDS64
from repro.hashes.sha3 import ROTATION_OFFSETS, ROUND_CONSTANTS

__all__ = [
    "keccak_f1600_batch",
    "sha3_256_batch_seeds",
    "sha3_256_batch_seeds_suffixed",
    "sha3_256_digest_to_words",
]

_U64 = np.uint64
_RATE_LANES_SHA3_256 = 136 // 8  # 17

# Flattened (src_index, dst_index, rotation) schedule for rho+pi.
_RHO_PI = tuple(
    (x + 5 * y, y + 5 * ((2 * x + 3 * y) % 5), ROTATION_OFFSETS[x][y])
    for x in range(5)
    for y in range(5)
)

_RC_ARRAYS = tuple(np.uint64(rc) for rc in ROUND_CONSTANTS)

#: Scratch workspaces kept per batch size; a bigger cache would only help
#: workloads that cycle through many distinct lane widths.
_SCRATCH_CACHE_SIZE = 4


def _rotl64(x: np.ndarray, s: int) -> np.ndarray:
    if s == 0:
        return x
    return (x << _U64(s)) | (x >> _U64(64 - s))


class _KeccakScratch:
    """Preallocated state + temporaries for one batch size ``n``.

    ``a`` is the live sponge state, ``b`` the rho+pi staging plane,
    ``c``/``d`` the theta columns, ``t`` a rotation temporary. All 57
    arrays are allocated once and reused across permutations.
    """

    __slots__ = ("n", "a", "b", "c", "d", "t")

    def __init__(self, n: int):
        self.n = n
        self.a = [np.empty(n, dtype=_U64) for _ in range(25)]
        self.b = [np.empty(n, dtype=_U64) for _ in range(25)]
        self.c = [np.empty(n, dtype=_U64) for _ in range(5)]
        self.d = [np.empty(n, dtype=_U64) for _ in range(5)]
        self.t = np.empty(n, dtype=_U64)


_scratch_local = threading.local()


def _scratch_for(n: int) -> _KeccakScratch:
    """The calling thread's scratch workspace for batch size ``n``."""
    cache: OrderedDict[int, _KeccakScratch] | None
    cache = getattr(_scratch_local, "cache", None)
    if cache is None:
        cache = OrderedDict()
        _scratch_local.cache = cache
    scratch = cache.get(n)
    if scratch is None:
        scratch = _KeccakScratch(n)
        cache[n] = scratch
        while len(cache) > _SCRATCH_CACHE_SIZE:
            cache.popitem(last=False)
    else:
        cache.move_to_end(n)
    return scratch


def _rotl64_into(src: np.ndarray, s: int, out: np.ndarray, tmp: np.ndarray) -> None:
    """``out = rotl64(src, s)`` with no allocation (``tmp`` is scratch)."""
    np.left_shift(src, _U64(s), out=out)
    np.right_shift(src, _U64(64 - s), out=tmp)
    np.bitwise_or(out, tmp, out=out)


def _permute_inplace(scratch: _KeccakScratch) -> None:
    """Keccak-f[1600] on ``scratch.a``, in place, allocation-free."""
    a, b, c, d, t = scratch.a, scratch.b, scratch.c, scratch.d, scratch.t
    for rc in _RC_ARRAYS:
        # Theta
        for x in range(5):
            cx = c[x]
            np.bitwise_xor(a[x], a[x + 5], out=cx)
            np.bitwise_xor(cx, a[x + 10], out=cx)
            np.bitwise_xor(cx, a[x + 15], out=cx)
            np.bitwise_xor(cx, a[x + 20], out=cx)
        for x in range(5):
            dx = d[x]
            _rotl64_into(c[(x + 1) % 5], 1, dx, t)
            np.bitwise_xor(dx, c[(x - 1) % 5], out=dx)
        for x in range(5):
            dx = d[x]
            for y in range(5):
                axy = a[x + 5 * y]
                np.bitwise_xor(axy, dx, out=axy)
        # Rho + Pi
        for src, dst, rot in _RHO_PI:
            if rot == 0:
                np.copyto(b[dst], a[src])
            else:
                _rotl64_into(a[src], rot, b[dst], t)
        # Chi
        for y in range(5):
            base = 5 * y
            for x in range(5):
                out = a[base + x]
                np.bitwise_not(b[base + (x + 1) % 5], out=t)
                np.bitwise_and(t, b[base + (x + 2) % 5], out=t)
                np.bitwise_xor(b[base + x], t, out=out)
        # Iota
        np.bitwise_xor(a[0], rc, out=a[0])


def keccak_f1600_batch(lanes: list[np.ndarray]) -> list[np.ndarray]:
    """Apply Keccak-f[1600] to N states at once.

    ``lanes`` is 25 arrays of shape ``(N,)`` uint64 (index = x + 5*y).
    The input arrays are not modified; fresh output arrays are returned.
    Internally the permutation runs in the preallocated scratch
    workspace, so the per-round temporaries cost nothing.
    """
    if len(lanes) != 25:
        raise ValueError("Keccak-f[1600] state is 25 lanes")
    n = int(np.asarray(lanes[0]).shape[0])
    scratch = _scratch_for(n)
    for j in range(25):
        np.copyto(scratch.a[j], np.asarray(lanes[j], dtype=_U64))
    _permute_inplace(scratch)
    return [lane.copy() for lane in scratch.a]


def _absorb_seed_block_fixed(words: np.ndarray, scratch: _KeccakScratch) -> None:
    """Write the fixed-pad sponge state for 32-byte messages into scratch."""
    a = scratch.a
    # Seed bytes are big-endian; Keccak absorbs little-endian lanes, so
    # lane j is the byteswap of seed word (3 - j).
    for j in range(SEED_WORDS64):
        np.copyto(a[j], words[:, SEED_WORDS64 - 1 - j])
        a[j].byteswap(inplace=True)
    # Fixed padding: byte 32 = 0x06 (lane 4 LSB), byte 135 = 0x80 (lane 16 MSB).
    a[4].fill(_U64(0x06))
    for j in range(5, 16):
        a[j].fill(0)
    a[16].fill(_U64(0x8000000000000000))
    for j in range(17, 25):
        a[j].fill(0)


def _absorb_seed_block_generic(words: np.ndarray) -> list[np.ndarray]:
    """Initial sponge state built by the general padding routine.

    Performs the byte-level work a variable-length sponge would: build
    the padded byte block from the message length, place the domain
    suffix and the final pad bit with computed indices, then pack lanes.
    The output is identical to the fixed template; the difference is the
    per-call work, which is what bench_s322 measures.
    """
    n = words.shape[0]
    rate = 136
    msg_bytes = 32
    # Byte-level block assembly, as a generic sponge implementation does.
    block = np.zeros((n, rate), dtype=np.uint8)
    msg_le = np.empty((n, SEED_WORDS64), dtype=_U64)
    for j in range(SEED_WORDS64):
        msg_le[:, j] = words[:, SEED_WORDS64 - 1 - j].byteswap()
    block[:, :msg_bytes] = msg_le.view(np.uint8).reshape(n, msg_bytes)
    block[:, msg_bytes] = 0x06
    block[:, rate - 1] |= 0x80
    lanes_2d = np.ascontiguousarray(block).view("<u8").reshape(n, rate // 8)
    lanes = [lanes_2d[:, j].copy() for j in range(rate // 8)]
    zero = np.zeros(n, dtype=_U64)
    lanes.extend(zero for _ in range(rate // 8, 25))
    return lanes


def _checked_seed_words(words: np.ndarray) -> np.ndarray:
    words = np.asarray(words, dtype=_U64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    return words


def _squeeze_digest_words(scratch: _KeccakScratch) -> np.ndarray:
    """First four state lanes as the ``(N, 4)`` digest-word output."""
    out = np.empty((scratch.n, 4), dtype=_U64)
    for j in range(4):
        out[:, j] = scratch.a[j]
    return out


def sha3_256_batch_seeds(words: np.ndarray, fixed_padding: bool = True) -> np.ndarray:
    """SHA3-256 digests of N seeds: ``(N, 4)`` uint64 -> ``(N, 4)`` uint64.

    Output columns are the first four state lanes (little-endian digest
    words), so equality against a target digest is a 4-column compare.
    On the fixed-padding path the only allocation is the output array.
    """
    words = _checked_seed_words(words)
    scratch = _scratch_for(words.shape[0])
    if fixed_padding:
        _absorb_seed_block_fixed(words, scratch)
    else:
        lanes = _absorb_seed_block_generic(words)
        for j in range(25):
            np.copyto(scratch.a[j], lanes[j])
    _permute_inplace(scratch)
    return _squeeze_digest_words(scratch)


def sha3_256_batch_seeds_suffixed(words: np.ndarray, suffix: bytes) -> np.ndarray:
    """SHA3-256 of ``seed ‖ suffix`` for N seeds, vectorized.

    The nonce-binding kernel of the hardened session layer: the 32-byte
    seed plus a suffix of up to 103 bytes still fits one 136-byte rate
    block, so replay protection costs nothing over the plain kernel.
    Row i equals ``sha3_256(seed_i + suffix)``.
    """
    if len(suffix) > 136 - 32 - 1:
        raise ValueError("suffix must leave room for padding in one rate block")
    words = _checked_seed_words(words)
    scratch = _scratch_for(words.shape[0])
    # Constant tail: suffix bytes, domain bits, final pad bit.
    tail = bytearray(136 - 32)
    tail[: len(suffix)] = suffix
    tail[len(suffix)] = 0x06
    tail[-1] |= 0x80
    tail_lanes = np.frombuffer(bytes(tail), dtype="<u8")

    a = scratch.a
    for j in range(SEED_WORDS64):
        np.copyto(a[j], words[:, SEED_WORDS64 - 1 - j])
        a[j].byteswap(inplace=True)
    for j, lane_value in enumerate(tail_lanes, start=SEED_WORDS64):
        a[j].fill(_U64(lane_value))
    for j in range(SEED_WORDS64 + tail_lanes.shape[0], 25):
        a[j].fill(0)
    _permute_inplace(scratch)
    return _squeeze_digest_words(scratch)


def sha3_256_digest_to_words(digest: bytes) -> np.ndarray:
    """A 32-byte SHA3-256 digest as the ``(4,)`` uint64 comparison form."""
    if len(digest) != 32:
        raise ValueError("SHA3-256 digests are 32 bytes")
    return np.frombuffer(digest, dtype="<u8").astype(_U64)
