"""NumPy-vectorized SHA-512 over batches of 256-bit seeds.

Completes the batched family: 64-bit lanes, one 1024-bit block per
32-byte seed. Registered in the hash registry so every engine (batch
executor, parallel, cluster) can sweep it alongside the paper's two.
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import SEED_WORDS64
from repro.hashes.sha512 import _H512, _K

__all__ = ["sha512_batch_seeds", "sha512_digest_to_words"]

_U64 = np.uint64
_K_NP = np.array(_K, dtype=_U64)


def _rotr64(x: np.ndarray, s: int) -> np.ndarray:
    return (x >> _U64(s)) | (x << _U64(64 - s))


def _message_block(words: np.ndarray, fixed_padding: bool = True) -> list[np.ndarray]:
    """One padded 1024-bit block (16 uint64 words) per seed."""
    words = np.asarray(words, dtype=_U64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    n = words.shape[0]
    zero = np.zeros(n, dtype=_U64)
    # Big-endian message words: seed word (3 - i) is message word i.
    block = [words[:, SEED_WORDS64 - 1 - i].copy() for i in range(SEED_WORDS64)]
    if fixed_padding:
        block.append(np.full(n, 1 << 63, dtype=_U64))  # 0x80 marker word
        block.extend(zero for _ in range(5, 15))
        block.append(np.full(n, 256, dtype=_U64))  # bit length
    else:
        # Generic path: compute geometry from the length at call time.
        msg_bytes = 32
        total_words = 16
        rest = [np.zeros(n, dtype=_U64) for _ in range(total_words - SEED_WORDS64)]
        marker_word, marker_byte = divmod(msg_bytes, 8)
        rest[marker_word - SEED_WORDS64] = rest[marker_word - SEED_WORDS64] | _U64(
            0x80 << (8 * (7 - marker_byte))
        )
        bit_length = msg_bytes * 8
        rest[-1] = rest[-1] | _U64(bit_length)
        block.extend(rest)
    return block


def sha512_batch_seeds(words: np.ndarray, fixed_padding: bool = True) -> np.ndarray:
    """SHA-512 digests of N seeds: ``(N, 4)`` uint64 -> ``(N, 8)`` uint64."""
    w = _message_block(words, fixed_padding)
    n = w[0].shape[0]
    state = [np.full(n, h, dtype=_U64) for h in _H512]
    a, b, c, d, e, f, g, h = state

    ring = list(w)
    for t in range(80):
        idx = t & 15
        if t >= 16:
            w15 = ring[(t - 15) & 15]
            w2 = ring[(t - 2) & 15]
            s0 = _rotr64(w15, 1) ^ _rotr64(w15, 8) ^ (w15 >> _U64(7))
            s1 = _rotr64(w2, 19) ^ _rotr64(w2, 61) ^ (w2 >> _U64(6))
            ring[idx] = ring[idx] + s0 + ring[(t - 7) & 15] + s1
        wt = ring[idx]
        big_s1 = _rotr64(e, 14) ^ _rotr64(e, 18) ^ _rotr64(e, 41)
        ch = (e & f) ^ (~e & g)
        temp1 = h + big_s1 + ch + _K_NP[t] + wt
        big_s0 = _rotr64(a, 28) ^ _rotr64(a, 34) ^ _rotr64(a, 39)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = big_s0 + maj
        h, g, f, e, d, c, b, a = g, f, e, d + temp1, c, b, a, temp1 + temp2

    out = np.empty((n, 8), dtype=_U64)
    for i, (col, init) in enumerate(zip((a, b, c, d, e, f, g, h), _H512)):
        out[:, i] = col + _U64(init)
    return out


def sha512_digest_to_words(digest: bytes) -> np.ndarray:
    """A 64-byte SHA-512 digest as the ``(8,)`` uint64 comparison form."""
    if len(digest) != 64:
        raise ValueError("SHA-512 digests are 64 bytes")
    return np.frombuffer(digest, dtype=">u8").astype(_U64)
