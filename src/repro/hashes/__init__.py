"""Hashing substrate: from-scratch scalar and batched SHA implementations.

RBC-SALTED replaces per-candidate public-key generation with a single hash
per candidate seed, so hash throughput *is* protocol throughput. This
package provides:

* Scalar reference implementations of SHA-1, SHA-256 and SHA-3 (Keccak),
  written from the FIPS specifications and validated against ``hashlib``
  in the test suite.
* NumPy-vectorized *batch* kernels that hash many independent 256-bit
  seeds at once — the reproduction's analogue of the paper's
  one-thread-per-hash GPU kernels (contrast with the multi-thread-per-hash
  GPU work the related-work section dismisses).
* The fixed-padding optimization of the paper's Section 3.2.2: RBC only
  ever hashes 32-byte seeds, so the padded block is a constant template.

The paper evaluates SHA-1 (insecure; included for the cross-platform
comparison) and SHA-3. SHA-256 is included as a natural extension point.
"""

from repro.hashes.sha1 import sha1, SHA1
from repro.hashes.sha256 import sha256, SHA256
from repro.hashes.sha512 import sha512, sha384, SHA512
from repro.hashes.sha3 import sha3_256, sha3_224, sha3_384, sha3_512, keccak_f1600
from repro.hashes.hmac import hmac_digest, hmac_verify
from repro.hashes.batch_sha1 import sha1_batch_seeds, sha1_digest_to_words
from repro.hashes.batch_sha256 import sha256_batch_seeds, sha256_digest_to_words
from repro.hashes.batch_sha3 import (
    sha3_256_batch_seeds,
    sha3_256_digest_to_words,
    keccak_f1600_batch,
)
from repro.hashes.registry import HashAlgorithm, get_hash, available_hashes

__all__ = [
    "sha1",
    "SHA1",
    "sha256",
    "SHA256",
    "sha512",
    "sha384",
    "SHA512",
    "hmac_digest",
    "hmac_verify",
    "sha3_256",
    "sha3_224",
    "sha3_384",
    "sha3_512",
    "keccak_f1600",
    "sha1_batch_seeds",
    "sha1_digest_to_words",
    "sha256_batch_seeds",
    "sha256_digest_to_words",
    "sha3_256_batch_seeds",
    "sha3_256_digest_to_words",
    "keccak_f1600_batch",
    "HashAlgorithm",
    "get_hash",
    "available_hashes",
]
