"""Hash algorithm registry.

Binds together, per algorithm: the scalar reference function, the batch
kernel, the digest-to-words converter for vectorized comparison, and the
APU state footprint (the paper's resource metric — a SHA-1 PE occupies
2 bit-processors of 16 bits each, a SHA-3 PE occupies 5; Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hashes.batch_sha1 import sha1_batch_seeds, sha1_digest_to_words
from repro.hashes.batch_sha256 import sha256_batch_seeds, sha256_digest_to_words
from repro.hashes.batch_sha3 import sha3_256_batch_seeds, sha3_256_digest_to_words
from repro.hashes.batch_sha512 import sha512_batch_seeds, sha512_digest_to_words
from repro.hashes.sha1 import sha1
from repro.hashes.sha256 import sha256
from repro.hashes.sha3 import sha3_256
from repro.hashes.sha512 import sha512

__all__ = ["HashAlgorithm", "get_hash", "available_hashes"]


@dataclass(frozen=True)
class HashAlgorithm:
    """Everything the search engine needs to know about one hash."""

    name: str
    digest_size: int
    #: APU bit-processors consumed per processing element (paper §3.3).
    apu_bps_per_pe: int
    #: Relative compute cost per hash (SHA-1 = 1.0); used by device models.
    relative_cost: float
    scalar: Callable[[bytes], bytes]
    batch: Callable[..., np.ndarray]
    digest_to_words: Callable[[bytes], np.ndarray]

    def hash_seed(self, seed: bytes) -> bytes:
        """Scalar digest of one 32-byte seed."""
        return self.scalar(seed)

    def hash_seeds_batch(
        self, words: np.ndarray, fixed_padding: bool = True
    ) -> np.ndarray:
        """Batched digests of ``(N, 4)`` uint64 seed words."""
        return self.batch(words, fixed_padding=fixed_padding)


_REGISTRY: dict[str, HashAlgorithm] = {}


def _register(algo: HashAlgorithm) -> HashAlgorithm:
    _REGISTRY[algo.name] = algo
    return algo


#: Relative costs follow the paper's GPU measurement: SHA-3 d=5 exhaustive
#: in 4.67 s vs SHA-1 in 1.56 s, i.e. SHA-3 approximately 3x SHA-1 per hash.
SHA1_ALGO = _register(
    HashAlgorithm(
        name="sha1",
        digest_size=20,
        apu_bps_per_pe=2,
        relative_cost=1.0,
        scalar=sha1,
        batch=sha1_batch_seeds,
        digest_to_words=sha1_digest_to_words,
    )
)

SHA256_ALGO = _register(
    HashAlgorithm(
        name="sha256",
        digest_size=32,
        apu_bps_per_pe=3,
        relative_cost=1.6,
        scalar=sha256,
        batch=sha256_batch_seeds,
        digest_to_words=sha256_digest_to_words,
    )
)

SHA3_ALGO = _register(
    HashAlgorithm(
        name="sha3-256",
        digest_size=32,
        apu_bps_per_pe=5,
        relative_cost=4.67 / 1.56,
        scalar=sha3_256,
        batch=sha3_256_batch_seeds,
        digest_to_words=sha3_256_digest_to_words,
    )
)

SHA512_ALGO = _register(
    HashAlgorithm(
        name="sha512",
        digest_size=64,
        # 64-bit SHA-2 state: a/..h (512 bits) + 16-word schedule window;
        # slightly above SHA-3's 80-bit metric in the paper's accounting.
        apu_bps_per_pe=6,
        relative_cost=2.2,
        scalar=sha512,
        batch=sha512_batch_seeds,
        digest_to_words=sha512_digest_to_words,
    )
)

_ALIASES = {
    "sha1": "sha1",
    "sha-1": "sha1",
    "sha256": "sha256",
    "sha-256": "sha256",
    "sha2": "sha256",
    "sha3": "sha3-256",
    "sha-3": "sha3-256",
    "sha3-256": "sha3-256",
    "sha3_256": "sha3-256",
    "sha512": "sha512",
    "sha-512": "sha512",
}


def get_hash(name: str) -> HashAlgorithm:
    """Look up a registered hash algorithm by name (aliases accepted)."""
    key = _ALIASES.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown hash {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def available_hashes() -> list[str]:
    """Names of all registered hash algorithms."""
    return sorted(_REGISTRY)
