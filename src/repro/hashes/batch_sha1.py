"""NumPy-vectorized SHA-1 over batches of 256-bit seeds.

One "virtual thread" per array lane: the batch kernel runs the 80-round
compression once over ``(N,)``-shaped uint32 arrays, hashing N independent
seeds per pass — the same one-hash-per-thread mapping as SALTED-GPU.

Seeds arrive in the canonical batch form, ``(N, 4)`` uint64 words with
word 0 holding bits 0..63 (see :mod:`repro._bitutils`); digests leave as
``(N, 5)`` uint32 arrays matching big-endian digest words, so a full
digest comparison is a vectorized 5-column equality test.

The message-schedule ring buffer keeps only 16 live W arrays instead of
80, per the memory-frugality guidance for array code (views, no copies).
"""

from __future__ import annotations

import numpy as np

from repro._bitutils import SEED_WORDS64

__all__ = ["sha1_batch_seeds", "sha1_digest_to_words", "SHA1_INITIAL_STATE"]

_U32 = np.uint32

SHA1_INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

_K = (np.uint32(0x5A827999), np.uint32(0x6ED9EBA1),
      np.uint32(0x8F1BBCDC), np.uint32(0xCA62C1D6))


def _rotl32(x: np.ndarray, s: int) -> np.ndarray:
    return (x << _U32(s)) | (x >> _U32(32 - s))


def _seed_words_to_message(words: np.ndarray) -> list[np.ndarray]:
    """``(N, 4)`` uint64 seeds -> 8 big-endian uint32 message words."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2 or words.shape[1] != SEED_WORDS64:
        raise ValueError(f"expected (N, {SEED_WORDS64}) seed words")
    msg: list[np.ndarray] = []
    for i in range(SEED_WORDS64):
        w = words[:, SEED_WORDS64 - 1 - i]
        msg.append((w >> np.uint64(32)).astype(_U32))
        msg.append((w & np.uint64(0xFFFFFFFF)).astype(_U32))
    return msg


def _padded_block_fixed(words: np.ndarray) -> list[np.ndarray]:
    """Single 512-bit block for a 32-byte message with precomputed padding."""
    msg = _seed_words_to_message(words)
    n = msg[0].shape[0]
    zero = np.zeros(n, dtype=_U32)
    block = msg + [np.full(n, 0x80000000, dtype=_U32)] + [zero] * 6
    block.append(np.full(n, 256, dtype=_U32))  # bit length of a 32-byte seed
    return block


def _padded_block_generic(words: np.ndarray) -> list[np.ndarray]:
    """General Merkle–Damgård padding computed at call time.

    Performs the same work a variable-length implementation would: derive
    pad geometry from the message length, place the 0x80 marker and the
    64-bit length with data-dependent indexing. For 32-byte seeds the
    result is identical to the fixed template; the extra work is what the
    paper's Section 3.2.2 optimization removes (~3%).
    """
    msg = _seed_words_to_message(words)
    n = msg[0].shape[0]
    msg_bytes = 32
    # Geometry computed as a general implementation would.
    padded_len = ((msg_bytes + 8) // 64 + 1) * 64 if (msg_bytes % 64) > 55 else (
        (msg_bytes // 64 + 1) * 64
    )
    total_words = padded_len // 4
    block = [np.zeros(n, dtype=_U32) for _ in range(total_words)]
    for i in range(msg_bytes // 4):
        block[i] = msg[i]
    marker_word, marker_byte = divmod(msg_bytes, 4)
    block[marker_word] = block[marker_word] | _U32(0x80 << (8 * (3 - marker_byte)))
    bit_length = msg_bytes * 8
    block[total_words - 1] = block[total_words - 1] | _U32(bit_length & 0xFFFFFFFF)
    block[total_words - 2] = block[total_words - 2] | _U32(bit_length >> 32)
    return block


def sha1_batch_seeds(words: np.ndarray, fixed_padding: bool = True) -> np.ndarray:
    """SHA-1 digests of N 256-bit seeds: ``(N, 4)`` uint64 -> ``(N, 5)`` uint32."""
    block = (_padded_block_fixed if fixed_padding else _padded_block_generic)(words)
    n = block[0].shape[0]

    a = np.full(n, SHA1_INITIAL_STATE[0], dtype=_U32)
    b = np.full(n, SHA1_INITIAL_STATE[1], dtype=_U32)
    c = np.full(n, SHA1_INITIAL_STATE[2], dtype=_U32)
    d = np.full(n, SHA1_INITIAL_STATE[3], dtype=_U32)
    e = np.full(n, SHA1_INITIAL_STATE[4], dtype=_U32)

    w = list(block)  # 16-deep ring buffer of schedule words
    for t in range(80):
        idx = t & 15
        if t >= 16:
            wt = _rotl32(w[(t - 3) & 15] ^ w[(t - 8) & 15]
                         ^ w[(t - 14) & 15] ^ w[idx], 1)
            w[idx] = wt
        else:
            wt = w[idx]
        if t < 20:
            f = (b & c) | (~b & d)
            k = _K[0]
        elif t < 40:
            f = b ^ c ^ d
            k = _K[1]
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = _K[2]
        else:
            f = b ^ c ^ d
            k = _K[3]
        tmp = _rotl32(a, 5) + f + e + k + wt
        e, d, c, b, a = d, c, _rotl32(b, 30), a, tmp

    out = np.empty((n, 5), dtype=_U32)
    out[:, 0] = a + _U32(SHA1_INITIAL_STATE[0])
    out[:, 1] = b + _U32(SHA1_INITIAL_STATE[1])
    out[:, 2] = c + _U32(SHA1_INITIAL_STATE[2])
    out[:, 3] = d + _U32(SHA1_INITIAL_STATE[3])
    out[:, 4] = e + _U32(SHA1_INITIAL_STATE[4])
    return out


def sha1_digest_to_words(digest: bytes) -> np.ndarray:
    """A 20-byte SHA-1 digest as the ``(5,)`` uint32 batch-comparison form."""
    if len(digest) != 20:
        raise ValueError("SHA-1 digests are 20 bytes")
    return np.frombuffer(digest, dtype=">u4").astype(_U32)
