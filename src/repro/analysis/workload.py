"""Authentication workload generation and server-capacity analysis.

The paper's title promises *high throughput*; this module quantifies it
operationally: how many clients per hour can one CA serve, at what
latency, given a device's search throughput and a realistic mix of
Hamming distances?

Pieces:

* :class:`WorkloadGenerator` — draws authentication requests with a
  configurable distance distribution (PUF-quality mix) and a Poisson
  arrival process;
* :func:`service_time_distribution` — per-request search times from a
  device model (average-case per shell position, like the trial harness);
* :class:`ServerCapacityModel` — M/G/1 queueing estimates (utilization,
  mean wait) plus a discrete-event simulation cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.combinatorics.binomial import binomial, exhaustive_seed_count

__all__ = [
    "WorkloadGenerator",
    "AuthRequest",
    "service_time_distribution",
    "ServerCapacityModel",
    "simulate_queue",
]


@dataclass(frozen=True)
class AuthRequest:
    """One authentication arrival."""

    arrival_seconds: float
    distance: int
    #: Position of the true seed within its shell, as a fraction [0, 1).
    shell_fraction: float


class WorkloadGenerator:
    """Poisson arrivals with a distance-mix profile.

    ``distance_weights`` maps Hamming distance -> probability; the default
    mix models a TAPKI-masked fleet (mostly tiny distances, a tail at 5).
    """

    DEFAULT_MIX = {0: 0.30, 1: 0.25, 2: 0.18, 3: 0.12, 4: 0.09, 5: 0.06}

    def __init__(
        self,
        arrivals_per_second: float,
        distance_weights: dict[int, float] | None = None,
        rng: np.random.Generator | None = None,
    ):
        if arrivals_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = arrivals_per_second
        weights = distance_weights if distance_weights is not None else self.DEFAULT_MIX
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("distance weights must sum to a positive value")
        self.distances = np.array(sorted(weights), dtype=np.int64)
        self.probabilities = np.array(
            [weights[d] / total for d in sorted(weights)], dtype=np.float64
        )
        self._rng = rng if rng is not None else np.random.default_rng()

    def generate(self, count: int) -> list[AuthRequest]:
        """``count`` requests with exponential inter-arrival gaps."""
        gaps = self._rng.exponential(1.0 / self.rate, size=count)
        arrivals = np.cumsum(gaps)
        distances = self._rng.choice(self.distances, size=count, p=self.probabilities)
        fractions = self._rng.random(count)
        return [
            AuthRequest(float(a), int(d), float(f))
            for a, d, f in zip(arrivals, distances, fractions)
        ]


def service_time_distribution(
    device_model,
    hash_name: str,
    requests: list[AuthRequest],
    **search_kwargs,
) -> np.ndarray:
    """Search seconds per request, from a device model.

    A request at distance d whose seed sits at shell fraction f costs the
    full shells below d plus fraction f of shell d (the same accounting
    as the trial harness); d = 0 costs a single-hash epsilon.
    """
    cache: dict[int, float] = {0: 0.0}

    def exhaustive_time(distance: int) -> float:
        """Cached exhaustive search time up to a distance."""
        if distance not in cache:
            cache[distance] = device_model.search_time(
                hash_name, distance, **search_kwargs
            )
        return cache[distance]

    times = np.empty(len(requests), dtype=np.float64)
    for i, request in enumerate(requests):
        if request.distance == 0:
            times[i] = 1e-6
            continue
        below = exhaustive_time(request.distance - 1)
        shell = exhaustive_time(request.distance) - below
        times[i] = below + request.shell_fraction * shell
    return times


@dataclass(frozen=True)
class CapacityEstimate:
    """M/G/1 capacity summary for one (device, hash, mix) point."""

    arrivals_per_second: float
    mean_service_seconds: float
    service_cv2: float
    utilization: float
    mean_wait_seconds: float
    mean_response_seconds: float
    stable: bool

    @property
    def authentications_per_hour(self) -> float:
        """Sustainable hourly authentication rate."""
        return self.arrivals_per_second * 3600.0


class ServerCapacityModel:
    """M/G/1 queueing estimates from a measured service distribution."""

    def __init__(self, service_seconds: np.ndarray):
        service_seconds = np.asarray(service_seconds, dtype=np.float64)
        if service_seconds.size == 0 or (service_seconds <= 0).any():
            raise ValueError("service times must be positive and non-empty")
        self.mean = float(service_seconds.mean())
        variance = float(service_seconds.var())
        self.cv2 = variance / self.mean**2 if self.mean > 0 else 0.0

    def estimate(self, arrivals_per_second: float) -> CapacityEstimate:
        """Pollaczek–Khinchine mean wait for the given arrival rate."""
        if arrivals_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        rho = arrivals_per_second * self.mean
        stable = rho < 1.0
        if stable:
            wait = rho * self.mean * (1.0 + self.cv2) / (2.0 * (1.0 - rho))
        else:
            wait = float("inf")
        return CapacityEstimate(
            arrivals_per_second=arrivals_per_second,
            mean_service_seconds=self.mean,
            service_cv2=self.cv2,
            utilization=rho,
            mean_wait_seconds=wait,
            mean_response_seconds=wait + self.mean if stable else float("inf"),
            stable=stable,
        )

    def max_stable_rate(self, target_utilization: float = 0.8) -> float:
        """Arrivals/second that keep utilization at the target."""
        if not 0 < target_utilization < 1:
            raise ValueError("target utilization must be in (0, 1)")
        return target_utilization / self.mean


def simulate_queue(
    requests: list[AuthRequest], service_seconds: np.ndarray
) -> dict[str, float]:
    """Discrete-event single-server FIFO queue (cross-check for M/G/1)."""
    if len(requests) != len(service_seconds):
        raise ValueError("requests and service times must align")
    clock = 0.0
    waits = np.empty(len(requests), dtype=np.float64)
    for i, (request, service) in enumerate(zip(requests, service_seconds)):
        start = max(clock, request.arrival_seconds)
        waits[i] = start - request.arrival_seconds
        clock = start + float(service)
    span = clock - requests[0].arrival_seconds if requests else 0.0
    return {
        "mean_wait_seconds": float(waits.mean()),
        "p95_wait_seconds": float(np.percentile(waits, 95)),
        "throughput_per_second": len(requests) / span if span > 0 else 0.0,
        "busy_fraction": float(np.sum(service_seconds) / span) if span > 0 else 0.0,
    }
