"""Plain-text table and heatmap rendering for the benchmark harness.

The benches print the same rows/series the paper reports; these helpers
keep that output aligned and diff-friendly (EXPERIMENTS.md is generated
from them).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_heatmap"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_heatmap(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: Sequence[Sequence[float]],
    value_format: str = "{:7.3f}",
    row_axis: str = "",
    col_axis: str = "",
    mark_minimum: bool = True,
) -> str:
    """Render a Figure 3-style numeric heatmap, minimum marked with '*'."""
    flat_min = min(v for row in values for v in row)
    header = [f"{row_axis}\\{col_axis}"] + [str(c) for c in col_labels]
    rows = []
    for label, row in zip(row_labels, values):
        cells = []
        for v in row:
            text = value_format.format(v)
            if mark_minimum and v == flat_min:
                text += "*"
            cells.append(text)
        rows.append([str(label)] + cells)
    return format_table(header, rows)
