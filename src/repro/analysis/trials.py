"""Stochastic trial harness — the paper's 1,200-trial average-case method.

The paper's "average case" rows are means over 1,200 authentications
with stochastic PUF noise. This harness reproduces the methodology at
configurable trial counts, against either the real executor (reduced
Hamming distances) or a device model (paper scale), and compares the
empirical mean with the analytic Equation 3 expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._bitutils import SEED_BITS, flip_bits
from repro.combinatorics.binomial import average_seed_count, exhaustive_seed_count

__all__ = ["TrialStatistics", "run_search_trials", "run_device_trials"]


@dataclass(frozen=True)
class TrialStatistics:
    """Summary of a batch of stochastic search trials."""

    trials: int
    distance: int
    mean_seeds: float
    std_seeds: float
    min_seeds: int
    max_seeds: int
    mean_seconds: float
    analytic_average: int
    exhaustive: int

    @property
    def mean_vs_analytic(self) -> float:
        """Empirical mean / Equation 3 expectation (→ 1.0 as trials grow)."""
        return self.mean_seeds / self.analytic_average

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.trials} trials at d={self.distance}: "
            f"mean {self.mean_seeds:,.0f} seeds "
            f"(analytic a(d) = {self.analytic_average:,}; "
            f"ratio {self.mean_vs_analytic:.3f}), "
            f"σ = {self.std_seeds:,.0f}, "
            f"range [{self.min_seeds:,}, {self.max_seeds:,}], "
            f"mean time {self.mean_seconds * 1e3:.1f} ms"
        )


def run_search_trials(
    executor,
    hash_scalar,
    distance: int,
    trials: int,
    rng: np.random.Generator | None = None,
) -> TrialStatistics:
    """Plant a seed uniformly at exactly ``distance`` and search, N times.

    ``executor`` is any engine with ``search(base, digest, d)``;
    ``hash_scalar`` produces the client digest from the planted seed.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    seeds_hashed = np.empty(trials, dtype=np.int64)
    seconds = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        base = rng.bytes(32)
        positions = rng.choice(SEED_BITS, size=distance, replace=False)
        planted = flip_bits(base, positions.tolist())
        result = executor.search(base, hash_scalar(planted), distance)
        if not result.found:
            raise AssertionError("trial search failed to find the planted seed")
        seeds_hashed[t] = result.seeds_hashed
        seconds[t] = result.elapsed_seconds
    return TrialStatistics(
        trials=trials,
        distance=distance,
        mean_seeds=float(seeds_hashed.mean()),
        std_seeds=float(seeds_hashed.std()),
        min_seeds=int(seeds_hashed.min()),
        max_seeds=int(seeds_hashed.max()),
        mean_seconds=float(seconds.mean()),
        analytic_average=average_seed_count(distance),
        exhaustive=exhaustive_seed_count(distance),
    )


def run_device_trials(
    device_model,
    hash_name: str,
    distance: int,
    trials: int,
    rng: np.random.Generator | None = None,
    **search_kwargs,
) -> TrialStatistics:
    """Paper-scale stochastic trials against a device model.

    The planted shell position is drawn uniformly; the modeled time is
    the partial-shell search up to that rank (shells below ``distance``
    are searched in full). This is the device-model analogue of the
    paper's 1,200-trial averaging.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    shell = exhaustive_seed_count(distance) - exhaustive_seed_count(distance - 1)
    base_below = exhaustive_seed_count(distance - 1)
    exhaustive_time = device_model.search_time(hash_name, distance, **search_kwargs)
    below_time = (
        device_model.search_time(hash_name, distance - 1, **search_kwargs)
        if distance > 1
        else 0.0
    )
    shell_time = exhaustive_time - below_time

    seeds = np.empty(trials, dtype=np.int64)
    seconds = np.empty(trials, dtype=np.float64)
    fractions = rng.random(trials)
    for t, fraction in enumerate(fractions):
        visited = base_below + int(fraction * shell)
        seeds[t] = visited
        seconds[t] = below_time + fraction * shell_time
    return TrialStatistics(
        trials=trials,
        distance=distance,
        mean_seeds=float(seeds.mean()),
        std_seeds=float(seeds.std()),
        min_seeds=int(seeds.min()),
        max_seeds=int(seeds.max()),
        mean_seconds=float(seconds.mean()),
        analytic_average=average_seed_count(distance),
        exhaustive=exhaustive_seed_count(distance),
    )
