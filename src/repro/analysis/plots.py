"""Terminal (ASCII) plots for figure-style benchmark output.

The harness runs in environments without plotting libraries, so the
figures are rendered as character grids: good enough to see the shape of
a scaling curve or a parameter bowl next to the paper's figure.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["line_plot", "bar_chart"]


def line_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more (x, y) series as an ASCII grid.

    Each series gets a marker from ``*+o x#@`` in order; points are
    plotted on a ``width`` x ``height`` grid spanning the joint data
    range, with simple linear segments drawn between consecutive points.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*+ox#@"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        """Map a data point to (row, col) on the grid."""
        col = round((x - x_min) / x_span * (width - 1))
        row = (height - 1) - round((y - y_min) / y_span * (height - 1))
        return row, col

    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        ordered = sorted(points)
        # Segments first so point markers overwrite them.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]),
                abs(cell(x1, y1)[0] - cell(x0, y0)[0]),
                1,
            )
            for s in range(steps + 1):
                t = s / steps
                row, col = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in ordered:
            row, col = cell(x, y)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * label_width + "  " + x_axis)
    if x_label:
        lines.append(" " * label_width + "  " + x_label.center(width))
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    width: int = 50,
    title: str | None = None,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart of labeled values."""
    if not values:
        raise ValueError("need at least one value")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must include a positive maximum")
    label_width = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(
            f"{name.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)
