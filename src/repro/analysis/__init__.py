"""Reporting helpers shared by the benchmark harness and examples."""

from repro.analysis.tables import format_table, format_heatmap
from repro.analysis.metrics import (
    speedup,
    parallel_efficiency,
    PaperComparison,
    compare_to_paper,
)
from repro.analysis.trials import TrialStatistics, run_search_trials, run_device_trials
from repro.analysis.plots import line_plot, bar_chart
from repro.analysis.workload import (
    WorkloadGenerator,
    ServerCapacityModel,
    service_time_distribution,
    simulate_queue,
)

__all__ = [
    "format_table",
    "format_heatmap",
    "speedup",
    "parallel_efficiency",
    "PaperComparison",
    "compare_to_paper",
    "TrialStatistics",
    "run_search_trials",
    "run_device_trials",
    "line_plot",
    "bar_chart",
    "WorkloadGenerator",
    "ServerCapacityModel",
    "service_time_distribution",
    "simulate_queue",
]
