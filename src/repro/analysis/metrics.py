"""Speedup/efficiency metrics and paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["speedup", "parallel_efficiency", "PaperComparison", "compare_to_paper"]


def speedup(baseline_seconds: float, parallel_seconds: float) -> float:
    """Classic speedup S = T_base / T_parallel."""
    if parallel_seconds <= 0:
        raise ValueError("parallel time must be positive")
    return baseline_seconds / parallel_seconds


def parallel_efficiency(
    baseline_seconds: float, parallel_seconds: float, workers: int
) -> float:
    """Efficiency E = S / p."""
    if workers < 1:
        raise ValueError("workers must be positive")
    return speedup(baseline_seconds, parallel_seconds) / workers


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-reproduction data point for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper_value: float
    measured_value: float

    @property
    def ratio(self) -> float:
        """measured / paper value."""
        return self.measured_value / self.paper_value

    @property
    def deviation_percent(self) -> float:
        """Percent deviation from the paper value."""
        return (self.ratio - 1.0) * 100.0

    def row(self) -> list[str]:
        """The comparison as a formatted table row."""
        return [
            self.experiment,
            self.quantity,
            f"{self.paper_value:g}",
            f"{self.measured_value:g}",
            f"{self.deviation_percent:+.1f}%",
        ]


def compare_to_paper(
    experiment: str, quantity: str, paper_value: float, measured_value: float
) -> PaperComparison:
    """Record one comparison (convenience constructor)."""
    return PaperComparison(experiment, quantity, paper_value, measured_value)
