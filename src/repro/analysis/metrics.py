"""Speedup/efficiency metrics, paper-vs-measured comparisons, the
resilience report produced by chaos runs, and aggregation over the
unified :class:`~repro.engines.result.SearchResult`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "speedup",
    "parallel_efficiency",
    "PaperComparison",
    "compare_to_paper",
    "percentile",
    "ResilienceReport",
    "summarize_search_results",
]


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of a sequence (q in [0, 100]).

    Deterministic and dependency-light — the chaos report must be
    byte-identical across runs, so no float-order surprises allowed.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = rank - lo
    return float(ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction)


def summarize_search_results(results: Iterable) -> dict:
    """Aggregate a batch of unified search results into one summary.

    Accepts any iterable of :class:`~repro.engines.result.SearchResult`
    (from any engine — every registered engine returns the same type)
    and reports fleet-level statistics: totals, outcome counts, the
    distance histogram of successful finds, and the per-distance seed
    counts accumulated from each result's shell telemetry.
    """
    searches = 0
    found = 0
    timed_out = 0
    seeds_hashed = 0
    wall_seconds = 0.0
    found_distances: dict[int, int] = {}
    seeds_by_distance: dict[int, int] = {}
    engines: dict[str, int] = {}
    for result in results:
        searches += 1
        seeds_hashed += result.seeds_hashed
        wall_seconds += result.elapsed_seconds
        if result.found:
            found += 1
            found_distances[result.distance] = (
                found_distances.get(result.distance, 0) + 1
            )
        if result.timed_out:
            timed_out += 1
        for shell in result.shells:
            seeds_by_distance[shell.distance] = (
                seeds_by_distance.get(shell.distance, 0) + shell.seeds_hashed
            )
        label = result.engine if result.engine is not None else "(untagged)"
        engines[label] = engines.get(label, 0) + 1
    return {
        "searches": searches,
        "found": found,
        "timed_out": timed_out,
        "seeds_hashed": seeds_hashed,
        "wall_seconds": wall_seconds,
        "throughput": seeds_hashed / wall_seconds if wall_seconds > 0 else 0.0,
        "found_distances": dict(sorted(found_distances.items())),
        "seeds_by_distance": dict(sorted(seeds_by_distance.items())),
        "engines": dict(sorted(engines.items())),
    }


def speedup(baseline_seconds: float, parallel_seconds: float) -> float:
    """Classic speedup S = T_base / T_parallel."""
    if parallel_seconds <= 0:
        raise ValueError("parallel time must be positive")
    return baseline_seconds / parallel_seconds


def parallel_efficiency(
    baseline_seconds: float, parallel_seconds: float, workers: int
) -> float:
    """Efficiency E = S / p."""
    if workers < 1:
        raise ValueError("workers must be positive")
    return speedup(baseline_seconds, parallel_seconds) / workers


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-reproduction data point for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper_value: float
    measured_value: float

    @property
    def ratio(self) -> float:
        """measured / paper value."""
        return self.measured_value / self.paper_value

    @property
    def deviation_percent(self) -> float:
        """Percent deviation from the paper value."""
        return (self.ratio - 1.0) * 100.0

    def row(self) -> list[str]:
        """The comparison as a formatted table row."""
        return [
            self.experiment,
            self.quantity,
            f"{self.paper_value:g}",
            f"{self.measured_value:g}",
            f"{self.deviation_percent:+.1f}%",
        ]


def compare_to_paper(
    experiment: str, quantity: str, paper_value: float, measured_value: float
) -> PaperComparison:
    """Record one comparison (convenience constructor)."""
    return PaperComparison(experiment, quantity, paper_value, measured_value)


@dataclass(frozen=True)
class ResilienceReport:
    """What an authentication storm under a fault plan produced.

    Every field is derived from the virtual clock and deterministic
    counters — no wall-clock measurements — so two runs with the same
    fault-plan seed compare equal (`==`), which is the reproducibility
    contract the chaos regression tests assert.
    """

    plan: str
    seed: int
    clients: int
    succeeded: int
    failed_clean: int
    false_authentications: int
    #: (outcome_name, count), sorted by name. Outcome names are the
    #: typed terminal states: authenticated, rejected, deadline_exceeded,
    #: retries_exhausted, server_busy.
    outcomes: tuple[tuple[str, int], ...]
    #: (fault_kind, count) actually injected on the links, sorted.
    faults_injected: tuple[tuple[str, int], ...]
    attempts_total: int
    max_attempts_single_client: int
    latency_p50: float
    latency_p95: float
    latency_max: float
    #: Breaker history as 'from->to' strings, in order.
    breaker_transitions: tuple[str, ...]
    primary_searches: int
    fallback_searches: int
    device_failures: int
    #: Engine telemetry (from the storm's shared
    #: :class:`~repro.engines.hooks.TelemetryHooks` tap): candidate
    #: seeds hashed and Hamming shells completed across both backends.
    #: Pure counters — deterministic, unlike shell wall times.
    engine_seeds_hashed: int = 0
    engine_shells_completed: int = 0

    @property
    def availability(self) -> float:
        """Fraction of clients that authenticated successfully."""
        return self.succeeded / self.clients if self.clients else 0.0

    def render(self) -> str:
        """Human-readable report for the `repro chaos` subcommand."""
        from repro.analysis.tables import format_table

        lines = [
            f"chaos storm: plan={self.plan!r} seed={self.seed} "
            f"clients={self.clients}",
            "",
            format_table(
                ["outcome", "count"],
                [[name, count] for name, count in self.outcomes],
                title="client outcomes",
            ),
            "",
            format_table(
                ["fault", "count"],
                [[name, count] for name, count in self.faults_injected]
                or [["(none)", 0]],
                title="injected link faults",
            ),
            "",
            f"availability:        {self.availability:.1%}",
            f"false auths:         {self.false_authentications}",
            f"attempts:            {self.attempts_total} total, "
            f"worst client {self.max_attempts_single_client}",
            f"virtual latency:     p50={self.latency_p50:.2f}s "
            f"p95={self.latency_p95:.2f}s max={self.latency_max:.2f}s",
            f"searches:            {self.primary_searches} primary, "
            f"{self.fallback_searches} fallback, "
            f"{self.device_failures} device failures",
            f"engine telemetry:    {self.engine_seeds_hashed} seeds hashed "
            f"across {self.engine_shells_completed} shells",
            f"breaker transitions: "
            + (" ".join(self.breaker_transitions) or "(none)"),
        ]
        return "\n".join(lines)
