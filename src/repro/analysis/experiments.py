"""Programmatic index of the reproduction's experiments.

One registry mapping experiment ids to the paper artifact, the modules
involved, and the bench that regenerates them — the machine-readable
twin of DESIGN.md's per-experiment table. The CLI's ``experiments``
command renders it; tests assert that every referenced bench file
actually exists, so the index cannot rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "render_index"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper (or an extension)."""

    experiment_id: str
    paper_artifact: str
    description: str
    modules: tuple[str, ...]
    bench: str
    extension: bool = False


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "T1", "Table 1", "search-space sizes, Equations 1 & 3 (exact)",
        ("repro.core.complexity", "repro.combinatorics.binomial"),
        "benchmarks/bench_table1_complexity.py",
    ),
    Experiment(
        "F3", "Figure 3", "grid search over seeds/thread and threads/block",
        ("repro.devices.gpu",),
        "benchmarks/bench_fig3_gridsearch.py",
    ),
    Experiment(
        "T4", "Table 4", "seed-iterator comparison (modeled + measured)",
        ("repro.combinatorics", "repro.devices.gpu"),
        "benchmarks/bench_table4_iterators.py",
    ),
    Experiment(
        "T5", "Table 5", "end-to-end response times, all platforms",
        ("repro.devices", "repro.net.transport"),
        "benchmarks/bench_table5_end_to_end.py",
    ),
    Experiment(
        "T6", "Table 6", "GPU vs APU energy",
        ("repro.devices.energy",),
        "benchmarks/bench_table6_energy.py",
    ),
    Experiment(
        "F4", "Figure 4", "multi-GPU scalability",
        ("repro.devices.multi_gpu",),
        "benchmarks/bench_fig4_multigpu.py",
    ),
    Experiment(
        "T7", "Table 7", "vs prior algorithm-aware RBC engines",
        ("repro.core.original_rbc", "repro.keygen", "repro.devices"),
        "benchmarks/bench_table7_prior_work.py",
    ),
    Experiment(
        "S4.3", "Section 4.3", "CPU strong scaling (59x/63x on 64 cores)",
        ("repro.devices.cpu", "repro.runtime.parallel"),
        "benchmarks/bench_s43_cpu_scaling.py",
    ),
    Experiment(
        "S4.4", "Section 4.4", "exit-flag check-granularity sweep",
        ("repro.runtime.executor",),
        "benchmarks/bench_s44_flagcheck.py",
    ),
    Experiment(
        "S3.2.2", "Section 3.2.2", "fixed-padding optimization (~3%)",
        ("repro.hashes.batch_sha3", "repro.devices.gpu"),
        "benchmarks/bench_s322_padding.py",
    ),
    Experiment(
        "S3.2.3", "Section 3.2.3", "Chase state in shared memory",
        ("repro.devices.gpu",),
        "benchmarks/bench_s323_sharedmem.py",
    ),
    Experiment(
        "E-LIVE", "extension", "live original-RBC vs SALTED engines",
        ("repro.runtime.original_batch", "repro.core.original_rbc"),
        "benchmarks/bench_ext_original_live.py",
        extension=True,
    ),
    Experiment(
        "E-CLST", "extension", "distributed cluster + 1,200-trial methodology",
        ("repro.runtime.cluster", "repro.analysis.trials"),
        "benchmarks/bench_ext_cluster_trials.py",
        extension=True,
    ),
    Experiment(
        "E-BITS", "extension", "APU cost structure from bit-serial op counts",
        ("repro.devices.associative", "repro.devices.bitserial"),
        "benchmarks/bench_ext_bitserial.py",
        extension=True,
    ),
    Experiment(
        "E-CAP", "extension", "CA capacity (authentications/hour, queueing)",
        ("repro.analysis.workload",),
        "benchmarks/bench_ext_capacity.py",
        extension=True,
    ),
    Experiment(
        "E-ENV", "extension", "environmental operating envelope",
        ("repro.puf.environment",),
        "benchmarks/bench_ext_environment.py",
        extension=True,
    ),
    Experiment(
        "E-ABL", "extension", "ablations: lane width, TAPKI threshold, salt cost",
        ("repro.runtime.executor", "repro.puf.ternary", "repro.core.salting"),
        "benchmarks/bench_ablations.py",
        extension=True,
    ),
    Experiment(
        "E-HOST", "extension", "this machine measured as a fourth platform",
        ("repro.devices.host",),
        "benchmarks/bench_ext_host.py",
        extension=True,
    ),
    Experiment(
        "E-ECC", "extension", "client-side ECC vs RBC; associative data path",
        ("repro.puf.fuzzy_extractor", "repro.devices.bitserial_search"),
        "benchmarks/bench_ext_ecc_contrast.py",
        extension=True,
    ),
)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id (case-insensitive)."""
    wanted = experiment_id.upper()
    for experiment in EXPERIMENTS:
        if experiment.experiment_id.upper() == wanted:
            return experiment
    raise KeyError(f"unknown experiment {experiment_id!r}")


def render_index() -> str:
    """The index as an aligned text table."""
    from repro.analysis.tables import format_table

    rows = [
        [
            e.experiment_id,
            e.paper_artifact,
            e.description,
            e.bench.rsplit("/", 1)[-1],
        ]
        for e in EXPERIMENTS
    ]
    return format_table(
        ["id", "artifact", "description", "bench"],
        rows,
        title="Reproduction experiment index",
    )
