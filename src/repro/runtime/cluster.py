"""Distributed-memory RBC search — the paper's Section 5 future work.

Philabaum et al. scaled the original RBC across 512 CPU cores with MPI;
the paper proposes doing the same for SALTED-CPU since it measured
near-perfect single-node efficiency. This module implements that design
with an mpi4py-shaped decomposition, executed in-process:

* the root *broadcasts* the search task (base seed, digest, d);
* every rank owns a contiguous rank-slice of each Hamming shell
  (the same partitioning the threads use, one level up);
* ranks search their slices with the real vectorized executor;
* a found seed is *allreduced* (the distributed early-exit flag);
* the root *gathers* per-rank statistics.

Each rank's slice really executes (vectorized NumPy); the cluster wall
clock is modeled as the slowest concurrent rank plus interconnect costs,
which is exactly how a synchronous MPI search behaves. The interconnect
cost model is explicit and auditable.

Rank-level faults are first-class: a fault injector (see
:class:`~repro.reliability.faults.ClusterFaultInjector`) can kill ranks
outright or slow them down. A dead rank's shell slices are *recovered* —
re-partitioned onto the survivors and searched in a second pass — and
the extra wall time (failure detection, the recovery compute, one more
fabric round) is accounted honestly in the result.

The engine returns the unified
:class:`~repro.engines.result.SearchResult`; the per-rank accounting
that used to live in a separate ``ClusterSearchResult`` type now rides
in the result's :class:`~repro.engines.result.ClusterStats` extension
(and the legacy field names keep working as properties).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import binomial
from repro.engines.hooks import EngineHooks
from repro.engines.registry import build_engine
from repro.engines.result import ClusterStats, SearchResult, merge_shells
from repro.runtime.partition import partition_ranks

__all__ = ["Interconnect", "ClusterSearchResult", "ClusterSearchExecutor"]

#: Legacy alias — the distributed result type was merged into the
#: unified SearchResult; its fields live on as the ClusterStats
#: extension plus compatibility properties.
ClusterSearchResult = SearchResult


@dataclass(frozen=True)
class Interconnect:
    """Per-operation costs of the cluster fabric (seconds)."""

    name: str = "10GbE"
    broadcast_seconds: float = 2e-3
    allreduce_seconds: float = 5e-3
    gather_seconds: float = 3e-3
    #: Early-exit propagation: how stale a remote rank's view of the
    #: found-flag may be (it finishes its current batch + this delay).
    exit_propagation_seconds: float = 5e-3
    #: Heartbeat timeout before the survivors declare a rank dead and
    #: re-partition its slices.
    failure_detection_seconds: float = 5e-2

    def round_cost(self, ranks: int) -> float:
        """Fixed fabric cost of one search round with ``ranks`` nodes."""
        if ranks <= 1:
            return 0.0
        return self.broadcast_seconds + self.allreduce_seconds + self.gather_seconds


class ClusterSearchExecutor:
    """SALTED search distributed over ``ranks`` single-node engines."""

    def __init__(
        self,
        ranks: int,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        interconnect: Interconnect | None = None,
        fault_injector=None,
        hooks: EngineHooks | None = None,
    ):
        if ranks < 1:
            raise ValueError("ranks must be positive")
        self.ranks = ranks
        self.hash_name = hash_name
        self.batch_size = batch_size
        self.interconnect = interconnect if interconnect is not None else Interconnect()
        #: Optional rank-fault source: anything exposing ``dead_ranks``
        #: (a set of ints) and ``straggle_factor(rank) -> float``.
        self.fault_injector = fault_injector
        #: Telemetry tap forwarded to every per-rank engine, so hooks
        #: observe each rank's batches and shells.
        self.hooks = hooks

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        return (
            f"cluster:{self.ranks},hash={self.hash_name},bs={self.batch_size}"
        )

    def _rank_slices(self, max_distance: int, rank: int) -> dict[int, tuple[int, int]]:
        slices = {}
        for distance in range(1, max_distance + 1):
            ranges = partition_ranks(binomial(SEED_BITS, distance), self.ranks)
            slices[distance] = ranges[rank]
        return slices

    def _make_executor(self):
        return build_engine(
            "batch",
            hash_name=self.hash_name,
            batch_size=self.batch_size,
            hooks=self.hooks,
        )

    def _run_slices(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        slices: dict[int, tuple[int, int]],
        time_budget: float | None,
        owns_distance_zero: bool,
    ) -> SearchResult:
        """One node's share of the search, with the d=0 ownership rule.

        Every engine checks the d=0 candidate (Algorithm 1 lines 4-8);
        only the node that *owns* it may report it, so the protocol
        counts that hash exactly once across the cluster.
        """
        result = self._make_executor().search(
            base_seed,
            target_digest,
            max_distance,
            time_budget=time_budget,
            rank_range_by_distance=slices,
        )
        if result.distance == 0 and not owns_distance_zero:
            result = SearchResult(
                False, None, None, result.seeds_hashed, result.elapsed_seconds,
                shells=result.shells,
            )
        return result

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Run the distributed search (each rank's slice really executes)."""
        simulation_start = time.perf_counter()
        faults = self.fault_injector
        dead = frozenset(faults.dead_ranks) if faults is not None else frozenset()
        if len(dead) >= self.ranks:
            raise RuntimeError("no surviving ranks: the whole cluster is dead")
        survivors = [rank for rank in range(self.ranks) if rank not in dead]

        def effective(rank: int, seconds: float) -> float:
            if faults is None:
                return seconds
            return seconds * faults.straggle_factor(rank)

        per_rank_results: dict[int, SearchResult] = {}
        for rank in survivors:
            per_rank_results[rank] = self._run_slices(
                base_seed,
                target_digest,
                max_distance,
                self._rank_slices(max_distance, rank),
                time_budget,
                owns_distance_zero=(rank == 0),
            )

        per_rank_seconds = tuple(
            effective(rank, per_rank_results[rank].elapsed_seconds)
            if rank in per_rank_results
            else 0.0
            for rank in range(self.ranks)
        )
        per_rank_hashed = tuple(
            per_rank_results[rank].seeds_hashed if rank in per_rank_results else 0
            for rank in range(self.ranks)
        )
        any_rank_timed_out = any(
            res.timed_out for res in per_rank_results.values()
        )
        shells = merge_shells([res.shells for res in per_rank_results.values()])
        fabric = self.interconnect.round_cost(self.ranks)
        stragglers = (
            tuple(r for r in faults.straggler_ranks if r in per_rank_results)
            if faults is not None and hasattr(faults, "straggler_ranks")
            else ()
        )

        def finish(
            *,
            found: bool,
            seed: bytes | None,
            distance: int | None,
            finder_rank: int | None,
            seeds_hashed: int,
            wall: float,
            recovery_seconds: float = 0.0,
        ) -> SearchResult:
            timed_out = not found and (
                any_rank_timed_out
                or (time_budget is not None and wall > time_budget)
            )
            return SearchResult(
                found=found,
                seed=seed,
                distance=distance,
                seeds_hashed=seeds_hashed,
                elapsed_seconds=wall,
                timed_out=timed_out,
                shells=shells,
                engine=self.describe(),
                cluster=ClusterStats(
                    finder_rank=finder_rank,
                    per_rank_seconds=per_rank_seconds,
                    per_rank_hashed=per_rank_hashed,
                    dead_ranks=tuple(sorted(dead)),
                    straggler_ranks=stragglers,
                    recovery_seconds=recovery_seconds,
                    simulation_seconds=time.perf_counter() - simulation_start,
                ),
            )

        finders = [
            (rank, res) for rank, res in sorted(per_rank_results.items()) if res.found
        ]
        if finders:
            # The earliest finder in wall time wins the allreduce.
            finder_rank, res = min(
                finders, key=lambda item: effective(item[0], item[1].elapsed_seconds)
            )
            # Concurrent wall time: the finder's time, plus every other
            # rank draining its in-flight batch after flag propagation —
            # bounded by finder time + propagation (they poll per batch).
            wall = (
                effective(finder_rank, res.elapsed_seconds)
                + (self.interconnect.exit_propagation_seconds if self.ranks > 1 else 0.0)
                + fabric
            )
            return finish(
                found=True,
                seed=res.seed,
                distance=res.distance,
                finder_rank=finder_rank,
                seeds_hashed=sum(per_rank_hashed),
                wall=wall,
            )

        # First pass exhausted. If ranks died, their slices have not been
        # searched: the survivors detect the failure, re-partition the
        # dead slices among themselves, and run a recovery pass.
        first_pass_wall = max(per_rank_seconds) + fabric
        recovery_seconds = 0.0
        recovery_hashed = 0
        recovery_finder: tuple[int, SearchResult] | None = None
        if dead:
            recovery_shells: list[tuple] = []
            per_survivor_recovery = [0.0] * len(survivors)
            for dead_rank in sorted(dead):
                dead_slices = self._rank_slices(max_distance, dead_rank)
                for position, survivor in enumerate(survivors):
                    slices = {}
                    for distance, (lo, hi) in dead_slices.items():
                        sub = partition_ranks(hi - lo, len(survivors))[position]
                        slices[distance] = (lo + sub[0], lo + sub[1])
                    result = self._run_slices(
                        base_seed,
                        target_digest,
                        max_distance,
                        slices,
                        time_budget,
                        # The d=0 candidate transfers to the first
                        # survivor when its owner (rank 0) died.
                        owns_distance_zero=(dead_rank == 0 and position == 0),
                    )
                    recovery_hashed += result.seeds_hashed
                    recovery_shells.append(result.shells)
                    per_survivor_recovery[position] += effective(
                        survivor, result.elapsed_seconds
                    )
                    if result.found and recovery_finder is None:
                        recovery_finder = (survivor, result)
            recovery_seconds = (
                self.interconnect.failure_detection_seconds
                + max(per_survivor_recovery)
                + fabric
            )
            shells = merge_shells([shells, *recovery_shells])

        if recovery_finder is not None:
            finder_rank, res = recovery_finder
            return finish(
                found=True,
                seed=res.seed,
                distance=res.distance,
                finder_rank=finder_rank,
                seeds_hashed=sum(per_rank_hashed) + recovery_hashed,
                wall=first_pass_wall + recovery_seconds,
                recovery_seconds=recovery_seconds,
            )
        return finish(
            found=False,
            seed=None,
            distance=None,
            finder_rank=None,
            seeds_hashed=sum(per_rank_hashed) + recovery_hashed,
            wall=first_pass_wall + recovery_seconds,
            recovery_seconds=recovery_seconds,
        )
