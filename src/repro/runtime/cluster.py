"""Distributed-memory RBC search — the paper's Section 5 future work.

Philabaum et al. scaled the original RBC across 512 CPU cores with MPI;
the paper proposes doing the same for SALTED-CPU since it measured
near-perfect single-node efficiency. This module implements that design
with an mpi4py-shaped decomposition, executed in-process:

* the root *broadcasts* the search task (base seed, digest, d);
* every rank owns a contiguous rank-slice of each Hamming shell
  (the same partitioning the threads use, one level up);
* ranks search their slices with the real vectorized executor;
* a found seed is *allreduced* (the distributed early-exit flag);
* the root *gathers* per-rank statistics.

Each rank's slice really executes (vectorized NumPy); the cluster wall
clock is modeled as the slowest concurrent rank plus interconnect costs,
which is exactly how a synchronous MPI search behaves. The interconnect
cost model is explicit and auditable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import binomial
from repro.runtime.executor import BatchSearchExecutor, SearchResult
from repro.runtime.partition import partition_ranks

__all__ = ["Interconnect", "ClusterSearchResult", "ClusterSearchExecutor"]


@dataclass(frozen=True)
class Interconnect:
    """Per-operation costs of the cluster fabric (seconds)."""

    name: str = "10GbE"
    broadcast_seconds: float = 2e-3
    allreduce_seconds: float = 5e-3
    gather_seconds: float = 3e-3
    #: Early-exit propagation: how stale a remote rank's view of the
    #: found-flag may be (it finishes its current batch + this delay).
    exit_propagation_seconds: float = 5e-3

    def round_cost(self, ranks: int) -> float:
        """Fixed fabric cost of one search round with ``ranks`` nodes."""
        if ranks <= 1:
            return 0.0
        return self.broadcast_seconds + self.allreduce_seconds + self.gather_seconds


@dataclass(frozen=True)
class ClusterSearchResult:
    """Outcome of one distributed search."""

    found: bool
    seed: bytes | None
    distance: int | None
    finder_rank: int | None
    seeds_hashed_total: int
    #: Modeled concurrent wall time: slowest relevant rank + fabric costs.
    wall_seconds: float
    #: Actual serial execution time of the simulation (for reference).
    simulation_seconds: float
    per_rank_seconds: tuple[float, ...] = field(default=())
    per_rank_hashed: tuple[int, ...] = field(default=())

    def __bool__(self) -> bool:
        return self.found


class ClusterSearchExecutor:
    """SALTED search distributed over ``ranks`` single-node engines."""

    def __init__(
        self,
        ranks: int,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        interconnect: Interconnect | None = None,
    ):
        if ranks < 1:
            raise ValueError("ranks must be positive")
        self.ranks = ranks
        self.hash_name = hash_name
        self.batch_size = batch_size
        self.interconnect = interconnect if interconnect is not None else Interconnect()

    def _rank_slices(self, max_distance: int, rank: int) -> dict[int, tuple[int, int]]:
        slices = {}
        for distance in range(1, max_distance + 1):
            ranges = partition_ranks(binomial(SEED_BITS, distance), self.ranks)
            slices[distance] = ranges[rank]
        return slices

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> ClusterSearchResult:
        """Run the distributed search (each rank's slice really executes)."""
        simulation_start = time.perf_counter()
        per_rank_results: list[SearchResult] = []
        for rank in range(self.ranks):
            executor = BatchSearchExecutor(
                self.hash_name, batch_size=self.batch_size
            )
            slices = self._rank_slices(max_distance, rank)
            # Rank 0 performs the d=0 check (Algorithm 1 lines 4-8); the
            # other ranks skip it, mirroring the thread-level protocol.
            if rank == 0:
                result = executor.search(
                    base_seed,
                    target_digest,
                    max_distance,
                    time_budget=time_budget,
                    rank_range_by_distance=slices,
                )
            else:
                result = executor.search(
                    base_seed,
                    target_digest,
                    max_distance,
                    time_budget=time_budget,
                    rank_range_by_distance=slices,
                )
                if result.distance == 0:
                    # Only rank 0 owns the d=0 candidate; discount others.
                    result = SearchResult(
                        False, None, None, result.seeds_hashed,
                        result.elapsed_seconds,
                    )
            per_rank_results.append(result)

        simulation_seconds = time.perf_counter() - simulation_start
        finders = [
            (rank, res) for rank, res in enumerate(per_rank_results) if res.found
        ]
        per_rank_seconds = tuple(r.elapsed_seconds for r in per_rank_results)
        per_rank_hashed = tuple(r.seeds_hashed for r in per_rank_results)
        fabric = self.interconnect.round_cost(self.ranks)

        if finders:
            finder_rank, res = finders[0]
            # Concurrent wall time: the finder's time, plus every other
            # rank draining its in-flight batch after flag propagation —
            # bounded by finder time + propagation (they poll per batch).
            wall = (
                res.elapsed_seconds
                + (self.interconnect.exit_propagation_seconds if self.ranks > 1 else 0.0)
                + fabric
            )
            return ClusterSearchResult(
                found=True,
                seed=res.seed,
                distance=res.distance,
                finder_rank=finder_rank,
                seeds_hashed_total=sum(per_rank_hashed),
                wall_seconds=wall,
                simulation_seconds=simulation_seconds,
                per_rank_seconds=per_rank_seconds,
                per_rank_hashed=per_rank_hashed,
            )
        # Exhausted (or timed out): everyone ran to completion.
        wall = max(per_rank_seconds) + fabric
        return ClusterSearchResult(
            found=False,
            seed=None,
            distance=None,
            finder_rank=None,
            seeds_hashed_total=sum(per_rank_hashed),
            wall_seconds=wall,
            simulation_seconds=simulation_seconds,
            per_rank_seconds=per_rank_seconds,
            per_rank_hashed=per_rank_hashed,
        )
