"""Execution runtime — the reproduction's real parallel search engines.

Where :mod:`repro.devices` *models* the paper's accelerators, this package
*executes* the RBC search on the host machine:

* :mod:`repro.runtime.executor` — single-process, NumPy-vectorized batch
  search (the lane-parallel analogue of one GPU);
* :mod:`repro.runtime.parallel` — ``multiprocessing`` search with a shared
  early-exit flag (the analogue of the paper's OpenMP SALTED-CPU,
  including its termination protocol);
* :mod:`repro.runtime.partition` — seed-space partitioning shared by both.

Reduced-scale runs of these engines validate the device models' control
flow in the test suite.

All engines here are registered with :mod:`repro.engines` — prefer
``build_engine("batch:sha3-256,bs=16384")`` over direct construction.
``SearchResult`` / ``ShellStats`` now live in
:mod:`repro.engines.result` and are re-exported for compatibility.
"""

from repro.runtime.executor import BatchSearchExecutor, SearchResult, ShellStats
from repro.runtime.parallel import ParallelSearchExecutor
from repro.runtime.partition import partition_ranks, thread_rank_ranges
from repro.runtime.original_batch import BatchOriginalRBCSearch
from repro.runtime.cluster import ClusterSearchExecutor, ClusterSearchResult, Interconnect

__all__ = [
    "BatchSearchExecutor",
    "SearchResult",
    "ShellStats",
    "ParallelSearchExecutor",
    "partition_ranks",
    "thread_rank_ranges",
    "BatchOriginalRBCSearch",
    "ClusterSearchExecutor",
    "ClusterSearchResult",
    "Interconnect",
]
