"""Seed-space partitioning.

Algorithm 1 assigns each processing element ``n = C(256, d) / p`` seeds at
every Hamming distance. These helpers compute the actual integer ranges:
contiguous blocks (what SALTED-GPU with Algorithm 515 uses — each thread
unranks its own block) and the checkpoint boundaries for Chase-style
sequential iterators.
"""

from __future__ import annotations

from repro.combinatorics.binomial import binomial

__all__ = ["partition_ranks", "thread_rank_ranges"]


def partition_ranks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``parts`` near-equal half-open ranges.

    The first ``total % parts`` ranges get one extra element, so range
    sizes differ by at most 1 (the even workload the paper's checkpoint
    spacing targets). Empty ranges are returned when parts > total.
    """
    if parts < 1:
        raise ValueError("parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base = total // parts
    remainder = total % parts
    ranges = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < remainder else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def thread_rank_ranges(n_bits: int, distance: int, threads: int) -> list[tuple[int, int]]:
    """Per-thread rank ranges over the ``C(n_bits, distance)`` shell."""
    return partition_ranks(binomial(n_bits, distance), threads)
