"""Process-wide cache of precomputed mask-word plans.

The per-candidate work of Algorithm 1 is *supposed* to be one hash
(paper Section 3.2), but the serving path re-paid two search-invariant
costs on every request: unranking the same combinations and rebuilding
the same XOR mask words. Both depend only on
``(distance, rank range, iterator)`` — never on the seed under search —
so they are computed once here and shared.

A :class:`MaskPlan` is the materialized ``(hi - lo, 4)`` uint64 mask
array for one Hamming-distance shell slice; :class:`MaskPlanCache` is a
bounded LRU over plans keyed by ``(distance, lo, hi, batch_size,
iterator)``. Plans are backed by POSIX shared memory when available, so
the persistent worker pool's processes map the *same* physical pages
(via :func:`attach_plan`) instead of each re-unranking its slice; on
platforms without shared memory the cache degrades to process-local
heap arrays and workers rebuild locally.

Lifecycle: the cache owns its shared-memory segments and unlinks them
on eviction, :meth:`MaskPlanCache.clear`, and interpreter exit. A
worker holding a mapping to an evicted segment keeps using it safely
(POSIX semantics); only *new* attaches fail, and callers fall back to
streaming mask generation.
"""

from __future__ import annotations

import atexit
import threading
from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro._bitutils import SEED_BITS, SEED_WORDS64, positions_to_mask_words
from repro.combinatorics.algorithm154 import Algorithm154Iterator
from repro.combinatorics.algorithm382 import Algorithm382Iterator
from repro.combinatorics.algorithm515 import Algorithm515Iterator
from repro.combinatorics.chase382 import Chase382Iterator
from repro.combinatorics.gosper import GosperIterator
from repro.combinatorics.ranking import unrank_lexicographic_batch

__all__ = [
    "ITERATOR_CHOICES",
    "combination_batches",
    "MaskPlan",
    "PlanDescriptor",
    "MaskPlanCache",
    "global_plan_cache",
    "attach_plan",
    "detach_plan",
]

ITERATOR_CHOICES = (
    "unrank", "chase", "chase-382", "gosper", "lex", "unrank-scalar",
)

_SCALAR_ITERATORS = {
    "chase": Algorithm382Iterator,      # revolving-door minimal change
    "chase-382": Chase382Iterator,      # Chase's Algorithm 382 proper
    "gosper": GosperIterator,
    "lex": Algorithm154Iterator,
    "unrank-scalar": Algorithm515Iterator,
}

_MASK_ROW_BYTES = SEED_WORDS64 * 8  # one (4,) uint64 mask row

#: Default cache budget: enough for every shell slice at d <= 2 plus the
#: working set of d = 3 slices, small next to the search's own batches.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: Slices bigger than this are never cached (the steady-state win cannot
#: justify pinning them); callers stream masks instead.
DEFAULT_MAX_PLAN_BYTES = 64 * 1024 * 1024


def combination_batches(
    distance: int,
    start: int,
    stop: int,
    batch_size: int,
    iterator: str = "unrank",
) -> Iterator[np.ndarray]:
    """Yield ``(N, distance)`` position arrays covering ranks [start, stop).

    The one combination source shared by the batch executor, the plan
    builder, and the calibration probes. ``"unrank"`` is the vectorized
    Algorithm-515-style fast path; the scalar iterator names step a
    :class:`~repro.combinatorics.iterator_base.CombinationIterator`.
    """
    if iterator not in ITERATOR_CHOICES:
        raise ValueError(
            f"unknown iterator {iterator!r}; choices: {ITERATOR_CHOICES}"
        )
    if iterator == "unrank":
        for lo in range(start, stop, batch_size):
            hi = min(lo + batch_size, stop)
            ranks = np.arange(lo, hi, dtype=np.uint64)
            yield unrank_lexicographic_batch(SEED_BITS, distance, ranks)
        return
    scalar = _SCALAR_ITERATORS[iterator](SEED_BITS, distance)
    scalar.skip_to(start)
    remaining = stop - start
    while remaining > 0:
        count = min(batch_size, remaining)
        combos = scalar.take(count)
        yield np.array(combos, dtype=np.int64)
        remaining -= len(combos)
        if len(combos) < count:
            return  # sequence exhausted early (shouldn't happen)
        if remaining > 0 and not scalar.advance():
            return


@dataclass(frozen=True)
class PlanDescriptor:
    """How a pool worker finds a shared plan: segment name + geometry."""

    shm_name: str
    rows: int
    distance: int
    lo: int
    hi: int
    batch_size: int
    iterator: str


@dataclass
class MaskPlan:
    """One precomputed shell slice: ``(hi - lo, 4)`` uint64 XOR masks."""

    distance: int
    lo: int
    hi: int
    batch_size: int
    iterator: str
    masks: np.ndarray
    #: Owning SharedMemory segment, or None for heap-backed plans.
    shm: object | None = None

    @property
    def key(self) -> tuple[int, int, int, int, str]:
        return (self.distance, self.lo, self.hi, self.batch_size, self.iterator)

    @property
    def nbytes(self) -> int:
        return int(self.masks.nbytes)

    def batches(self) -> Iterator[np.ndarray]:
        """Mask views of at most ``batch_size`` rows, in rank order."""
        for start in range(0, self.masks.shape[0], self.batch_size):
            yield self.masks[start : start + self.batch_size]

    def descriptor(self) -> PlanDescriptor | None:
        """Attachment descriptor for pool workers; None if heap-backed."""
        if self.shm is None:
            return None
        return PlanDescriptor(
            shm_name=self.shm.name,  # type: ignore[attr-defined]
            rows=self.masks.shape[0],
            distance=self.distance,
            lo=self.lo,
            hi=self.hi,
            batch_size=self.batch_size,
            iterator=self.iterator,
        )


def _build_mask_rows(
    distance: int, lo: int, hi: int, batch_size: int, iterator: str,
    out: np.ndarray,
) -> None:
    """Fill ``out`` (shape ``(hi - lo, 4)``) with the slice's masks."""
    row = 0
    for positions in combination_batches(distance, lo, hi, batch_size, iterator):
        masks = positions_to_mask_words(positions)
        out[row : row + masks.shape[0]] = masks
        row += masks.shape[0]
    if row != hi - lo:
        raise RuntimeError(
            f"iterator {iterator!r} produced {row} masks for "
            f"[{lo}, {hi}) at distance {distance}"
        )


class MaskPlanCache:
    """Bounded, thread-safe LRU cache of :class:`MaskPlan` objects.

    ``use_shared_memory`` selects the backing store; when shared-memory
    creation fails at runtime (no /dev/shm, exhausted names) the cache
    transparently builds heap-backed plans instead.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_plan_bytes: int = DEFAULT_MAX_PLAN_BYTES,
        use_shared_memory: bool = True,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.max_plan_bytes = min(max_plan_bytes, max_bytes)
        self.use_shared_memory = use_shared_memory
        self._plans: OrderedDict[tuple[int, int, int, int, str], MaskPlan]
        self._plans = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.bytes_in_use = 0
        # Unlink this cache's shared segments at interpreter exit, so
        # short-lived private caches don't trip the resource tracker's
        # leaked-segment warning.
        atexit.register(self.clear)

    # -- allocation -----------------------------------------------------

    def _allocate(self, rows: int) -> tuple[np.ndarray, object | None]:
        """A zeroed ``(rows, 4)`` uint64 array, shared-memory backed if we can."""
        nbytes = max(rows * _MASK_ROW_BYTES, 1)
        if self.use_shared_memory:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                masks = np.ndarray(
                    (rows, SEED_WORDS64), dtype=np.uint64, buffer=shm.buf
                )
                masks.fill(0)
                return masks, shm
            except (OSError, ValueError):
                pass
        return np.zeros((rows, SEED_WORDS64), dtype=np.uint64), None

    @staticmethod
    def _release(plan: MaskPlan) -> None:
        if plan.shm is not None:
            try:
                plan.shm.close()  # type: ignore[attr-defined]
                plan.shm.unlink()  # type: ignore[attr-defined]
            except OSError:
                pass
            plan.shm = None

    # -- cache interface ------------------------------------------------

    def get_or_build(
        self,
        distance: int,
        lo: int,
        hi: int,
        batch_size: int,
        iterator: str = "unrank",
    ) -> tuple[MaskPlan | None, bool]:
        """``(plan, was_hit)`` for the slice; ``(None, False)`` if too big.

        A returned plan stays valid for the caller even if it is evicted
        mid-search (eviction unlinks the shared segment's *name*; live
        mappings persist until dropped).
        """
        if lo >= hi:
            return None, False
        key = (distance, lo, hi, batch_size, iterator)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan, True
        rows = hi - lo
        if rows * _MASK_ROW_BYTES > self.max_plan_bytes:
            with self._lock:
                self.bypasses += 1
            return None, False
        # Build outside the lock — plan construction is the expensive
        # part and must not serialize concurrent searches. A racing
        # duplicate build is benign: last writer wins, bytes stay bounded.
        masks, shm = self._allocate(rows)
        try:
            _build_mask_rows(distance, lo, hi, batch_size, iterator, masks)
        except BaseException:
            MaskPlanCache._release(
                MaskPlan(distance, lo, hi, batch_size, iterator, masks, shm)
            )
            raise
        plan = MaskPlan(distance, lo, hi, batch_size, iterator, masks, shm)
        with self._lock:
            self.misses += 1
            existing = self._plans.pop(key, None)
            if existing is not None:
                # Lost a build race; keep the incumbent, drop ours.
                self._plans[key] = existing
                self._plans.move_to_end(key)
                stale = plan
            else:
                self._plans[key] = plan
                self.bytes_in_use += plan.nbytes
                stale = None
                self._evict_to_bound_locked()
        if stale is not None:
            MaskPlanCache._release(stale)
            with self._lock:
                return self._plans[key], False
        return plan, False

    def get(
        self, distance: int, lo: int, hi: int, batch_size: int,
        iterator: str = "unrank",
    ) -> MaskPlan | None:
        """The cached plan for the slice, or None (counts as hit/miss)."""
        key = (distance, lo, hi, batch_size, iterator)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def _evict_to_bound_locked(self) -> None:
        while self.bytes_in_use > self.max_bytes and len(self._plans) > 1:
            _key, plan = self._plans.popitem(last=False)
            self.bytes_in_use -= plan.nbytes
            self.evictions += 1
            MaskPlanCache._release(plan)

    def clear(self) -> None:
        """Drop every plan and unlink all shared segments."""
        with self._lock:
            plans = list(self._plans.values())
            self._plans.clear()
            self.bytes_in_use = 0
        for plan in plans:
            MaskPlanCache._release(plan)

    def stats(self) -> dict[str, int]:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "bytes_in_use": self.bytes_in_use,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


_global_cache: MaskPlanCache | None = None
_global_lock = threading.Lock()


def global_plan_cache() -> MaskPlanCache:
    """The process-wide cache shared by every cache-enabled engine."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = MaskPlanCache()
        return _global_cache


# -- worker-side attachment --------------------------------------------


def attach_plan(descriptor: PlanDescriptor) -> MaskPlan | None:
    """Map a shared plan built by the parent; None if it was evicted.

    The returned plan's ``shm`` handle must be released with
    :func:`detach_plan` (close only — the parent owns the unlink).
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    except (OSError, ValueError, ImportError):
        return None
    # Attaching re-registers the segment with this process's resource
    # tracker, which would unlink it a second time at worker exit;
    # unregister — the creating process owns cleanup.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    masks = np.ndarray(
        (descriptor.rows, SEED_WORDS64), dtype=np.uint64, buffer=shm.buf
    )
    return MaskPlan(
        distance=descriptor.distance,
        lo=descriptor.lo,
        hi=descriptor.hi,
        batch_size=descriptor.batch_size,
        iterator=descriptor.iterator,
        masks=masks,
        shm=shm,
    )


def detach_plan(plan: MaskPlan) -> None:
    """Drop a worker's mapping of a shared plan (never unlinks)."""
    if plan.shm is not None:
        try:
            plan.masks = np.empty((0, SEED_WORDS64), dtype=np.uint64)
            plan.shm.close()  # type: ignore[attr-defined]
        except OSError:
            pass
        plan.shm = None
