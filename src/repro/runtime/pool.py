"""Persistent worker pool: warm processes serving many searches.

:class:`~repro.runtime.parallel.ParallelSearchExecutor` pays a full
fork/join per search — acceptable for one-shot benchmarks, fatal for the
serving path, where the ROADMAP's "millions of users" each cost a pool
spin-up. This module keeps ``p`` worker processes alive across searches:

* workers block on a shared task queue and run
  :meth:`~repro.runtime.executor.BatchSearchExecutor.search_subspace`
  (the same body as every other engine) over their rank slice;
* each in-flight search owns a slot in a shared flag array — the
  early-exit signal of Algorithm 1 line 7/15 — so concurrent searches on
  one pool cannot stop each other;
* a router thread in the parent dispatches worker reports to the
  per-search waiter, so multiple serving threads can share one pool;
* workers *attach* the parent's shared-memory mask plans
  (:func:`repro.runtime.maskplan.attach_plan`) instead of re-unranking
  their slice, and memoize attachments across searches.

:class:`PooledSearchExecutor` is the engine-registry face
(``pool:sha3-256,workers=4``): first search pays plan building and pool
spawn (the cold path); every later search reuses both (the warm path the
amortization benchmark measures).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import binomial
from repro.engines.hooks import EngineHooks
from repro.engines.result import (
    AmortizationStats,
    SearchResult,
    ShellStats,
    merge_shells,
)
from repro.runtime.maskplan import (
    MaskPlan,
    MaskPlanCache,
    PlanDescriptor,
    attach_plan,
    detach_plan,
    global_plan_cache,
)
from repro.runtime.partition import partition_ranks

__all__ = ["default_worker_count", "WorkerPool", "PooledSearchExecutor"]

#: Concurrent searches one pool supports; slot allocation blocks beyond it.
_FLAG_SLOTS = 64

#: Shared-plan mappings each worker keeps across searches.
_WORKER_ATTACH_CACHE = 64


def default_worker_count() -> int:
    """Worker count respecting the process's cpuset, not the machine.

    ``mp.cpu_count()`` reports every core in the box; in containers and
    CI with restricted cpusets that over-subscribes by the cgroup ratio.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class _PoolTask:
    """One worker's share of one search, shipped over the task queue."""

    search_id: int
    worker_index: int
    hash_name: str
    batch_size: int
    iterator: str
    fixed_padding: bool
    base_seed: bytes
    target_digest: bytes
    max_distance: int
    rank_ranges: dict[int, tuple[int, int]]
    time_budget: float | None
    flag_slot: int
    plan_descriptors: tuple[PlanDescriptor, ...] = ()


@dataclass
class _PoolReport:
    """What one worker sends back for one task."""

    search_id: int
    worker_index: int
    found: bool = False
    seed: bytes | None = None
    distance: int | None = None
    seeds_hashed: int = 0
    timed_out: bool = False
    shells: tuple[ShellStats, ...] = ()
    plan_hits: int = 0
    plan_misses: int = 0
    error: str | None = None


def _pool_worker(task_queue: Any, result_queue: Any, flags: Any) -> None:
    """Worker main loop: serve tasks until the ``None`` sentinel.

    Engines are memoized per configuration and shared-plan attachments
    per segment name, so a warm worker's steady-state cost is exactly
    the search body — no construction, no re-unranking, no re-mapping.
    """
    from repro.runtime.executor import BatchSearchExecutor

    engines: dict[tuple[str, int, str, bool], BatchSearchExecutor] = {}
    attached: OrderedDict[str, MaskPlan] = OrderedDict()

    while True:
        task: _PoolTask | None = task_queue.get()
        if task is None:
            break
        try:
            config = (
                task.hash_name, task.batch_size, task.iterator,
                task.fixed_padding,
            )
            engine = engines.get(config)
            if engine is None:
                engine = BatchSearchExecutor(
                    hash_name=task.hash_name,
                    batch_size=task.batch_size,
                    iterator=task.iterator,
                    fixed_padding=task.fixed_padding,
                )
                engines[config] = engine

            plans: dict[tuple[int, int, int, int, str], MaskPlan] = {}
            for descriptor in task.plan_descriptors:
                plan = attached.get(descriptor.shm_name)
                if plan is None:
                    plan = attach_plan(descriptor)
                    if plan is None:
                        continue  # evicted since dispatch; stream instead
                    attached[descriptor.shm_name] = plan
                    while len(attached) > _WORKER_ATTACH_CACHE:
                        _name, stale = attached.popitem(last=False)
                        detach_plan(stale)
                else:
                    attached.move_to_end(descriptor.shm_name)
                plans[plan.key] = plan

            slot = task.flag_slot

            def stop() -> bool:
                return flags[slot] != 0

            def on_found() -> None:
                flags[slot] = 1

            report = engine.search_subspace(
                task.base_seed,
                task.target_digest,
                task.max_distance,
                task.rank_ranges,
                time_budget=task.time_budget,
                stop=stop,
                on_found=on_found,
                check_distance_zero=task.worker_index == 0,
                plans=plans,
            )
            result_queue.put(
                _PoolReport(
                    search_id=task.search_id,
                    worker_index=task.worker_index,
                    found=report.found,
                    seed=report.seed,
                    distance=report.distance,
                    seeds_hashed=report.seeds_hashed,
                    timed_out=report.timed_out,
                    shells=report.shells,
                    plan_hits=report.plan_hits,
                    plan_misses=report.plan_misses,
                )
            )
        except Exception as exc:  # pragma: no cover - defensive
            result_queue.put(
                _PoolReport(
                    search_id=task.search_id,
                    worker_index=task.worker_index,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )


class WorkerPool:
    """``workers`` warm processes plus the parent-side dispatch machinery.

    Thread-safe: multiple serving threads may call :meth:`run_search`
    concurrently; a router thread demultiplexes worker reports to the
    right caller by search id.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._flags = ctx.Array("i", _FLAG_SLOTS, lock=False)
        self._slot_lock = threading.Condition()
        self._free_slots = set(range(_FLAG_SLOTS))
        self._waiters: dict[int, queue.Queue[_PoolReport]] = {}
        self._waiters_lock = threading.Lock()
        self._search_ids = itertools.count(1)
        self._closed = False
        self.searches_served = 0
        self.workers_spawned = 0

        self._processes = [
            ctx.Process(
                target=_pool_worker,
                args=(self._task_queue, self._result_queue, self._flags),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        self.workers_spawned = self.workers

        self._router = threading.Thread(
            target=self._route_results, name="pool-router", daemon=True
        )
        self._router.start()
        self._finalizer = weakref.finalize(
            self, WorkerPool._shutdown,
            self._task_queue, self._result_queue, self._processes,
            self._router,
        )

    # -- parent-side plumbing ------------------------------------------

    def _route_results(self) -> None:
        while True:
            try:
                report = self._result_queue.get()
            # TypeError: a blocking read on a connection closed mid-get.
            except (EOFError, OSError, TypeError):  # pragma: no cover
                return
            if report is None:
                return
            with self._waiters_lock:
                waiter = self._waiters.get(report.search_id)
            if waiter is not None:
                waiter.put(report)

    def _acquire_slot(self) -> int:
        with self._slot_lock:
            while not self._free_slots:
                self._slot_lock.wait()
            slot = self._free_slots.pop()
        self._flags[slot] = 0
        return slot

    def _release_slot(self, slot: int) -> None:
        with self._slot_lock:
            self._free_slots.add(slot)
            self._slot_lock.notify()

    def alive_workers(self) -> int:
        """How many pool processes are currently alive."""
        return sum(1 for p in self._processes if p.is_alive())

    # -- searches -------------------------------------------------------

    def run_search(
        self,
        *,
        hash_name: str,
        batch_size: int,
        iterator: str,
        fixed_padding: bool,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        rank_ranges_by_worker: list[dict[int, tuple[int, int]]],
        time_budget: float | None,
        plan_descriptors_by_worker: list[tuple[PlanDescriptor, ...]] | None = None,
    ) -> list[_PoolReport]:
        """Dispatch one search across the pool; block for all reports.

        ``rank_ranges_by_worker[w]`` is worker ``w``'s slice of every
        shell. Raises ``RuntimeError`` if the pool is closed or a worker
        dies mid-search.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        search_id = next(self._search_ids)
        waiter: queue.Queue[_PoolReport] = queue.Queue()
        with self._waiters_lock:
            self._waiters[search_id] = waiter
        slot = self._acquire_slot()
        try:
            for w in range(self.workers):
                descriptors: tuple[PlanDescriptor, ...] = ()
                if plan_descriptors_by_worker is not None:
                    descriptors = plan_descriptors_by_worker[w]
                self._task_queue.put(
                    _PoolTask(
                        search_id=search_id,
                        worker_index=w,
                        hash_name=hash_name,
                        batch_size=batch_size,
                        iterator=iterator,
                        fixed_padding=fixed_padding,
                        base_seed=base_seed,
                        target_digest=target_digest,
                        max_distance=max_distance,
                        rank_ranges=rank_ranges_by_worker[w],
                        time_budget=time_budget,
                        flag_slot=slot,
                        plan_descriptors=descriptors,
                    )
                )
            reports: list[_PoolReport] = []
            while len(reports) < self.workers:
                try:
                    report = waiter.get(timeout=1.0)
                except queue.Empty:
                    if self._closed:
                        raise RuntimeError("worker pool closed mid-search") from None
                    if self.alive_workers() < self.workers:
                        self._flags[slot] = 1  # stop survivors promptly
                        raise RuntimeError(
                            "pool worker died mid-search"
                        ) from None
                    continue
                if report.error is not None:
                    self._flags[slot] = 1
                    raise RuntimeError(
                        f"pool worker {report.worker_index} failed: {report.error}"
                    )
                reports.append(report)
            self.searches_served += 1
            return reports
        finally:
            with self._waiters_lock:
                self._waiters.pop(search_id, None)
            self._release_slot(slot)

    # -- lifecycle ------------------------------------------------------

    @staticmethod
    def _shutdown(
        task_queue: Any,
        result_queue: Any,
        processes: list[Any],
        router: threading.Thread,
    ) -> None:
        """Idempotent teardown shared by close() and the GC finalizer."""
        for _ in processes:
            try:
                task_queue.put_nowait(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                break
        deadline = time.perf_counter() + 5.0
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.perf_counter()))
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        try:
            result_queue.put_nowait(None)  # wake the router thread
        except (OSError, ValueError):  # pragma: no cover - queue gone
            pass
        # The router must drain its sentinel before the queue's feeder
        # machinery is torn down, or its blocking get() reads from a
        # half-closed pipe.
        router.join(timeout=2.0)
        for q in (task_queue, result_queue):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass

    def close(self) -> None:
        """Stop the workers and release queues; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class PooledSearchExecutor:
    """Warm-pool search engine (``pool:`` specs) — SALTED serving mode.

    Identical search semantics to
    :class:`~repro.runtime.parallel.ParallelSearchExecutor` (same
    partitioning, same merge), but the worker processes persist across
    searches and mask plans come from the shared cache. The first search
    pays plan building + pool spawn; steady state is XOR + hash +
    compare per candidate.

    Parameters mirror the parallel engine, plus ``cache``/``warm``/
    ``plan_cache`` with the same meaning as on
    :class:`~repro.runtime.executor.BatchSearchExecutor`, and ``pool``
    to share one :class:`WorkerPool` between engines.
    """

    def __init__(
        self,
        hash_name: str = "sha3-256",
        workers: int | None = None,
        batch_size: int = 16384,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
        cache: bool = True,
        warm: int = 0,
        plan_cache: MaskPlanCache | None = None,
        pool: WorkerPool | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if warm < 0:
            raise ValueError("warm must be >= 0")
        self.hash_name = hash_name
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        self.batch_size = batch_size
        self.iterator = iterator
        self.fixed_padding = fixed_padding
        self.hooks = hooks
        self.cache = cache
        self.warm = warm
        self._plan_cache: MaskPlanCache | None = None
        if cache:
            self._plan_cache = (
                plan_cache if plan_cache is not None else global_plan_cache()
            )
        self._pool = pool
        self._owns_pool = pool is None
        self._pool_lock = threading.Lock()
        if warm > 0:
            self._ensure_pool()
            for distance in range(1, warm + 1):
                self._plan_slices(distance)

    @property
    def plan_cache(self) -> MaskPlanCache | None:
        """The mask-plan cache this engine reads, if caching is enabled."""
        return self._plan_cache

    @property
    def pool(self) -> WorkerPool | None:
        """The live worker pool, or None before the first search."""
        return self._pool

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        spec = (
            f"pool:{self.hash_name},workers={self.workers},"
            f"bs={self.batch_size}"
        )
        if self.iterator != "unrank":
            spec += f",it={self.iterator}"
        if not self.cache:
            spec += ",cache=no"
        if self.warm:
            spec += f",warm={self.warm}"
        return spec

    # -- plan / pool management ----------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        with self._pool_lock:
            if self._pool is None or (
                self._owns_pool and self._pool._closed
            ):
                self._pool = WorkerPool(self.workers)
                self._owns_pool = True
            return self._pool

    def _worker_ranges(self, max_distance: int) -> list[dict[int, tuple[int, int]]]:
        ranges: list[dict[int, tuple[int, int]]] = [
            {} for _ in range(self.workers)
        ]
        for distance in range(1, max_distance + 1):
            slices = partition_ranks(binomial(SEED_BITS, distance), self.workers)
            for w in range(self.workers):
                ranges[w][distance] = slices[w]
        return ranges

    def _plan_slices(
        self, max_distance: int
    ) -> tuple[list[tuple[PlanDescriptor, ...]], int, int]:
        """Build/look up every worker's shell-slice plans; count hits."""
        descriptors: list[tuple[PlanDescriptor, ...]] = []
        hits = misses = 0
        if self._plan_cache is None:
            return [() for _ in range(self.workers)], 0, 0
        for worker_ranges in self._worker_ranges(max_distance):
            worker_descriptors: list[PlanDescriptor] = []
            for distance, (lo, hi) in worker_ranges.items():
                if lo >= hi:
                    continue
                plan, hit = self._plan_cache.get_or_build(
                    distance, lo, hi, self.batch_size, self.iterator
                )
                if hit:
                    hits += 1
                else:
                    misses += 1
                if plan is not None:
                    descriptor = plan.descriptor()
                    if descriptor is not None:
                        worker_descriptors.append(descriptor)
            descriptors.append(tuple(worker_descriptors))
        return descriptors, hits, misses

    # -- search ---------------------------------------------------------

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Run the pooled parallel search; merges worker outcomes."""
        start_time = time.perf_counter()
        pool = self._ensure_pool()
        pool_was_warm = pool.searches_served > 0
        plan_descriptors, plan_hits, plan_misses = self._plan_slices(max_distance)
        reports = pool.run_search(
            hash_name=self.hash_name,
            batch_size=self.batch_size,
            iterator=self.iterator,
            fixed_padding=self.fixed_padding,
            base_seed=base_seed,
            target_digest=target_digest,
            max_distance=max_distance,
            rank_ranges_by_worker=self._worker_ranges(max_distance),
            time_budget=time_budget,
            plan_descriptors_by_worker=plan_descriptors,
        )

        found_seed = None
        found_distance = None
        total_hashed = 0
        any_timed_out = False
        shell_groups: list[tuple[ShellStats, ...]] = []
        for report in reports:
            total_hashed += report.seeds_hashed
            any_timed_out = any_timed_out or report.timed_out
            shell_groups.append(report.shells)
            plan_hits += report.plan_hits
            plan_misses += report.plan_misses
            if report.found:
                found_seed = report.seed
                found_distance = report.distance
        elapsed = time.perf_counter() - start_time
        timed_out = found_seed is None and (
            any_timed_out
            or (time_budget is not None and elapsed > time_budget)
        )
        shells = merge_shells(shell_groups)
        amortized = AmortizationStats(
            plan_hits=plan_hits,
            plan_misses=plan_misses,
            plan_bytes=(
                self._plan_cache.bytes_in_use
                if self._plan_cache is not None
                else 0
            ),
            pool_searches=pool.searches_served,
            pool_reused=pool_was_warm,
            workers_spawned=pool.workers_spawned,
        )
        if self.hooks is not None:
            for shell in shells:
                self.hooks.on_batch(shell.distance, shell.seeds_hashed)
                self.hooks.on_shell_complete(shell)
            on_amortization = getattr(self.hooks, "on_amortization", None)
            if on_amortization is not None:
                on_amortization(amortized)
        return SearchResult(
            found=found_seed is not None,
            seed=found_seed,
            distance=found_distance,
            seeds_hashed=total_hashed,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
            shells=shells,
            engine=self.describe(),
            amortized=amortized,
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut down the pool if this engine owns it; safe to call twice."""
        with self._pool_lock:
            if self._pool is not None and self._owns_pool:
                self._pool.close()
            self._pool = None

    def __enter__(self) -> "PooledSearchExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

