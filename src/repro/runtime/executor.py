"""Single-process vectorized RBC search executor.

This is Algorithm 1 with NumPy lanes standing in for GPU threads: at each
Hamming distance the executor pulls a batch of combinations, XORs the
resulting masks into the base seed, hashes the whole batch with one kernel
call, and compares all digests against the client's digest at once.

Two combination sources are supported, mirroring the paper's Table 4:

* ``"unrank"`` (default) — vectorized Algorithm-515-style unranking;
  batch generation is itself vectorized, so this is the fast path.
* any :class:`~repro.combinatorics.iterator_base.CombinationIterator`
  name (``"chase"``, ``"gosper"``, ``"lex"``, ``"unrank-scalar"``) —
  combinations are produced by stepping the scalar iterator; used to
  compare iterator costs on real hardware at reduced scale.

The search body itself lives in :meth:`BatchSearchExecutor.search_subspace`
— one implementation shared by :meth:`~BatchSearchExecutor.search`, the
fork-per-call parallel engine, and the persistent worker pool, so the
early-exit, timeout, and telemetry semantics cannot drift apart. With
``cache=True`` the executor reads XOR masks from the process-wide
:mod:`~repro.runtime.maskplan` cache instead of re-unranking every
search, cutting steady-state per-candidate work to XOR + hash + compare.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro._bitutils import (
    SEED_BITS,
    positions_to_mask_words,
    seed_to_words,
    words_to_seed,
)
from repro.combinatorics.binomial import binomial
from repro.combinatorics.ranking import unrank_lexicographic_batch
from repro.engines.hooks import EngineHooks
from repro.engines.result import AmortizationStats, SearchResult, ShellStats
from repro.hashes.registry import HashAlgorithm, get_hash
from repro.runtime.maskplan import (
    ITERATOR_CHOICES,
    MaskPlan,
    MaskPlanCache,
    combination_batches,
    global_plan_cache,
)

# SearchResult / ShellStats live in repro.engines.result now; re-exported
# here because half the codebase historically imported them from this
# module.
__all__ = [
    "SearchResult",
    "ShellStats",
    "SubspaceReport",
    "BatchSearchExecutor",
    "ITERATOR_CHOICES",
]


@dataclass(frozen=True)
class SubspaceReport:
    """Outcome of one :meth:`BatchSearchExecutor.search_subspace` call.

    The raw per-subspace shape the parallel and pooled engines merge;
    :meth:`BatchSearchExecutor.search` wraps it into a full
    :class:`~repro.engines.result.SearchResult`.
    """

    found: bool
    seed: bytes | None
    distance: int | None
    seeds_hashed: int
    elapsed_seconds: float
    timed_out: bool = False
    #: True when the shared early-exit flag stopped this subspace.
    stopped: bool = False
    shells: tuple[ShellStats, ...] = ()
    plan_hits: int = 0
    plan_misses: int = 0


class BatchSearchExecutor:
    """Vectorized single-process search engine.

    Parameters
    ----------
    hash_name:
        Registered hash algorithm ("sha1", "sha256", "sha3-256").
    batch_size:
        Seeds hashed per kernel call — the lane width. This plays the
        role of the GPU's total thread count times seeds-per-check.
    iterator:
        Combination source; see module docstring.
    fixed_padding:
        Use the fixed-pad fast path (paper Section 3.2.2).
    hooks:
        Optional :class:`~repro.engines.hooks.EngineHooks` telemetry tap.
    cache:
        Read XOR masks from the process-wide mask-plan cache instead of
        re-unranking per search (spec option ``cache=yes``). Results are
        byte-identical either way; only the per-search cost changes.
    warm:
        Prebuild full-range plans for distances ``1..warm`` at
        construction time (spec option ``warm=N``; implies ``cache``),
        so even the first search runs on the amortized path.
    plan_cache:
        Cache instance to use; defaults to the global process-wide one.
    """

    def __init__(
        self,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
        cache: bool = False,
        warm: int = 0,
        plan_cache: MaskPlanCache | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if iterator not in ITERATOR_CHOICES:
            raise ValueError(
                f"unknown iterator {iterator!r}; choices: {ITERATOR_CHOICES}"
            )
        if warm < 0:
            raise ValueError("warm must be >= 0")
        self.algo: HashAlgorithm = get_hash(hash_name)
        self.batch_size = batch_size
        self.iterator = iterator
        self.fixed_padding = fixed_padding
        self.hooks = hooks
        self.cache = cache or warm > 0 or plan_cache is not None
        self.warm = warm
        self._plan_cache: MaskPlanCache | None = None
        if self.cache:
            self._plan_cache = (
                plan_cache if plan_cache is not None else global_plan_cache()
            )
            for distance in range(1, warm + 1):
                self._plan_cache.get_or_build(
                    distance, 0, binomial(SEED_BITS, distance),
                    self.batch_size, self.iterator,
                )

    @property
    def hash_name(self) -> str:
        """Canonical name of the hash this engine searches with."""
        return self.algo.name

    @property
    def plan_cache(self) -> MaskPlanCache | None:
        """The mask-plan cache this engine reads, if caching is enabled."""
        return self._plan_cache

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        spec = f"batch:{self.algo.name},bs={self.batch_size}"
        if self.iterator != "unrank":
            spec += f",it={self.iterator}"
        if self.cache:
            spec += ",cache=yes"
        if self.warm:
            spec += f",warm={self.warm}"
        return spec

    # -- combination batches -------------------------------------------

    def _combination_batches(
        self, distance: int, start: int, stop: int
    ) -> Iterator[np.ndarray]:
        """Yield ``(N, distance)`` position arrays covering ranks [start, stop)."""
        yield from combination_batches(
            distance, start, stop, self.batch_size, self.iterator
        )

    def _mask_batches(
        self,
        distance: int,
        lo: int,
        hi: int,
        counters: list[int],
        plans: dict[tuple[int, int, int, int, str], MaskPlan] | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield ``(N, 4)`` mask-word batches for one shell slice.

        Prefers, in order: a caller-supplied attached plan (pool workers
        mapping the parent's shared memory), the plan cache, streaming
        generation. ``counters`` is ``[hits, misses]`` for this search.
        """
        plan: MaskPlan | None = None
        if plans is not None:
            plan = plans.get((distance, lo, hi, self.batch_size, self.iterator))
            if plan is not None:
                counters[0] += 1
        if plan is None and self._plan_cache is not None:
            plan, hit = self._plan_cache.get_or_build(
                distance, lo, hi, self.batch_size, self.iterator
            )
            counters[0 if hit else 1] += 1
        if plan is not None:
            yield from plan.batches()
            return
        for positions in self._combination_batches(distance, lo, hi):
            yield positions_to_mask_words(positions)

    def mask_batches(
        self,
        distance: int,
        lo: int,
        hi: int,
        counters: list[int] | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield ``(N, 4)`` mask-word batches covering ranks ``[lo, hi)``.

        The public face of the mask pipeline for out-of-module harnesses
        (the :mod:`repro.sched` work-unit cursors): plan-cache aware when
        caching is enabled, streaming otherwise. ``counters`` is an
        optional ``[hits, misses]`` pair this call increments.
        """
        yield from self._mask_batches(
            distance, lo, hi, counters if counters is not None else [0, 0]
        )

    # -- search ---------------------------------------------------------

    def search_subspace(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        rank_ranges: dict[int, tuple[int, int]],
        *,
        time_budget: float | None = None,
        stop: Callable[[], bool] | None = None,
        on_found: Callable[[], None] | None = None,
        check_distance_zero: bool = True,
        on_batch: Callable[[int, int], None] | None = None,
        on_shell: Callable[[ShellStats], None] | None = None,
        plans: dict[tuple[int, int, int, int, str], MaskPlan] | None = None,
    ) -> SubspaceReport:
        """Algorithm 1 over one rank-partitioned slice of the ball.

        The shared search body: every engine (single-process, fork-based
        parallel, persistent pool) runs this exact loop, so early-exit,
        timeout, and found-seed semantics are identical across them.

        ``rank_ranges`` maps distance -> ``[lo, hi)``; distances absent
        from the map (or with empty ranges) are skipped. ``stop`` is the
        shared early-exit flag, checked before every batch; ``on_found``
        fires the moment a match is seen (workers raise the flag here,
        before any reporting). ``check_distance_zero`` mirrors Algorithm
        1 lines 4-8, where only thread r=0 checks S_init itself.
        """
        start_time = time.perf_counter()
        target_words = self.algo.digest_to_words(target_digest)
        base_words = seed_to_words(base_seed)
        seeds_hashed = 0
        shells: list[ShellStats] = []
        counters = [0, 0]  # [plan hits, plan misses]

        def shell_done(shell: ShellStats) -> None:
            shells.append(shell)
            if on_shell is not None:
                on_shell(shell)

        def report(
            found: bool,
            seed: bytes | None = None,
            distance: int | None = None,
            timed_out: bool = False,
            stopped: bool = False,
        ) -> SubspaceReport:
            return SubspaceReport(
                found=found,
                seed=seed,
                distance=distance,
                seeds_hashed=seeds_hashed,
                elapsed_seconds=time.perf_counter() - start_time,
                timed_out=timed_out,
                stopped=stopped,
                shells=tuple(shells),
                plan_hits=counters[0],
                plan_misses=counters[1],
            )

        if check_distance_zero:
            # Distance 0: thread r=0 checks S_init (Algorithm 1 l.4-8).
            digest0 = self.algo.hash_seed(base_seed)
            seeds_hashed += 1
            if on_batch is not None:
                on_batch(0, 1)
            shell_done(ShellStats(0, 1, time.perf_counter() - start_time))
            if digest0 == target_digest:
                if on_found is not None:
                    on_found()
                return report(True, base_seed, 0)

        for distance in range(1, max_distance + 1):
            lo, hi = rank_ranges.get(distance, (0, 0))
            if lo >= hi:
                continue
            shell_start = time.perf_counter()
            shell_hashed = 0
            for masks in self._mask_batches(distance, lo, hi, counters, plans):
                if stop is not None and stop():
                    shell_done(
                        ShellStats(
                            distance, shell_hashed,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return report(False, stopped=True)
                candidate_words = base_words[None, :] ^ masks
                digests = self.algo.hash_seeds_batch(
                    candidate_words, fixed_padding=self.fixed_padding
                )
                seeds_hashed += candidate_words.shape[0]
                shell_hashed += candidate_words.shape[0]
                if on_batch is not None:
                    on_batch(distance, candidate_words.shape[0])
                matches = np.flatnonzero((digests == target_words).all(axis=1))
                if matches.size:
                    if on_found is not None:
                        on_found()
                    found = words_to_seed(candidate_words[int(matches[0])])
                    shell_done(
                        ShellStats(
                            distance, shell_hashed,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return report(True, found, distance)
                if (
                    time_budget is not None
                    and time.perf_counter() - start_time > time_budget
                ):
                    shell_done(
                        ShellStats(
                            distance, shell_hashed,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return report(False, timed_out=True)
            shell_done(
                ShellStats(distance, shell_hashed, time.perf_counter() - shell_start)
            )
        return report(False)

    def _amortization(self, plan_hits: int, plan_misses: int) -> AmortizationStats | None:
        """Telemetry extension for this search; None when caching is off."""
        if self._plan_cache is None:
            return None
        stats = AmortizationStats(
            plan_hits=plan_hits,
            plan_misses=plan_misses,
            plan_bytes=self._plan_cache.bytes_in_use,
        )
        on_amortization = getattr(self.hooks, "on_amortization", None)
        if on_amortization is not None:
            on_amortization(stats)
        return stats

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
        rank_range_by_distance: dict[int, tuple[int, int]] | None = None,
    ) -> SearchResult:
        """Run Algorithm 1: search Hamming distances 0..max_distance.

        ``rank_range_by_distance`` restricts each shell to a rank
        sub-range — how a multi-worker harness splits the space.
        ``time_budget`` enforces the protocol's T threshold; on expiry the
        result has ``timed_out=True``.
        """
        rank_ranges: dict[int, tuple[int, int]] = {}
        for distance in range(1, max_distance + 1):
            total = binomial(SEED_BITS, distance)
            lo, hi = (0, total)
            if rank_range_by_distance and distance in rank_range_by_distance:
                lo, hi = rank_range_by_distance[distance]
            rank_ranges[distance] = (lo, hi)
        hooks = self.hooks
        subspace = self.search_subspace(
            base_seed,
            target_digest,
            max_distance,
            rank_ranges,
            time_budget=time_budget,
            on_batch=hooks.on_batch if hooks is not None else None,
            on_shell=hooks.on_shell_complete if hooks is not None else None,
        )
        return SearchResult(
            found=subspace.found,
            seed=subspace.seed,
            distance=subspace.distance,
            seeds_hashed=subspace.seeds_hashed,
            elapsed_seconds=subspace.elapsed_seconds,
            timed_out=subspace.timed_out,
            shells=subspace.shells,
            engine=self.describe(),
            amortized=self._amortization(subspace.plan_hits, subspace.plan_misses),
        )

    def throughput_probe(
        self,
        num_seeds: int = 50000,
        rng_seed: int = 0,
        breakdown: bool = False,
        distance: int = 3,
    ) -> float | dict[str, float]:
        """Measured hashes/second of this executor's kernel on this host.

        Feeds the device-model calibration cross-checks: the paper's
        throughput constants are scaled, but the *relative* costs between
        hash algorithms come out of probes like this one.

        With ``breakdown=True`` the probe times each pipeline stage
        separately — unrank, mask build, hash, compare — and returns a
        dict of per-stage seeds/second plus the combined ``total``. The
        stage rates attribute the amortization win: unrank + mask are
        exactly what the plan cache removes from the steady-state path.
        """
        rng = np.random.default_rng(rng_seed)
        words = rng.integers(0, 1 << 63, size=(num_seeds, 4), dtype=np.int64)
        words = words.astype(np.uint64)
        if not breakdown:
            start = time.perf_counter()
            self.algo.hash_seeds_batch(words, fixed_padding=self.fixed_padding)
            elapsed = time.perf_counter() - start
            return num_seeds / elapsed

        count = min(num_seeds, binomial(SEED_BITS, distance))
        ranks = np.arange(count, dtype=np.uint64)
        timings: dict[str, float] = {}

        start = time.perf_counter()
        positions = unrank_lexicographic_batch(SEED_BITS, distance, ranks)
        timings["unrank"] = time.perf_counter() - start

        start = time.perf_counter()
        masks = positions_to_mask_words(positions)
        timings["mask"] = time.perf_counter() - start

        base_words = words[0]
        start = time.perf_counter()
        candidate_words = base_words[None, :] ^ masks
        digests = self.algo.hash_seeds_batch(
            candidate_words, fixed_padding=self.fixed_padding
        )
        timings["hash"] = time.perf_counter() - start

        target_words = digests[0].copy()
        start = time.perf_counter()
        np.flatnonzero((digests == target_words).all(axis=1))
        timings["compare"] = time.perf_counter() - start

        tiny = 1e-12
        rates = {
            stage: count / max(elapsed, tiny)
            for stage, elapsed in timings.items()
        }
        rates["total"] = count / max(sum(timings.values()), tiny)
        return rates
