"""Single-process vectorized RBC search executor.

This is Algorithm 1 with NumPy lanes standing in for GPU threads: at each
Hamming distance the executor pulls a batch of combinations, XORs the
resulting masks into the base seed, hashes the whole batch with one kernel
call, and compares all digests against the client's digest at once.

Two combination sources are supported, mirroring the paper's Table 4:

* ``"unrank"`` (default) — vectorized Algorithm-515-style unranking;
  batch generation is itself vectorized, so this is the fast path.
* any :class:`~repro.combinatorics.iterator_base.CombinationIterator`
  name (``"chase"``, ``"gosper"``, ``"lex"``, ``"unrank-scalar"``) —
  combinations are produced by stepping the scalar iterator; used to
  compare iterator costs on real hardware at reduced scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro._bitutils import (
    SEED_BITS,
    positions_to_mask_words,
    seed_to_words,
    words_to_seed,
)
from repro.combinatorics.algorithm154 import Algorithm154Iterator
from repro.combinatorics.algorithm382 import Algorithm382Iterator
from repro.combinatorics.algorithm515 import Algorithm515Iterator
from repro.combinatorics.binomial import binomial
from repro.combinatorics.chase382 import Chase382Iterator
from repro.combinatorics.gosper import GosperIterator
from repro.combinatorics.ranking import unrank_lexicographic_batch
from repro.engines.hooks import EngineHooks
from repro.engines.result import SearchResult, ShellStats
from repro.hashes.registry import HashAlgorithm, get_hash

# SearchResult / ShellStats live in repro.engines.result now; re-exported
# here because half the codebase historically imported them from this
# module.
__all__ = ["SearchResult", "ShellStats", "BatchSearchExecutor", "ITERATOR_CHOICES"]

ITERATOR_CHOICES = (
    "unrank", "chase", "chase-382", "gosper", "lex", "unrank-scalar",
)

_SCALAR_ITERATORS = {
    "chase": Algorithm382Iterator,      # revolving-door minimal change
    "chase-382": Chase382Iterator,      # Chase's Algorithm 382 proper
    "gosper": GosperIterator,
    "lex": Algorithm154Iterator,
    "unrank-scalar": Algorithm515Iterator,
}


class BatchSearchExecutor:
    """Vectorized single-process search engine.

    Parameters
    ----------
    hash_name:
        Registered hash algorithm ("sha1", "sha256", "sha3-256").
    batch_size:
        Seeds hashed per kernel call — the lane width. This plays the
        role of the GPU's total thread count times seeds-per-check.
    iterator:
        Combination source; see module docstring.
    fixed_padding:
        Use the fixed-pad fast path (paper Section 3.2.2).
    hooks:
        Optional :class:`~repro.engines.hooks.EngineHooks` telemetry tap.
    """

    def __init__(
        self,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if iterator not in ITERATOR_CHOICES:
            raise ValueError(
                f"unknown iterator {iterator!r}; choices: {ITERATOR_CHOICES}"
            )
        self.algo: HashAlgorithm = get_hash(hash_name)
        self.batch_size = batch_size
        self.iterator = iterator
        self.fixed_padding = fixed_padding
        self.hooks = hooks

    @property
    def hash_name(self) -> str:
        """Canonical name of the hash this engine searches with."""
        return self.algo.name

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        spec = f"batch:{self.algo.name},bs={self.batch_size}"
        if self.iterator != "unrank":
            spec += f",it={self.iterator}"
        return spec

    # -- combination batches -------------------------------------------

    def _combination_batches(self, distance: int, start: int, stop: int):
        """Yield ``(N, distance)`` position arrays covering ranks [start, stop)."""
        if self.iterator == "unrank":
            for lo in range(start, stop, self.batch_size):
                hi = min(lo + self.batch_size, stop)
                ranks = np.arange(lo, hi, dtype=np.uint64)
                yield unrank_lexicographic_batch(SEED_BITS, distance, ranks)
            return
        iterator = _SCALAR_ITERATORS[self.iterator](SEED_BITS, distance)
        iterator.skip_to(start)
        remaining = stop - start
        while remaining > 0:
            count = min(self.batch_size, remaining)
            combos = iterator.take(count)
            yield np.array(combos, dtype=np.int64)
            remaining -= len(combos)
            if len(combos) < count:
                return  # sequence exhausted early (shouldn't happen)
            if remaining > 0 and not iterator.advance():
                return

    # -- search ---------------------------------------------------------

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
        rank_range_by_distance: dict[int, tuple[int, int]] | None = None,
    ) -> SearchResult:
        """Run Algorithm 1: search Hamming distances 0..max_distance.

        ``rank_range_by_distance`` restricts each shell to a rank
        sub-range — how a multi-worker harness splits the space.
        ``time_budget`` enforces the protocol's T threshold; on expiry the
        result has ``timed_out=True``.
        """
        start_time = time.perf_counter()
        target_words = self.algo.digest_to_words(target_digest)
        base_words = seed_to_words(base_seed)
        seeds_hashed = 0
        shells: list[ShellStats] = []

        def shell_done(shell: ShellStats) -> None:
            shells.append(shell)
            if self.hooks is not None:
                self.hooks.on_shell_complete(shell)

        # Distance 0: thread r=0 checks S_init itself (Algorithm 1 l.4-8).
        digest0 = self.algo.hash_seed(base_seed)
        seeds_hashed += 1
        if self.hooks is not None:
            self.hooks.on_batch(0, 1)
        shell_done(ShellStats(0, 1, time.perf_counter() - start_time))
        if digest0 == target_digest:
            return SearchResult(
                True, base_seed, 0, seeds_hashed,
                time.perf_counter() - start_time, shells=tuple(shells),
                engine=self.describe(),
            )

        for distance in range(1, max_distance + 1):
            total = binomial(SEED_BITS, distance)
            lo, hi = (0, total)
            if rank_range_by_distance and distance in rank_range_by_distance:
                lo, hi = rank_range_by_distance[distance]
            if lo >= hi:
                continue
            shell_start = time.perf_counter()
            shell_hashed = 0
            for positions in self._combination_batches(distance, lo, hi):
                masks = positions_to_mask_words(positions)
                candidate_words = base_words[None, :] ^ masks
                digests = self.algo.hash_seeds_batch(
                    candidate_words, fixed_padding=self.fixed_padding
                )
                seeds_hashed += candidate_words.shape[0]
                shell_hashed += candidate_words.shape[0]
                if self.hooks is not None:
                    self.hooks.on_batch(distance, candidate_words.shape[0])
                matches = np.flatnonzero((digests == target_words).all(axis=1))
                if matches.size:
                    index = int(matches[0])
                    found = words_to_seed(candidate_words[index])
                    shell_done(
                        ShellStats(
                            distance, shell_hashed,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return SearchResult(
                        True, found, distance, seeds_hashed,
                        time.perf_counter() - start_time, shells=tuple(shells),
                        engine=self.describe(),
                    )
                if (
                    time_budget is not None
                    and time.perf_counter() - start_time > time_budget
                ):
                    shell_done(
                        ShellStats(
                            distance, shell_hashed,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return SearchResult(
                        False, None, None, seeds_hashed,
                        time.perf_counter() - start_time, timed_out=True,
                        shells=tuple(shells), engine=self.describe(),
                    )
            shell_done(
                ShellStats(distance, shell_hashed, time.perf_counter() - shell_start)
            )
        return SearchResult(
            False, None, None, seeds_hashed, time.perf_counter() - start_time,
            shells=tuple(shells), engine=self.describe(),
        )

    def throughput_probe(self, num_seeds: int = 50000, rng_seed: int = 0) -> float:
        """Measured hashes/second of this executor's kernel on this host.

        Feeds the device-model calibration cross-checks: the paper's
        throughput constants are scaled, but the *relative* costs between
        hash algorithms come out of probes like this one.
        """
        rng = np.random.default_rng(rng_seed)
        words = rng.integers(0, 1 << 63, size=(num_seeds, 4), dtype=np.int64)
        words = words.astype(np.uint64)
        start = time.perf_counter()
        self.algo.hash_seeds_batch(words, fixed_padding=self.fixed_padding)
        elapsed = time.perf_counter() - start
        return num_seeds / elapsed
