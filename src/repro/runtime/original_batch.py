"""Vectorized original (algorithm-aware) RBC search.

The live, high-throughput version of the Table 7 baselines: per
candidate seed, run a *key-agile* batched cipher (AES-128, SPECK or
ChaCha20 — each lane has its own key) and compare the public responses.
This is what prior-work GPU engines did in CUDA; here the NumPy batch
kernels stand in, so the RBC-SALTED vs original comparison can be run
end-to-end with real code on this host at reduced Hamming distances.

PQC baselines (SABER/Dilithium) stay scalar — their per-candidate cost
is the point, and :class:`repro.core.original_rbc.OriginalRBCSearch`
covers them.
"""

from __future__ import annotations

import time

import numpy as np

from repro._bitutils import SEED_BITS, positions_to_mask_words, seed_to_words, words_to_seed
from repro.combinatorics.binomial import binomial
from repro.combinatorics.ranking import unrank_lexicographic_batch
from repro.keygen.batch_aes import aes128_encrypt_batch
from repro.keygen.batch_chacha20 import chacha20_block_batch
from repro.engines.hooks import EngineHooks
from repro.engines.result import SearchResult, ShellStats
from repro.keygen.batch_speck import speck128_encrypt_batch
from repro.keygen.interface import _FIXED_PLAINTEXT

__all__ = ["BatchOriginalRBCSearch", "BATCH_KEYGEN_CHOICES"]

BATCH_KEYGEN_CHOICES = ("aes-128", "speck-128", "chacha20")

_FIXED_PT_NP = np.frombuffer(_FIXED_PLAINTEXT, dtype=np.uint8)


def _words_to_bytes_rows(words: np.ndarray) -> np.ndarray:
    """``(N, 4)`` uint64 seed words -> ``(N, 32)`` uint8 big-endian rows."""
    raw = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    return raw.reshape(-1, 32)[:, ::-1]


def _aes_response_batch(seed_rows: np.ndarray) -> np.ndarray:
    keys = np.ascontiguousarray(seed_rows[:, :16])
    tweaked = seed_rows[:, 16:] ^ _FIXED_PT_NP
    return aes128_encrypt_batch(keys, tweaked)


def _speck_response_batch(seed_rows: np.ndarray) -> np.ndarray:
    keys = np.ascontiguousarray(seed_rows[:, :16])
    tweaked = np.ascontiguousarray(seed_rows[:, 16:] ^ _FIXED_PT_NP)
    return speck128_encrypt_batch(keys, tweaked)


def _chacha_response_batch(seed_rows: np.ndarray) -> np.ndarray:
    return chacha20_block_batch(np.ascontiguousarray(seed_rows))[:, :32]


_RESPONSE_KERNELS = {
    "aes-128": _aes_response_batch,
    "speck-128": _speck_response_batch,
    "chacha20": _chacha_response_batch,
}

_RESPONSE_SIZES = {"aes-128": 16, "speck-128": 16, "chacha20": 32}


class BatchOriginalRBCSearch:
    """Key-agile batched original-RBC engine (AES / SPECK / ChaCha20)."""

    def __init__(
        self,
        keygen_name: str = "aes-128",
        batch_size: int = 8192,
        hooks: EngineHooks | None = None,
    ):
        if keygen_name not in _RESPONSE_KERNELS:
            raise ValueError(
                f"no batch kernel for {keygen_name!r}; choices: {BATCH_KEYGEN_CHOICES}"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.keygen_name = keygen_name
        self.batch_size = batch_size
        self.hooks = hooks
        self._kernel = _RESPONSE_KERNELS[keygen_name]
        self._response_size = _RESPONSE_SIZES[keygen_name]

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        return f"original:{self.keygen_name},bs={self.batch_size}"

    def response_batch(self, seed_words: np.ndarray) -> np.ndarray:
        """Public responses for a batch of candidate seeds (words form)."""
        return self._kernel(_words_to_bytes_rows(seed_words))

    def search(
        self,
        base_seed: bytes,
        target_response: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Search distances 0..max_distance by batched response comparison."""
        if len(target_response) != self._response_size:
            raise ValueError(
                f"{self.keygen_name} responses are {self._response_size} bytes"
            )
        start = time.perf_counter()
        target = np.frombuffer(target_response, dtype=np.uint8)
        base_words = seed_to_words(base_seed)
        generated = 0
        shells: list[ShellStats] = []

        def shell_done(shell: ShellStats) -> None:
            shells.append(shell)
            if self.hooks is not None:
                self.hooks.on_shell_complete(shell)

        # Distance 0.
        generated += 1
        if self.hooks is not None:
            self.hooks.on_batch(0, 1)
        match0 = (
            self.response_batch(base_words[None, :])[0].tobytes()
            == target_response
        )
        shell_done(ShellStats(0, 1, time.perf_counter() - start))
        if match0:
            return SearchResult(
                True, base_seed, 0, generated, time.perf_counter() - start,
                shells=tuple(shells), engine=self.describe(),
            )

        for distance in range(1, max_distance + 1):
            total = binomial(SEED_BITS, distance)
            shell_start = time.perf_counter()
            shell_generated = 0
            for lo in range(0, total, self.batch_size):
                hi = min(lo + self.batch_size, total)
                ranks = np.arange(lo, hi, dtype=np.uint64)
                positions = unrank_lexicographic_batch(SEED_BITS, distance, ranks)
                masks = positions_to_mask_words(positions)
                candidates = base_words[None, :] ^ masks
                responses = self.response_batch(candidates)
                generated += candidates.shape[0]
                shell_generated += candidates.shape[0]
                if self.hooks is not None:
                    self.hooks.on_batch(distance, candidates.shape[0])
                matches = np.flatnonzero((responses == target).all(axis=1))
                if matches.size:
                    found = words_to_seed(candidates[int(matches[0])])
                    shell_done(
                        ShellStats(
                            distance, shell_generated,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return SearchResult(
                        True, found, distance, generated,
                        time.perf_counter() - start,
                        shells=tuple(shells), engine=self.describe(),
                    )
                if (
                    time_budget is not None
                    and time.perf_counter() - start > time_budget
                ):
                    shell_done(
                        ShellStats(
                            distance, shell_generated,
                            time.perf_counter() - shell_start,
                        )
                    )
                    return SearchResult(
                        False, None, None, generated,
                        time.perf_counter() - start, timed_out=True,
                        shells=tuple(shells), engine=self.describe(),
                    )
            shell_done(
                ShellStats(
                    distance, shell_generated, time.perf_counter() - shell_start
                )
            )
        return SearchResult(
            False, None, None, generated, time.perf_counter() - start,
            shells=tuple(shells), engine=self.describe(),
        )

    def throughput_probe(self, num_seeds: int = 30000, rng_seed: int = 0) -> float:
        """Measured key-agile responses/second on this host."""
        rng = np.random.default_rng(rng_seed)
        words = rng.integers(0, 1 << 63, size=(num_seeds, 4), dtype=np.int64)
        words = words.astype(np.uint64)
        start = time.perf_counter()
        self.response_batch(words)
        return num_seeds / (time.perf_counter() - start)
