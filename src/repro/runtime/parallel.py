"""Multiprocessing RBC search with a shared early-exit flag.

The Python analogue of SALTED-CPU: ``p`` worker processes each own a
contiguous rank range of every Hamming-distance shell and run the
vectorized batch search over it; a shared flag (the OpenMP variant keeps
it in main memory, Algorithm 1 lines 7/15) tells everyone to stop as soon
as any worker finds the seed.

Workers check the flag between kernel batches — the same granularity knob
the paper studies in Section 4.4 (it found checking every iteration free
on the GPU; between-batch checking is the vectorized equivalent).

The search body itself is
:meth:`~repro.runtime.executor.BatchSearchExecutor.search_subspace` —
shared with the single-process and pooled engines, so flag, timeout, and
telemetry semantics are identical across all three. This engine forks a
fresh pool per call (simple, fully isolated); the serving path uses
:class:`~repro.runtime.pool.PooledSearchExecutor`, which keeps workers
warm across searches.

Telemetry: workers report per-shell statistics back to the parent, which
merges them per distance (seed counts add, seconds take the slowest
worker) so the unified :class:`~repro.engines.result.SearchResult` is as
instrumented as the single-process engine's. Hooks do not cross process
boundaries; the parent fires ``on_shell_complete`` for merged shells.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import binomial
from repro.engines.hooks import EngineHooks
from repro.engines.registry import build_engine
from repro.engines.result import SearchResult, ShellStats, merge_shells
from repro.runtime.partition import partition_ranks
from repro.runtime.pool import default_worker_count

__all__ = ["ParallelSearchExecutor"]


@dataclass
class _WorkerTask:
    worker_index: int
    hash_name: str
    batch_size: int
    iterator: str
    fixed_padding: bool
    base_seed: bytes
    target_digest: bytes
    max_distance: int
    rank_ranges: dict[int, tuple[int, int]]
    time_budget: float | None


@dataclass
class _WorkerReport:
    """What one worker sends back on the result queue."""

    worker_index: int
    found: bool
    seed: bytes | None
    distance: int | None
    seeds_hashed: int
    timed_out: bool = False
    shells: tuple[ShellStats, ...] = ()


def _search_worker(task: _WorkerTask, flag, result_queue) -> None:
    """Worker body: batch-search this worker's subspace, honor the flag."""
    executor = build_engine(
        "batch",
        hash_name=task.hash_name,
        batch_size=task.batch_size,
        iterator=task.iterator,
        fixed_padding=task.fixed_padding,
    )

    def on_found() -> None:
        flag.value = 1

    report = executor.search_subspace(
        task.base_seed,
        task.target_digest,
        task.max_distance,
        task.rank_ranges,
        time_budget=task.time_budget,
        stop=lambda: bool(flag.value),
        on_found=on_found,
        check_distance_zero=task.worker_index == 0,
    )
    result_queue.put(
        _WorkerReport(
            worker_index=task.worker_index,
            found=report.found,
            seed=report.seed,
            distance=report.distance,
            seeds_hashed=report.seeds_hashed,
            timed_out=report.timed_out,
            shells=report.shells,
        )
    )


class ParallelSearchExecutor:
    """Data-parallel search over ``workers`` processes (SALTED-CPU analogue)."""

    def __init__(
        self,
        hash_name: str = "sha3-256",
        workers: int | None = None,
        batch_size: int = 8192,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
    ):
        self.hash_name = hash_name
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        self.batch_size = batch_size
        self.iterator = iterator
        self.fixed_padding = fixed_padding
        self.hooks = hooks

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        spec = (
            f"parallel:{self.hash_name},workers={self.workers},"
            f"bs={self.batch_size}"
        )
        if self.iterator != "unrank":
            spec += f",it={self.iterator}"
        return spec

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Run the parallel search; merges worker outcomes."""
        start_time = time.perf_counter()
        ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        flag = ctx.Value("i", 0)
        result_queue = ctx.Queue()

        processes = []
        for w in range(self.workers):
            rank_ranges = {}
            for distance in range(1, max_distance + 1):
                ranges = partition_ranks(binomial(SEED_BITS, distance), self.workers)
                rank_ranges[distance] = ranges[w]
            task = _WorkerTask(
                worker_index=w,
                hash_name=self.hash_name,
                batch_size=self.batch_size,
                iterator=self.iterator,
                fixed_padding=self.fixed_padding,
                base_seed=base_seed,
                target_digest=target_digest,
                max_distance=max_distance,
                rank_ranges=rank_ranges,
                time_budget=time_budget,
            )
            proc = ctx.Process(
                target=_search_worker, args=(task, flag, result_queue), daemon=True
            )
            proc.start()
            processes.append(proc)

        found_seed = None
        found_distance = None
        total_hashed = 0
        any_timed_out = False
        shell_groups: list[tuple[ShellStats, ...]] = []
        for _ in range(self.workers):
            report: _WorkerReport = result_queue.get()
            total_hashed += report.seeds_hashed
            any_timed_out = any_timed_out or report.timed_out
            shell_groups.append(report.shells)
            if report.found:
                found_seed = report.seed
                found_distance = report.distance
        for proc in processes:
            proc.join()
        elapsed = time.perf_counter() - start_time
        timed_out = found_seed is None and (
            any_timed_out
            or (time_budget is not None and elapsed > time_budget)
        )
        shells = merge_shells(shell_groups)
        if self.hooks is not None:
            for shell in shells:
                self.hooks.on_batch(shell.distance, shell.seeds_hashed)
                self.hooks.on_shell_complete(shell)
        return SearchResult(
            found=found_seed is not None,
            seed=found_seed,
            distance=found_distance,
            seeds_hashed=total_hashed,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
            shells=shells,
            engine=self.describe(),
        )
