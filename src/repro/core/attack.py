"""Opponent modeling and protocol security checks (paper Section 2.2).

The security argument of RBC rests on three measurable properties:

1. **Complexity asymmetry** — an opponent without the PUF image faces
   the full 2^256 space (Equation 2). :class:`OpponentSimulator` runs a
   real (sampled) brute-force against a captured digest and extrapolates
   the time-to-break from the measured throughput.
2. **Digest/key decoupling** — the salt removes any correspondence
   between the wire digest and the deployed public key;
   :func:`digest_key_correlation` measures it (Hamming correlation of
   the two derivations over random seeds).
3. **Avalanche** — the hash must diffuse single-bit seed changes into
   ~50% digest changes, or shell-local search structure would leak;
   :func:`avalanche_profile` measures it for any registered hash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._bitutils import SEED_BITS, flip_bits, hamming_distance
from repro.core.salting import SaltScheme
from repro.hashes.registry import get_hash
from repro.keygen.interface import KeyGenerator

__all__ = [
    "BruteForceEstimate",
    "OpponentSimulator",
    "avalanche_profile",
    "digest_key_correlation",
]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class BruteForceEstimate:
    """Result of a sampled brute-force attack attempt."""

    seeds_tried: int
    seconds_spent: float
    matched: bool
    throughput: float
    expected_years_full_space: float

    def summary(self) -> str:
        """One-line human-readable summary of the attempt."""
        return (
            f"tried {self.seeds_tried:,} random seeds in "
            f"{self.seconds_spent:.2f} s ({self.throughput:,.0f} seeds/s); "
            f"matched: {self.matched}; full 2^256 space at this rate: "
            f"{self.expected_years_full_space:.3g} years"
        )


class OpponentSimulator:
    """An attacker holding a captured digest but no PUF image.

    Per the threat model the attacker sees ``M₁`` on the wire. Without
    the enrollment image there is no Hamming ball to anchor the search —
    only uniform guessing over the seed space.
    """

    def __init__(self, hash_name: str = "sha3-256", batch_size: int = 16384):
        self.algo = get_hash(hash_name)
        self.batch_size = batch_size

    def brute_force(
        self,
        captured_digest: bytes,
        budget_seconds: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> BruteForceEstimate:
        """Sampled uniform brute force under a time budget (always loses)."""
        rng = rng if rng is not None else np.random.default_rng()
        target = self.algo.digest_to_words(captured_digest)
        start = time.perf_counter()
        tried = 0
        matched = False
        while time.perf_counter() - start < budget_seconds:
            words = rng.integers(
                0, 1 << 63, size=(self.batch_size, 4), dtype=np.int64
            ).astype(np.uint64)
            digests = self.algo.hash_seeds_batch(words)
            tried += self.batch_size
            if (digests == target).all(axis=1).any():
                matched = True
                break
        elapsed = time.perf_counter() - start
        throughput = tried / elapsed if elapsed > 0 else float("inf")
        expected_seconds = (1 << 255) / throughput  # expected half the space
        return BruteForceEstimate(
            seeds_tried=tried,
            seconds_spent=elapsed,
            matched=matched,
            throughput=throughput,
            expected_years_full_space=expected_seconds / _SECONDS_PER_YEAR,
        )

    def informed_search_advantage(self, distance: int) -> float:
        """How many times fewer seeds the legitimate server examines."""
        from repro.core.complexity import opponent_search_space, server_search_space

        return opponent_search_space() / server_search_space(distance)


def avalanche_profile(
    hash_name: str,
    samples: int = 200,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """(mean, std) fraction of digest bits flipped by one seed-bit flip.

    A sound hash sits at 0.5 mean with small deviation; structure here
    would let an opponent walk the Hamming ball from the digest alone.
    """
    rng = rng if rng is not None else np.random.default_rng()
    algo = get_hash(hash_name)
    digest_bits = algo.digest_size * 8
    fractions = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        seed = rng.bytes(32)
        bit = int(rng.integers(0, SEED_BITS))
        d0 = algo.scalar(seed)
        d1 = algo.scalar(flip_bits(seed, [bit]))
        fractions[i] = hamming_distance(d0, d1) / digest_bits
    return float(fractions.mean()), float(fractions.std())


def digest_key_correlation(
    salt: SaltScheme,
    keygen: KeyGenerator,
    hash_name: str = "sha3-256",
    samples: int = 100,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean |correlation| between digest bits and public-key bits.

    With a sound salt the two derivations are statistically independent:
    the estimate concentrates near 0 (sampling noise ~ 1/sqrt(bits)).
    An identity "salt" instead ties the public key to the very value the
    digest commits to — the linkage the protocol must avoid.
    """
    rng = rng if rng is not None else np.random.default_rng()
    algo = get_hash(hash_name)
    correlations = []
    for _ in range(samples):
        seed = rng.bytes(32)
        digest = algo.scalar(seed)
        key = keygen.public_key(salt(seed))
        width = min(len(digest), len(key))
        digest_bits = np.unpackbits(np.frombuffer(digest[:width], np.uint8))
        key_bits = np.unpackbits(np.frombuffer(key[:width], np.uint8))
        d = digest_bits.astype(np.float64) - digest_bits.mean()
        k = key_bits.astype(np.float64) - key_bits.mean()
        denom = np.sqrt((d * d).sum() * (k * k).sum())
        correlations.append(abs(float((d * k).sum() / denom)) if denom else 0.0)
    return float(np.mean(correlations))
