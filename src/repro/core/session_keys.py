"""One-time session keys in use — closing the loop the paper opens.

The paper's motivation: PUF + RBC gives clients *one-time* key pairs, so
"even if an attacker was able to recover a client's private key, it
would become invalid after a short time." This module demonstrates the
keys actually working, end to end:

1. RBC-SALTED authenticates the client; the CA salts the recovered seed,
   generates an LWE key pair from it, and registers the *exported*
   public key (matrix seed ρ ‖ b) at the RA.
2. Any service fetches that public key from the RA and encrypts a
   session token to the device — never touching PUF material.
3. The client re-derives the same salted seed locally (it knows its own
   PUF read and the shared salt), re-derives the secret, decrypts.
4. After the next authentication the RA holds a new key; tokens under
   the old one are dead letters.

The key generator must be seed-deterministic for step 3 — the defining
constraint RBC puts on the cryptosystem, satisfied here by the toy
module-LWE scheme (reproduction-grade, not production crypto).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.authentication import CertificateAuthority, RegistrationAuthority
from repro.core.salting import SaltScheme
from repro.hashes.sha3 import sha3_256
from repro.keygen.lwe import ToyModuleLWE

__all__ = ["SessionToken", "SessionService", "SessionClient", "LWESessionKeygen"]


class LWESessionKeygen:
    """KeyGenerator-compatible wrapper that registers *usable* keys.

    Drop-in for the CA's ``keygen``: ``public_key`` returns the exported
    (ρ ‖ b) form so RA consumers can encrypt to it.
    """

    def __init__(self, preset: str = "light"):
        self.scheme = ToyModuleLWE(preset)
        self.name = f"lwe-session-{preset}"
        self.relative_cost = 454.0  # same regime as the lightsaber entry

    def public_key(self, seed: bytes) -> bytes:
        """Exported (rho || b) public key for the salted seed."""
        if len(seed) != 32:
            raise ValueError("RBC seeds are 32 bytes")
        return self.scheme.export_public(seed)


@dataclass(frozen=True)
class SessionToken:
    """An encrypted session establishment message."""

    client_id: str
    ciphertext_u: np.ndarray
    ciphertext_v: np.ndarray
    #: Integrity tag over the token bits (so tampering is detectable
    #: after decryption).
    check: bytes


class SessionService:
    """A third party that talks to authenticated devices via the RA."""

    def __init__(
        self,
        registration_authority: RegistrationAuthority,
        keygen: LWESessionKeygen,
        rng: np.random.Generator | None = None,
    ):
        self.ra = registration_authority
        self.keygen = keygen
        self._rng = rng if rng is not None else np.random.default_rng()

    def establish(self, client_id: str) -> tuple[SessionToken, bytes]:
        """Encrypt a fresh session token to the client's registered key.

        Returns ``(token_message, expected_session_secret)`` — the
        service keeps the secret to verify the session later.
        """
        public_key = self.ra.lookup(client_id)
        scheme = self.keygen.scheme
        token_bits = self._rng.integers(0, 2, scheme.degree).astype(np.uint8)
        u, v = scheme.encrypt_to_public(
            public_key, token_bits, self._rng.bytes(32)
        )
        secret = sha3_256(np.packbits(token_bits).tobytes())
        return (
            SessionToken(
                client_id=client_id,
                ciphertext_u=u,
                ciphertext_v=v,
                check=secret[:8],
            ),
            secret,
        )


class SessionClient:
    """Device-side session establishment: re-derive, decrypt, confirm."""

    def __init__(self, salt: SaltScheme, keygen: LWESessionKeygen):
        self.salt = salt
        self.keygen = keygen

    def open_token(self, token: SessionToken, puf_seed: bytes) -> bytes | None:
        """Decrypt a session token using the device's own PUF seed.

        Returns the session secret, or ``None`` if the token does not
        verify (wrong key epoch, tampering, or a stale registration).
        """
        salted = self.salt(puf_seed)
        bits = self.keygen.scheme.decrypt(
            salted, (token.ciphertext_u, token.ciphertext_v)
        )
        secret = sha3_256(np.packbits(bits).tobytes())
        if secret[:8] != token.check:
            return None
        return secret


def run_session_flow(
    authority: CertificateAuthority,
    client_id: str,
    client_puf_seed: bytes,
    rng: np.random.Generator | None = None,
) -> tuple[bytes | None, bytes]:
    """Convenience: service establishes, client opens; returns both views."""
    keygen = authority.keygen
    if not isinstance(keygen, LWESessionKeygen):
        raise TypeError("authority must use an LWESessionKeygen for sessions")
    service = SessionService(authority.registration_authority, keygen, rng=rng)
    token, expected = service.establish(client_id)
    client = SessionClient(authority.salt, keygen)
    return client.open_token(token, client_puf_seed), expected
