"""Salting — decoupling the digest from the public key (Figure 1, steps 7-8).

Once the server recovers the client's seed ``S`` (because ``SHA(S)``
matched the client's digest ``M₁``), it must not derive the public key
from ``S`` directly: an opponent who observed ``M₁`` on the wire could
otherwise confirm a guessed seed against both the digest *and* the public
key. Instead both parties apply a pre-shared salt transformation to get
``S' = salt(S)`` and generate the key pair from ``S'`` — "such that there
is not a correspondence between the public key and the message digests."

The paper's example salt is a bit shift; we provide that plus two
stronger schemes behind one interface. A scheme is valid iff it is
deterministic and both sides share its parameters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro._bitutils import SEED_BYTES, int_to_seed, rotate_left_int, seed_to_int
from repro.hashes.sha3 import sha3_256

__all__ = ["SaltScheme", "RotateSalt", "XorSalt", "HashChainSalt"]


class SaltScheme(ABC):
    """A shared, deterministic seed transformation."""

    name: str

    @abstractmethod
    def apply(self, seed: bytes) -> bytes:
        """The salted seed ``S'`` for key generation."""

    def __call__(self, seed: bytes) -> bytes:
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes")
        salted = self.apply(seed)
        if salted == seed:
            raise ValueError(
                "salt scheme returned the seed unchanged; the public key "
                "would correspond to the searched digest"
            )
        return salted


class RotateSalt(SaltScheme):
    """The paper's example: ``S`` is bit-rotated by a shared amount."""

    name = "rotate"

    def __init__(self, shift: int = 96):
        if shift % 256 == 0:
            raise ValueError("a zero rotation is not a salt")
        self.shift = shift

    def apply(self, seed: bytes) -> bytes:
        """The salted seed S' for key generation."""
        return int_to_seed(rotate_left_int(seed_to_int(seed), self.shift))


class XorSalt(SaltScheme):
    """XOR with a pre-shared 256-bit pad (established at enrollment)."""

    name = "xor"

    def __init__(self, pad: bytes):
        if len(pad) != SEED_BYTES:
            raise ValueError(f"pad must be {SEED_BYTES} bytes")
        if pad == bytes(SEED_BYTES):
            raise ValueError("an all-zero pad is not a salt")
        self.pad = pad

    def apply(self, seed: bytes) -> bytes:
        """The salted seed S' for key generation."""
        return bytes(a ^ b for a, b in zip(seed, self.pad))


class HashChainSalt(SaltScheme):
    """``S' = SHA3-256(S ‖ context)`` — one-way, context-separated.

    The strongest option: even an opponent who later learns ``S`` cannot
    link previously observed digests to public keys without the context
    string, and the map is one-way in both directions of analysis.
    """

    name = "hash-chain"

    def __init__(self, context: bytes = b"rbc-salted/v1"):
        if not context:
            raise ValueError("context must be non-empty")
        self.context = context

    def apply(self, seed: bytes) -> bytes:
        """The salted seed S' for key generation."""
        return sha3_256(seed + self.context)
