"""CA and RA bookkeeping around the RBC search.

The Certificate Authority owns the encrypted PUF-image database and the
search service; the Registration Authority disseminates the public keys
of authenticated clients. Client private keys are never generated or
stored anywhere in this flow — the defining property of RBC.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro._bitutils import SEED_BITS
from repro.core.salting import SaltScheme
from repro.core.search import RBCSearchService
from repro.engines.result import DirectoryStats
from repro.hashes.registry import HashAlgorithm, get_hash
from repro.keygen.interface import KeyGenerator
from repro.puf.ternary import TernaryMask
from repro.runtime.executor import SearchResult
from repro.tenancy.context import namespaced_key

__all__ = [
    "RegistrationAuthority",
    "CertificateAuthority",
    "Challenge",
    "EnrollmentStore",
]


@runtime_checkable
class EnrollmentStore(Protocol):
    """Anything the CA can keep enrolled PUF images in.

    Satisfied by the plain in-memory
    :class:`~repro.puf.image_db.EncryptedImageDatabase` and by the
    sharded, replicated
    :class:`~repro.directory.sharded.ShardedEnrollmentDirectory`. Stores
    may additionally offer ``lookup_with_stats`` (per-lookup
    :class:`~repro.engines.result.DirectoryStats` telemetry) and
    ``prefetch`` (batched cache warming); the CA and the serving layer
    use those when present.
    """

    def enroll(self, client_id: str, mask: TernaryMask) -> None: ...

    def lookup(self, client_id: str) -> TernaryMask: ...

    def __contains__(self, client_id: str) -> bool: ...

    def __len__(self) -> int: ...


@dataclass(frozen=True)
class Challenge:
    """Handshake payload: which PUF cells to read and how to digest them."""

    client_id: str
    address: int
    window: int
    usable: np.ndarray  # boolean cell mask (public)
    bit_count: int
    hash_name: str


class RegistrationAuthority:
    """Public-key registry updated after each successful authentication."""

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}
        self._update_count: dict[str, int] = {}

    def update(self, client_id: str, public_key: bytes) -> None:
        """Register/replace the client's current public key."""
        if not public_key:
            raise ValueError("public key must be non-empty")
        self._keys[client_id] = public_key
        self._update_count[client_id] = self._update_count.get(client_id, 0) + 1

    def lookup(self, client_id: str) -> bytes:
        """The client's current public key."""
        return self._keys[client_id]

    def update_count(self, client_id: str) -> int:
        """How many one-time keys this client has cycled through."""
        return self._update_count.get(client_id, 0)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._keys


@dataclass
class CertificateAuthority:
    """The secure server: enrollment store, search service, key issuance."""

    search_service: RBCSearchService
    salt: SaltScheme
    keygen: KeyGenerator
    registration_authority: RegistrationAuthority
    image_db: EnrollmentStore
    hash_name: str = "sha3-256"
    seed_bits: int = SEED_BITS
    _last_result: SearchResult | None = field(default=None, repr=False)

    @property
    def hash_algorithm(self) -> HashAlgorithm:
        """The registered hash algorithm this CA searches with."""
        return get_hash(self.hash_name)

    def enroll(
        self,
        client_id: str,
        mask: TernaryMask,
        tenant_id: str | None = None,
    ) -> None:
        """Store a client's enrollment image (secure-facility phase).

        ``tenant_id`` namespaces the stored record: the default tenant
        (or ``None``) stores under the bare client id, exactly as before
        tenancy, so pre-tenancy enrollments stay reachable.
        """
        if mask.usable_count < self.seed_bits:
            raise ValueError(
                f"enrollment window provides {mask.usable_count} usable "
                f"cells; {self.seed_bits} required"
            )
        self.image_db.enroll(namespaced_key(tenant_id, client_id), mask)

    def issue_challenge(
        self, client_id: str, tenant_id: str | None = None
    ) -> Challenge:
        """Handshake step: tell the client which cells to read."""
        mask = self.image_db.lookup(namespaced_key(tenant_id, client_id))
        return Challenge(
            client_id=client_id,
            address=mask.address,
            window=mask.usable.shape[0],
            usable=mask.usable.copy(),
            bit_count=self.seed_bits,
            hash_name=self.hash_name,
        )

    def enrolled_seed(
        self, client_id: str, tenant_id: str | None = None
    ) -> bytes:
        """S_init — the seed from the enrolled (noise-free) PUF image."""
        seed, _stats = self.enrolled_seed_with_stats(client_id, tenant_id)
        return seed

    def enrolled_seed_with_stats(
        self, client_id: str, tenant_id: str | None = None
    ) -> tuple[bytes, DirectoryStats | None]:
        """S_init plus the directory's lookup telemetry (None for a
        plain in-memory store)."""
        key = namespaced_key(tenant_id, client_id)
        lookup_with_stats = getattr(self.image_db, "lookup_with_stats", None)
        stats: DirectoryStats | None = None
        if lookup_with_stats is not None:
            mask, stats = lookup_with_stats(key)
        else:
            mask = self.image_db.lookup(key)
        bits = mask.reference_seed_bits(self.seed_bits)
        return np.packbits(bits).tobytes(), stats

    def run_search(
        self,
        client_id: str,
        client_digest: bytes,
        deadline_seconds: float | None = None,
        tenant_id: str | None = None,
    ) -> SearchResult:
        """Figure 1 steps 1-6: the RBC search proper.

        When the image store is a sharded directory, the lookup's
        telemetry rides along on ``result.directory`` — a search served
        after a replica failover is distinguishable from one whose image
        came from the hot cache.
        """
        seed, directory_stats = self.enrolled_seed_with_stats(
            client_id, tenant_id
        )
        result = self.search_service.find_seed(
            seed,
            client_digest,
            deadline_seconds=deadline_seconds,
        )
        if directory_stats is not None:
            result = dataclasses.replace(result, directory=directory_stats)
        self._last_result = result
        return result

    def issue_public_key(
        self,
        client_id: str,
        found_seed: bytes,
        tenant_id: str | None = None,
    ) -> bytes:
        """Figure 1 steps 7-9: salt, generate the key once, update the RA.

        RA entries are namespaced the same way as enrollment records, so
        two tenants' identically-named clients never share a key slot.
        """
        salted = self.salt(found_seed)
        public_key = self.keygen.public_key(salted)
        self.registration_authority.update(
            namespaced_key(tenant_id, client_id), public_key
        )
        return public_key
