"""The full RBC-SALTED protocol flow (paper Figure 1).

Roles:

* :class:`ClientDevice` — holds the physical PUF; on a challenge it reads
  the named cells, applies the shared ternary selection, optionally
  injects noise (evaluation methodology / security hardening), and
  returns the SHA digest ``M₁`` of its 256-bit seed.
* :class:`~repro.core.authentication.CertificateAuthority` — runs the
  search, salts the recovered seed, generates the public key once, and
  updates the RA.
* :class:`RBCSaltedProtocol` — drives one authentication round between
  the two, with the timeout-and-retry behaviour of the paper (on a
  timeout the CA issues a fresh challenge; here the retry uses a new
  noisy read of the same cells).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.authentication import CertificateAuthority, Challenge
from repro.hashes.registry import get_hash
from repro.puf.model import SRAMPuf
from repro.puf.noise import inject_noise_to_distance
from repro.puf.ternary import TernaryMask

__all__ = ["ClientDevice", "AuthenticationOutcome", "RBCSaltedProtocol"]


@dataclass(frozen=True)
class AuthenticationOutcome:
    """What one protocol round produced."""

    authenticated: bool
    client_id: str
    distance: int | None
    seeds_hashed: int
    search_seconds: float
    attempts: int
    public_key: bytes | None
    timed_out: bool

    def __bool__(self) -> bool:
        return self.authenticated


class ClientDevice:
    """A low-power client: a PUF, a hash function, and nothing else.

    The client never performs error correction — that is the whole point
    of RBC. It reads cells, selects the shared stable subset, hashes, and
    sends the digest.
    """

    def __init__(
        self,
        client_id: str,
        puf: SRAMPuf,
        noise_target_distance: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.client_id = client_id
        self.puf = puf
        self.noise_target_distance = noise_target_distance
        self._rng = rng if rng is not None else np.random.default_rng()

    def respond(self, challenge: Challenge, reference_mask: TernaryMask | None = None) -> bytes:
        """Read the PUF per the challenge and return the digest ``M₁``.

        ``reference_mask`` is only consulted when noise injection is
        enabled (the evaluation rig knows the enrollment image; a real
        hardened client would instead flip bits blindly).
        """
        readout = self.puf.read(challenge.address, challenge.window)
        bits = readout.bits[challenge.usable][: challenge.bit_count]
        if bits.shape[0] < challenge.bit_count:
            raise ValueError("challenge window yields too few usable bits")
        if self.noise_target_distance is not None:
            if reference_mask is not None:
                reference = reference_mask.reference_seed_bits(challenge.bit_count)
                bits = inject_noise_to_distance(
                    bits, reference, self.noise_target_distance, self._rng
                )
            else:
                from repro.puf.noise import flip_random_bits

                bits = flip_random_bits(
                    bits, self.noise_target_distance, self._rng
                )
        seed = np.packbits(bits).tobytes()
        return get_hash(challenge.hash_name).scalar(seed)


class RBCSaltedProtocol:
    """One-round (with retries) driver of the RBC-SALTED flow."""

    def __init__(self, authority: CertificateAuthority, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.authority = authority
        self.max_attempts = max_attempts

    def authenticate(
        self, client: ClientDevice, reference_mask: TernaryMask | None = None
    ) -> AuthenticationOutcome:
        """Run handshake -> digest -> search -> salt -> keygen -> RA update."""
        total_hashed = 0
        total_seconds = 0.0
        last_timed_out = False
        for attempt in range(1, self.max_attempts + 1):
            challenge = self.authority.issue_challenge(client.client_id)
            digest = client.respond(challenge, reference_mask=reference_mask)
            result = self.authority.run_search(client.client_id, digest)
            total_hashed += result.seeds_hashed
            total_seconds += result.elapsed_seconds
            last_timed_out = result.timed_out
            if result.found:
                assert result.seed is not None
                public_key = self.authority.issue_public_key(
                    client.client_id, result.seed
                )
                return AuthenticationOutcome(
                    authenticated=True,
                    client_id=client.client_id,
                    distance=result.distance,
                    seeds_hashed=total_hashed,
                    search_seconds=total_seconds,
                    attempts=attempt,
                    public_key=public_key,
                    timed_out=False,
                )
            # Timeout or exhausted ball: the CA restarts the handshake
            # (the fresh PUF read usually lands at a smaller distance).
        return AuthenticationOutcome(
            authenticated=False,
            client_id=client.client_id,
            distance=None,
            seeds_hashed=total_hashed,
            search_seconds=total_seconds,
            attempts=self.max_attempts,
            public_key=None,
            timed_out=last_timed_out,
        )
