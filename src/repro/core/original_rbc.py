"""The original, algorithm-aware RBC search — the paper's baseline.

Prior-work RBC engines (AES, ChaCha20, SPECK, SABER, Dilithium) search by
generating the *public response* of every candidate seed and comparing it
with the response the client sent. The per-candidate cost is therefore
one full key generation — the cost RBC-SALTED eliminates by comparing
hashes and generating a key exactly once.

This implementation is the executable baseline behind Table 7: it runs
the real from-scratch key generators per candidate, so the measured
keygen-vs-hash cost ratio on this host is an emergent quantity, not a
configured one. Being scalar Python it is only exercised at reduced
Hamming distances; the device models extrapolate to the paper's scales.
"""

from __future__ import annotations

import time

from repro._bitutils import SEED_BITS, flip_bits
from repro.combinatorics.algorithm382 import Algorithm382Iterator
from repro.keygen.interface import KeyGenerator
from repro.runtime.executor import SearchResult

__all__ = ["OriginalRBCSearch"]


class OriginalRBCSearch:
    """Algorithm-aware RBC: one key generation per candidate seed."""

    def __init__(self, keygen: KeyGenerator):
        self.keygen = keygen

    def search(
        self,
        base_seed: bytes,
        target_response: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Search distances 0..max_distance comparing public responses."""
        start = time.perf_counter()
        generated = 0

        generated += 1
        if self.keygen.public_key(base_seed) == target_response:
            return SearchResult(
                True, base_seed, 0, generated, time.perf_counter() - start
            )

        for distance in range(1, max_distance + 1):
            iterator = Algorithm382Iterator(SEED_BITS, distance)
            while True:
                candidate = flip_bits(base_seed, iterator.current())
                generated += 1
                if self.keygen.public_key(candidate) == target_response:
                    return SearchResult(
                        True, candidate, distance, generated,
                        time.perf_counter() - start,
                    )
                if (
                    time_budget is not None
                    and time.perf_counter() - start > time_budget
                ):
                    return SearchResult(
                        False, None, None, generated,
                        time.perf_counter() - start, timed_out=True,
                    )
                if not iterator.advance():
                    break
        return SearchResult(
            False, None, None, generated, time.perf_counter() - start
        )

    def measure_keygen_rate(self, samples: int = 50) -> float:
        """Key generations per second of this generator on this host."""
        seeds = [bytes([i % 256]) * 32 for i in range(samples)]
        start = time.perf_counter()
        for seed in seeds:
            self.keygen.public_key(seed)
        return samples / (time.perf_counter() - start)
