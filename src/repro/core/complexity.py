"""Search-space complexity (paper Section 2.2, Equations 1-3, Table 1).

The asymmetry that makes RBC work: the server knows the enrolled image
and only explores the Hamming ball of radius ``d`` around it (Equation 1,
tractable for small ``d``); an opponent without the image faces the full
``2^256`` space (Equation 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import (
    average_seed_count,
    binomial,
    exhaustive_seed_count,
)

__all__ = [
    "server_search_space",
    "opponent_search_space",
    "table1_rows",
    "Table1Row",
    "tractable_distance",
]


def server_search_space(d: int, n_bits: int = SEED_BITS, average: bool = False) -> int:
    """Seeds the server examines searching up to distance ``d``.

    Equation 1 (exhaustive) or Equation 3 (average case).
    """
    if average:
        return average_seed_count(d, n_bits)
    return exhaustive_seed_count(d, n_bits)


def opponent_search_space(n_bits: int = SEED_BITS) -> int:
    """Equation 2 — the opponent's worst case, ``2^n``."""
    return 1 << n_bits


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1."""

    d: int
    exhaustive: int
    average: int


def table1_rows(max_d: int = 5, n_bits: int = SEED_BITS) -> list[Table1Row]:
    """The rows of Table 1: seeds searched for d = 1..max_d."""
    return [
        Table1Row(
            d=d,
            exhaustive=exhaustive_seed_count(d, n_bits),
            average=average_seed_count(d, n_bits),
        )
        for d in range(1, max_d + 1)
    ]


def tractable_distance(
    throughput_hashes_per_second: float,
    time_threshold: float,
    n_bits: int = SEED_BITS,
    average: bool = False,
) -> int:
    """Largest ``d`` whose search fits in ``time_threshold`` seconds.

    The paper's planning rule (Section 3.1): "using benchmarks, we
    compute the largest value of d that yields a latency <= T".
    """
    if throughput_hashes_per_second <= 0:
        raise ValueError("throughput must be positive")
    budget = throughput_hashes_per_second * time_threshold
    d = 0
    while True:
        next_cost = (
            average_seed_count(d + 1, n_bits)
            if average
            else exhaustive_seed_count(d + 1, n_bits)
        )
        if next_cost > budget:
            return d
        d += 1
        if d >= n_bits:
            return d


def shell_size(d: int, n_bits: int = SEED_BITS) -> int:
    """Number of seeds at exactly distance ``d`` (one search shell)."""
    return binomial(n_bits, d)
