"""Algorithm 1 as a protocol-facing service.

:class:`RBCSearchService` wraps an execution engine (single-process
vectorized, multiprocessing, or a simulated device) behind the interface
the CA uses: *given a digest and an enrolled seed, find the client's seed
within the time threshold T*. The paper fixes T = 20 s.

The service also implements the protocol's planning rule: before
accepting a maximum distance it checks, against the engine's measured or
modeled throughput, that the exhaustive search fits the threshold, and
reports the largest tractable ``d``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.complexity import tractable_distance
from repro.engines.result import SchedulingStats, SearchEngine, SearchResult

__all__ = ["RBCSearchService", "SearchEngine", "DEFAULT_TIME_THRESHOLD"]

#: The paper's authentication time threshold (Section 3, after prior work).
DEFAULT_TIME_THRESHOLD = 20.0


@dataclass
class RBCSearchService:
    """The CA-side search component of RBC-SALTED.

    Parameters
    ----------
    engine:
        The execution engine (e.g. :class:`~repro.runtime.BatchSearchExecutor`).
    max_distance:
        Largest Hamming distance to search (the paper uses 5).
    time_threshold:
        The T budget; searches exceeding it fail and the protocol
        restarts with a fresh handshake.
    """

    engine: SearchEngine
    max_distance: int = 5
    time_threshold: float = DEFAULT_TIME_THRESHOLD

    def find_seed(
        self,
        enrolled_seed: bytes,
        client_digest: bytes,
        deadline_seconds: float | None = None,
    ) -> SearchResult:
        """Search for the client's seed; respects the T threshold.

        A client-supplied ``deadline_seconds`` tightens (never loosens)
        the protocol budget: the engine runs under ``min(T, deadline)``
        and the deadline is stamped into the result's scheduling
        telemetry so it survives into serving-layer metrics.
        """
        if self.max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        budget = self.time_threshold
        if deadline_seconds is not None:
            if deadline_seconds < 0:
                raise ValueError("deadline_seconds must be non-negative")
            budget = min(budget, deadline_seconds)
        result = self.engine.search(
            enrolled_seed,
            client_digest,
            max_distance=self.max_distance,
            time_budget=budget,
        )
        if deadline_seconds is not None and result.scheduling is None:
            result = dataclasses.replace(
                result,
                scheduling=SchedulingStats(deadline_seconds=deadline_seconds),
            )
        return result

    def plan_max_distance(self, throughput_hashes_per_second: float) -> int:
        """Largest d tractable under T at the given engine throughput."""
        return tractable_distance(
            throughput_hashes_per_second, self.time_threshold
        )
