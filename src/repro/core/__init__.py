"""RBC-SALTED core — the paper's primary contribution.

* :mod:`repro.core.complexity` — Equations 1-3 and the tractability
  argument (server vs opponent search, Table 1);
* :mod:`repro.core.salting` — the shared salt that decouples the message
  digest from the final public key (Figure 1 steps 7-8);
* :mod:`repro.core.search` — Algorithm 1 as a protocol-facing service
  with the T=20 s authentication threshold;
* :mod:`repro.core.protocol` — the full RBC-SALTED flow of Figure 1;
* :mod:`repro.core.original_rbc` — the algorithm-aware baseline (public
  key generated per candidate) for the Table 7 comparison;
* :mod:`repro.core.authentication` — the CA/RA bookkeeping around the
  search (enrollment records, registration updates, retry on timeout).
"""

from repro.core.complexity import (
    server_search_space,
    opponent_search_space,
    table1_rows,
    tractable_distance,
)
from repro.core.salting import SaltScheme, RotateSalt, XorSalt, HashChainSalt
from repro.core.search import RBCSearchService, DEFAULT_TIME_THRESHOLD
from repro.core.protocol import RBCSaltedProtocol, AuthenticationOutcome
from repro.core.original_rbc import OriginalRBCSearch
from repro.core.authentication import CertificateAuthority, RegistrationAuthority
from repro.core.attack import OpponentSimulator, avalanche_profile, digest_key_correlation
from repro.core.session_keys import (
    LWESessionKeygen,
    SessionClient,
    SessionService,
    run_session_flow,
)

__all__ = [
    "server_search_space",
    "opponent_search_space",
    "table1_rows",
    "tractable_distance",
    "SaltScheme",
    "RotateSalt",
    "XorSalt",
    "HashChainSalt",
    "RBCSearchService",
    "DEFAULT_TIME_THRESHOLD",
    "RBCSaltedProtocol",
    "AuthenticationOutcome",
    "OriginalRBCSearch",
    "CertificateAuthority",
    "RegistrationAuthority",
    "OpponentSimulator",
    "avalanche_profile",
    "digest_key_correlation",
    "LWESessionKeygen",
    "SessionClient",
    "SessionService",
    "run_session_flow",
]
