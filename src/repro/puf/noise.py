"""Deliberate noise injection on the client's seed bits.

Two uses in the paper:

* Evaluation methodology (Section 4.1): "a typical bit error rate from
  the PUF is 5 bits, and if it is lower, we perform noise injection on
  the client to ensure that we have flipped 5 bits" — making every trial
  exercise the full d=5 search.
* Future work (Section 5): since the GPU authenticates well under the
  T=20 s threshold, the client can *purposefully* inject extra noise,
  raising the Hamming distance an opponent must search and thereby the
  security level.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inject_noise_to_distance", "flip_random_bits"]


def flip_random_bits(
    bits: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Flip ``count`` distinct randomly chosen positions of a bit vector."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count > bits.shape[0]:
        raise ValueError("cannot flip more bits than the vector holds")
    out = bits.copy()
    positions = rng.choice(bits.shape[0], size=count, replace=False)
    out[positions] ^= 1
    return out


def inject_noise_to_distance(
    client_bits: np.ndarray,
    reference_bits: np.ndarray,
    target_distance: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Raise the client/reference Hamming distance to ``target_distance``.

    Only bits currently *agreeing* with the reference are flipped, so the
    result has exactly ``target_distance`` mismatches. If the natural
    read already differs in >= ``target_distance`` positions it is
    returned unchanged (the search must then cope with the larger d, as
    in the real protocol).
    """
    if client_bits.shape != reference_bits.shape:
        raise ValueError("bit vector shapes differ")
    mismatched = client_bits != reference_bits
    current = int(mismatched.sum())
    if current >= target_distance:
        return client_bits.copy()
    agreeing = np.flatnonzero(~mismatched)
    extra = rng.choice(agreeing, size=target_distance - current, replace=False)
    out = client_bits.copy()
    out[extra] ^= 1
    return out
