"""Arbiter PUF model (delay-based, challenge-response).

The paper notes "the algorithm is agnostic to the underlying PUF
hardware" — RBC consumes a bit stream, however produced. This model
supplies a classic *delay* PUF: a challenge routes a signal through a
chain of crossbar stages; manufacturing variation gives each stage a
delay difference, and an arbiter at the end outputs which path won.

Standard linear additive model: for stage weights ``w`` (drawn per
device) and a challenge ``c ∈ {0,1}^s``, the delay difference is
``Δ = w · φ(c)`` with the parity feature map
``φ_i(c) = Π_{j≥i} (1-2c_j)``; the response bit is ``sign(Δ)``, and
measurement noise flips bits whose |Δ| is small — reproducing the
instability structure (cells near the metastable point are erratic)
that TAPKI masking exists to handle.

Addressing: the RBC challenge names an (address, length) window; cell
``address + i`` corresponds to a deterministic per-device challenge
vector derived by counter-mode expansion, so reads are repeatable.
"""

from __future__ import annotations

import numpy as np

from repro.puf.model import PUFReadout

__all__ = ["ArbiterPuf"]


class ArbiterPuf:
    """A simulated arbiter PUF with a linear delay model."""

    def __init__(
        self,
        num_cells: int = 16384,
        stages: int = 64,
        noise_sigma: float = 0.04,
        seed: int | None = None,
    ):
        if num_cells % 8:
            raise ValueError("num_cells must be a multiple of 8")
        if stages < 8:
            raise ValueError("need at least 8 delay stages")
        self.num_cells = num_cells
        self.stages = stages
        self.noise_sigma = noise_sigma
        rng = np.random.default_rng(seed)
        # Per-stage delay-difference weights: the device fingerprint.
        self._weights = rng.normal(0.0, 1.0, size=stages + 1)
        # Fixed per-device challenge per cell (counter-mode expansion).
        challenge_rng = np.random.default_rng(
            seed + 7919 if seed is not None else None
        )
        challenges = challenge_rng.integers(
            0, 2, size=(num_cells, stages), dtype=np.int8
        )
        self._features = self._feature_map(challenges)
        self._delays = self._features @ self._weights
        self._read_rng = np.random.default_rng(
            None if seed is None else seed + 104729
        )

    @staticmethod
    def _feature_map(challenges: np.ndarray) -> np.ndarray:
        """φ(c): suffix-parity features plus the constant term."""
        signs = 1 - 2 * challenges.astype(np.float64)  # {0,1} -> {+1,-1}
        # φ_i = product of signs from stage i to the end; φ_s = 1.
        suffix = np.cumprod(signs[:, ::-1], axis=1)[:, ::-1]
        n = challenges.shape[0]
        return np.concatenate([suffix, np.ones((n, 1))], axis=1)

    @property
    def delay_margins(self) -> np.ndarray:
        """|Δ| per cell — small margins mark the erratic cells."""
        view = np.abs(self._delays).view()
        view.flags.writeable = False
        return view

    def reference_bits(self, address: int, length: int) -> np.ndarray:
        """Noise-free responses (the enrollment-time truth)."""
        self._check_window(address, length)
        window = self._delays[address : address + length]
        return (window > 0).astype(np.uint8)

    def read(self, address: int, length: int) -> PUFReadout:
        """One noisy evaluation of the arbiter chain per cell."""
        self._check_window(address, length)
        window = self._delays[address : address + length]
        noisy = window + self._read_rng.normal(0.0, self.noise_sigma, size=length)
        return PUFReadout(address=address, bits=(noisy > 0).astype(np.uint8))

    def read_repeated(self, address: int, length: int, times: int) -> np.ndarray:
        """``(times, length)`` repeated evaluations (for enrollment)."""
        return np.stack(
            [self.read(address, length).bits for _ in range(times)], axis=0
        )

    def _check_window(self, address: int, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        if not (0 <= address and address + length <= self.num_cells):
            raise ValueError(
                f"window [{address}, {address + length}) outside device "
                f"of {self.num_cells} cells"
            )
