"""Environmental effects on PUF reliability: temperature, voltage, aging.

Real SRAM PUFs are enrolled at nominal conditions but read in the field,
where temperature and supply-voltage excursions raise cell flip rates
and aging (NBTI) slowly drifts cells away from their enrolled state.
RBC absorbs all of this as a larger Hamming distance — at the price of
exponentially more search. This module makes the trade measurable:

* :class:`EnvironmentalConditions` — an operating point;
* :func:`stress_factor` — the flip-probability multiplier it induces;
* :class:`EnvironmentalPuf` — wraps any PUF model, scaling its noise
  (and injecting aging drift) per the current conditions.

The response-time consequences feed straight into
:func:`repro.core.complexity.tractable_distance`: the bench shows the
ambient range a given platform can tolerate inside T = 20 s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.puf.model import PUFReadout

__all__ = ["EnvironmentalConditions", "stress_factor", "EnvironmentalPuf"]

NOMINAL_TEMPERATURE_C = 25.0
NOMINAL_VOLTAGE = 1.0


@dataclass(frozen=True)
class EnvironmentalConditions:
    """An operating point for a fielded device."""

    temperature_c: float = NOMINAL_TEMPERATURE_C
    supply_voltage: float = NOMINAL_VOLTAGE
    #: Equivalent operating age in years (NBTI-style drift).
    age_years: float = 0.0

    def __post_init__(self):
        if not -55.0 <= self.temperature_c <= 150.0:
            raise ValueError("temperature outside -55..150 C")
        if not 0.5 <= self.supply_voltage <= 1.5:
            raise ValueError("supply voltage outside 0.5..1.5 of nominal")
        if self.age_years < 0:
            raise ValueError("age must be non-negative")


def stress_factor(conditions: EnvironmentalConditions) -> float:
    """Flip-probability multiplier for an operating point.

    Empirically shaped after published SRAM-PUF reliability studies:
    roughly +1%/°C of noise away from the enrollment temperature, a
    quadratic penalty for supply-voltage deviation, floor at 1.0.
    """
    temperature_term = 0.01 * abs(conditions.temperature_c - NOMINAL_TEMPERATURE_C)
    voltage_term = 8.0 * (conditions.supply_voltage - NOMINAL_VOLTAGE) ** 2
    return 1.0 + temperature_term + voltage_term


class EnvironmentalPuf:
    """Any PUF model, operated away from enrollment conditions.

    Noise scaling applies to *disagreement with the underlying read*:
    each raw read is post-processed with extra flips at rate
    ``base_rate * (factor - 1)``; aging additionally flips a small,
    persistent random subset of cells (drift), reproducing the
    distance-grows-with-age effect.
    """

    def __init__(
        self,
        puf,
        conditions: EnvironmentalConditions | None = None,
        aging_drift_per_year: float = 0.0005,
        base_noise_rate: float = 0.01,
        rng: np.random.Generator | None = None,
    ):
        self.puf = puf
        self.conditions = (
            conditions if conditions is not None else EnvironmentalConditions()
        )
        self.base_noise_rate = base_noise_rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self.num_cells = puf.num_cells
        # Persistent aging drift: cells that have flipped reference state.
        drift_probability = min(
            1.0, aging_drift_per_year * self.conditions.age_years
        )
        self._drifted = self._rng.random(self.num_cells) < drift_probability

    @property
    def stress(self) -> float:
        """The flip-probability multiplier at the current conditions."""
        return stress_factor(self.conditions)

    def reference_bits(self, address: int, length: int) -> np.ndarray:
        """Enrollment truth — captured at nominal conditions, pre-drift."""
        return self.puf.reference_bits(address, length)

    def read(self, address: int, length: int) -> PUFReadout:
        """A field read at the configured operating point."""
        raw = self.puf.read(address, length)
        extra_rate = self.base_noise_rate * (self.stress - 1.0)
        extra_flips = (self._rng.random(length) < extra_rate).astype(np.uint8)
        drift = self._drifted[address : address + length].astype(np.uint8)
        return PUFReadout(address=address, bits=raw.bits ^ extra_flips ^ drift)

    def read_repeated(self, address: int, length: int, times: int) -> np.ndarray:
        """``(times, length)`` repeated field reads."""
        return np.stack(
            [self.read(address, length).bits for _ in range(times)], axis=0
        )

    def expected_distance(self, mask, bit_count: int = 256) -> float:
        """Expected Hamming distance of a masked field read vs enrollment."""
        indices = np.flatnonzero(mask.usable)[:bit_count]
        base = getattr(self.puf, "flip_probability", None)
        if base is not None:
            per_cell = base[indices].copy()
        else:
            per_cell = np.full(bit_count, self.base_noise_rate)
        extra = self.base_noise_rate * (self.stress - 1.0)
        # Combined flip probability (XOR of independent flips).
        combined = per_cell + extra - 2 * per_cell * extra
        drifted = self._drifted[indices]
        combined = np.where(drifted, 1.0 - combined, combined)
        return float(combined.sum())
