"""PUF substrate — the statistical stand-in for hardware PUFs.

The paper's client reads a 256-bit stream from an SRAM-style PUF attached
over USB; the stream differs from the server's enrolled *PUF image* by a
few erratic bits (typically <= 5 after masking). The protocol never sees
the physics — only a bit stream with a Hamming-distance distribution — so
this package models exactly that interface:

* :mod:`repro.puf.model` — per-cell bit-error-rate model, enrollment,
  noisy readout (the "digital fingerprint" with manufacturing variation);
* :mod:`repro.puf.ternary` — TAPKI masking of unstable cells (Section 2.1);
* :mod:`repro.puf.noise` — deliberate noise injection up to a target
  Hamming distance (Section 4.1 and the paper's future-work hardening);
* :mod:`repro.puf.image_db` — the CA's encrypted PUF-image database.
"""

from repro.puf.model import SRAMPuf, PUFReadout
from repro.puf.arbiter import ArbiterPuf
from repro.puf.ring_oscillator import RingOscillatorPuf
from repro.puf.ternary import TernaryMask, enroll_with_masking
from repro.puf.noise import inject_noise_to_distance
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.fuzzy_extractor import RepetitionFuzzyExtractor, HelperData
from repro.puf.environment import (
    EnvironmentalConditions,
    EnvironmentalPuf,
    stress_factor,
)

__all__ = [
    "SRAMPuf",
    "ArbiterPuf",
    "RingOscillatorPuf",
    "PUFReadout",
    "TernaryMask",
    "enroll_with_masking",
    "inject_noise_to_distance",
    "EncryptedImageDatabase",
    "EnvironmentalConditions",
    "EnvironmentalPuf",
    "stress_factor",
    "RepetitionFuzzyExtractor",
    "HelperData",
]
