"""The CA's encrypted PUF-image database.

The threat model stores every client's enrollment image (reference bits,
ternary mask, instability estimates) in an encrypted database inside the
secure CA. Records are serialized and encrypted with the from-scratch
AES-128 in CTR mode under a database master key; each record uses a
per-record nonce derived from the client identifier.

This is a reproduction-grade container — it demonstrates the protocol's
data flow (enrollment writes, validation reads, nothing is ever decrypted
outside the CA), not hardened storage.
"""

from __future__ import annotations

import json

import numpy as np

from repro.hashes.sha3 import sha3_256
from repro.keygen.aes import AES128
from repro.puf.ternary import TernaryMask

__all__ = ["EncryptedImageDatabase"]


class EncryptedImageDatabase:
    """In-memory encrypted store of client PUF enrollment images."""

    def __init__(self, master_key: bytes):
        if len(master_key) != 16:
            raise ValueError("master key must be 16 bytes (AES-128)")
        self._cipher = AES128(master_key)
        self._records: dict[str, bytes] = {}

    def _nonce(self, client_id: str) -> bytes:
        return sha3_256(client_id.encode())[:8]

    @staticmethod
    def _serialize(mask: TernaryMask) -> bytes:
        payload = {
            "address": mask.address,
            "usable": mask.usable.astype(np.uint8).tolist(),
            "reference": mask.reference.astype(np.uint8).tolist(),
            "instability": mask.instability.tolist(),
        }
        return json.dumps(payload).encode()

    @staticmethod
    def _deserialize(raw: bytes) -> TernaryMask:
        payload = json.loads(raw.decode())
        return TernaryMask(
            address=payload["address"],
            usable=np.array(payload["usable"], dtype=bool),
            reference=np.array(payload["reference"], dtype=np.uint8),
            instability=np.array(payload["instability"], dtype=float),
        )

    def enroll(self, client_id: str, mask: TernaryMask) -> None:
        """Store (encrypted) the enrollment image for ``client_id``."""
        plaintext = self._serialize(mask)
        self._records[client_id] = self._cipher.ctr_transform(
            plaintext, self._nonce(client_id)
        )

    def lookup(self, client_id: str) -> TernaryMask:
        """Decrypt and return the enrollment image for ``client_id``."""
        if client_id not in self._records:
            raise KeyError(f"client {client_id!r} not enrolled")
        plaintext = self._cipher.ctr_transform(
            self._records[client_id], self._nonce(client_id)
        )
        return self._deserialize(plaintext)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def encrypted_record(self, client_id: str) -> bytes:
        """The raw ciphertext (what an attacker stealing the DB sees)."""
        return self._records[client_id]

    # -- persistence (records stay encrypted at rest) --------------------

    def save(self, path) -> None:
        """Write the database to disk; records remain ciphertext."""
        import json as _json
        import pathlib

        payload = {
            "format": "repro-image-db/1",
            "records": {
                client_id: blob.hex() for client_id, blob in self._records.items()
            },
        }
        pathlib.Path(path).write_text(_json.dumps(payload))

    @classmethod
    def load(cls, path, master_key: bytes) -> "EncryptedImageDatabase":
        """Load a saved database; the master key is needed to *use* it."""
        import json as _json
        import pathlib

        payload = _json.loads(pathlib.Path(path).read_text())
        if payload.get("format") != "repro-image-db/1":
            raise ValueError("unrecognized image-db file format")
        db = cls(master_key)
        db._records = {
            client_id: bytes.fromhex(blob)
            for client_id, blob in payload["records"].items()
        }
        return db
