"""The CA's encrypted PUF-image database.

The threat model stores every client's enrollment image (reference bits,
ternary mask, instability estimates) in an encrypted database inside the
secure CA. Records are serialized and encrypted with the from-scratch
AES-128 in CTR mode under a database master key; each record uses a
per-record nonce derived from the client identifier *and a per-record
version counter*, so re-enrolling a client never reuses a keystream
(CTR nonce reuse would hand an attacker the XOR of the two plaintexts).

Version 0 keeps the historical identifier-only nonce, so databases saved
before versioning existed still decrypt.

This is a reproduction-grade container — it demonstrates the protocol's
data flow (enrollment writes, validation reads, nothing is ever decrypted
outside the CA), not hardened storage.
"""

from __future__ import annotations

import json

import numpy as np

from repro.hashes.sha3 import sha3_256
from repro.keygen.aes import AES128
from repro.puf.ternary import TernaryMask

__all__ = ["EncryptedImageDatabase", "NonceReuseError"]

#: On-disk / snapshot format tags. v1 predates record versioning.
_FORMAT_V1 = "repro-image-db/1"
_FORMAT_V2 = "repro-image-db/2"


class NonceReuseError(AssertionError):
    """The tripwire: an enrollment was about to reuse a CTR keystream.

    Raised when :meth:`EncryptedImageDatabase.enroll` computes a record
    version at or below the highest version this store has ever seen a
    ciphertext for — encrypting fresh plaintext under that nonce would
    hand an attacker the XOR of two plaintexts. In a correctly recovered
    store this can never fire: recovery restores the version counters
    (and the floor) from durable state, so the next enrollment always
    encrypts under a fresh keystream. Firing means state was rolled back
    (e.g. a crash-restart that lost the version counters) and the
    enrollment must be refused, not served.
    """

    def __init__(self, client_id: str, version: int, floor: int):
        super().__init__(
            f"CTR nonce reuse for client {client_id!r}: version {version} "
            f"was already used for encryption (floor {floor}); "
            "refusing to reuse a keystream"
        )
        self.client_id = client_id
        self.version = version
        self.floor = floor


class EncryptedImageDatabase:
    """In-memory encrypted store of client PUF enrollment images."""

    def __init__(self, master_key: bytes):
        if len(master_key) != 16:
            raise ValueError("master key must be 16 bytes (AES-128)")
        self._cipher = AES128(master_key)
        self._records: dict[str, bytes] = {}
        #: Per-record re-enrollment counter, mixed into the CTR nonce.
        self._versions: dict[str, int] = {}
        #: Highest version a ciphertext is *known to exist* for, per
        #: client — the nonce-reuse tripwire's floor. Fed by enrollments,
        #: imports, restores, and (crucially) WAL recovery.
        self._nonce_floor: dict[str, int] = {}
        #: How many times the tripwire fired (it also raises).
        self.nonce_reuse_trips = 0

    def _nonce(self, client_id: str, version: int = 0) -> bytes:
        if version == 0:
            # Legacy derivation: keeps pre-versioning saves decryptable.
            return sha3_256(client_id.encode())[:8]
        return sha3_256(
            client_id.encode() + b"\x00" + version.to_bytes(8, "big")
        )[:8]

    @staticmethod
    def _serialize(mask: TernaryMask) -> bytes:
        payload = {
            "address": mask.address,
            "usable": mask.usable.astype(np.uint8).tolist(),
            "reference": mask.reference.astype(np.uint8).tolist(),
            "instability": mask.instability.tolist(),
        }
        return json.dumps(payload).encode()

    @staticmethod
    def _deserialize(raw: bytes) -> TernaryMask:
        payload = json.loads(raw.decode())
        return TernaryMask(
            address=payload["address"],
            usable=np.array(payload["usable"], dtype=bool),
            reference=np.array(payload["reference"], dtype=np.uint8),
            instability=np.array(payload["instability"], dtype=float),
        )

    def enroll(self, client_id: str, mask: TernaryMask) -> None:
        """Store (encrypted) the enrollment image for ``client_id``.

        Re-enrolling bumps the record's version counter so the fresh
        ciphertext is produced under a fresh keystream. The nonce-reuse
        tripwire refuses (raising :class:`NonceReuseError`) if the
        computed version does not clear every version a ciphertext is
        already known to exist for — the failure a crash-restart that
        rolled back the version counters would otherwise cause silently.
        """
        version = self._versions.get(client_id, -1) + 1
        floor = self._nonce_floor.get(client_id, -1)
        if version <= floor:
            self.nonce_reuse_trips += 1
            raise NonceReuseError(client_id, version, floor)
        plaintext = self._serialize(mask)
        self._records[client_id] = self._cipher.ctr_transform(
            plaintext, self._nonce(client_id, version)
        )
        self._versions[client_id] = version
        self._nonce_floor[client_id] = version

    def lookup(self, client_id: str) -> TernaryMask:
        """Decrypt and return the enrollment image for ``client_id``."""
        if client_id not in self._records:
            raise KeyError(f"client {client_id!r} not enrolled")
        plaintext = self._cipher.ctr_transform(
            self._records[client_id],
            self._nonce(client_id, self._versions.get(client_id, 0)),
        )
        return self._deserialize(plaintext)

    def version_of(self, client_id: str) -> int:
        """Current re-enrollment counter for ``client_id`` (0 = first)."""
        if client_id not in self._records:
            raise KeyError(f"client {client_id!r} not enrolled")
        return self._versions.get(client_id, 0)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def client_ids(self) -> tuple[str, ...]:
        """All enrolled identifiers (sorted, no plaintext involved)."""
        return tuple(sorted(self._records))

    def encrypted_record(self, client_id: str) -> bytes:
        """The raw ciphertext (what an attacker stealing the DB sees)."""
        return self._records[client_id]

    # -- stateless record codec (for replicated stores) -------------------

    def encrypt_record(
        self, client_id: str, mask: TernaryMask, version: int
    ) -> bytes:
        """Ciphertext for ``(client_id, mask, version)`` — pure function.

        Does not touch this store's contents. A replicated directory uses
        it to encrypt once and install the identical ciphertext on every
        replica under a directory-assigned version.
        """
        if version < 0:
            raise ValueError("record version must be non-negative")
        return self._cipher.ctr_transform(
            self._serialize(mask), self._nonce(client_id, version)
        )

    def decrypt_record(
        self, client_id: str, blob: bytes, version: int
    ) -> TernaryMask:
        """Decrypt one exported record — inverse of :meth:`encrypt_record`."""
        if version < 0:
            raise ValueError("record version must be non-negative")
        return self._deserialize(
            self._cipher.ctr_transform(blob, self._nonce(client_id, version))
        )

    # -- replica transfer (records stay encrypted) ------------------------

    def export_record(self, client_id: str) -> tuple[bytes, int]:
        """One record as ``(ciphertext, version)`` for replica transfer.

        The nonce is a pure function of (client_id, version), so the
        ciphertext is portable between stores sharing a master key.
        """
        if client_id not in self._records:
            raise KeyError(f"client {client_id!r} not enrolled")
        return self._records[client_id], self._versions.get(client_id, 0)

    def import_record(self, client_id: str, blob: bytes, version: int) -> None:
        """Install a still-encrypted record exported from a peer store.

        The imported ciphertext exists under (client, version), so the
        nonce floor rises too — a later local enrollment must clear it.
        """
        if version < 0:
            raise ValueError("record version must be non-negative")
        self._records[client_id] = blob
        self._versions[client_id] = version
        self.register_used_version(client_id, version)

    def register_used_version(self, client_id: str, version: int) -> None:
        """Raise the nonce-reuse floor: a ciphertext exists at ``version``.

        Recovery calls this for every version the durable log ever
        acknowledged, so the tripwire in :meth:`enroll` can prove the
        restored counters are monotone with durable history.
        """
        if version > self._nonce_floor.get(client_id, -1):
            self._nonce_floor[client_id] = version

    # -- persistence (records stay encrypted at rest) --------------------

    def snapshot(self) -> bytes:
        """The whole store as one still-encrypted byte blob.

        Shard replicas and the chaos storm clone stores from this — the
        master key is *not* part of the snapshot and no record is
        decrypted to produce it.
        """
        payload = {
            "format": _FORMAT_V2,
            "records": {
                client_id: blob.hex() for client_id, blob in self._records.items()
            },
            "versions": dict(self._versions),
        }
        return json.dumps(payload).encode()

    def restore(self, snapshot: bytes) -> None:
        """Replace this store's contents from a :meth:`snapshot` blob."""
        payload = json.loads(snapshot.decode())
        if payload.get("format") not in (_FORMAT_V1, _FORMAT_V2):
            raise ValueError("unrecognized image-db snapshot format")
        self._records = {
            client_id: bytes.fromhex(blob)
            for client_id, blob in payload["records"].items()
        }
        self._versions = {
            client_id: int(version)
            for client_id, version in payload.get("versions", {}).items()
        }
        for client_id, version in self._versions.items():
            self.register_used_version(client_id, version)

    @classmethod
    def from_snapshot(
        cls, snapshot: bytes, master_key: bytes
    ) -> "EncryptedImageDatabase":
        """A new store cloned from a snapshot (the replica-spawn path)."""
        db = cls(master_key)
        db.restore(snapshot)
        return db

    def save(self, path) -> None:
        """Write the database to disk; records remain ciphertext."""
        import pathlib

        pathlib.Path(path).write_text(self.snapshot().decode())

    @classmethod
    def load(cls, path, master_key: bytes) -> "EncryptedImageDatabase":
        """Load a saved database; the master key is needed to *use* it."""
        import pathlib

        raw = pathlib.Path(path).read_text().encode()
        try:
            db = cls.from_snapshot(raw, master_key)
        except ValueError:
            raise ValueError("unrecognized image-db file format") from None
        return db
