"""TAPKI-style ternary masking of unstable PUF cells.

Ternary Addressable PKI (Cambou & Telesca 2018) keeps the RBC search
tractable: during enrollment the CA reads each cell many times and marks
cells whose observed instability exceeds a threshold as *ternary* ('-'),
excluding them from key material. The remaining cells carry the 0/1
values of the enrollment image. At validation time, both sides skip the
masked cells, so the effective bit error rate of the 256-bit seed stream
is that of the stable population only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.puf.model import SRAMPuf

__all__ = ["TernaryMask", "enroll_with_masking"]


@dataclass(frozen=True)
class TernaryMask:
    """Enrollment product for one cell window of one device."""

    address: int
    #: Boolean per cell: True = usable (binary), False = masked (ternary).
    usable: np.ndarray
    #: Enrollment-time reference bits over the whole window.
    reference: np.ndarray
    #: Measured per-cell instability (fraction of reads disagreeing).
    instability: np.ndarray

    @property
    def usable_count(self) -> int:
        """Number of cells kept after masking."""
        return int(self.usable.sum())

    def select_bits(self, window_bits: np.ndarray, count: int) -> np.ndarray:
        """The first ``count`` usable bits of a raw window read.

        Both client and server apply this identical selection, so they
        agree on which physical cells compose the 256-bit seed.
        """
        if window_bits.shape != self.usable.shape:
            raise ValueError("window size mismatch with mask")
        usable_bits = window_bits[self.usable]
        if usable_bits.shape[0] < count:
            raise ValueError(
                f"only {usable_bits.shape[0]} usable cells, need {count}"
            )
        return usable_bits[:count]

    def reference_seed_bits(self, count: int) -> np.ndarray:
        """The masked enrollment bits — the server's PUF image seed."""
        return self.select_bits(self.reference, count)


def enroll_with_masking(
    puf: SRAMPuf,
    address: int,
    window: int,
    reads: int = 32,
    instability_threshold: float = 0.05,
) -> TernaryMask:
    """Enroll a cell window: estimate instability, mask erratic cells.

    Reads the window ``reads`` times, estimates each cell's disagreement
    rate against the majority value, and masks cells above
    ``instability_threshold``. Run inside the secure enrollment facility
    of the threat model — the only phase with access to repeated reads.
    """
    if reads < 2:
        raise ValueError("enrollment needs at least 2 reads")
    samples = puf.read_repeated(address, window, reads)
    ones = samples.sum(axis=0)
    majority = (ones * 2 >= reads).astype(np.uint8)
    disagreement = np.minimum(ones, reads - ones) / reads
    usable = disagreement <= instability_threshold
    return TernaryMask(
        address=address,
        usable=usable,
        reference=majority,
        instability=disagreement,
    )
