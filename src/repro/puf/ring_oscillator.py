"""Ring-oscillator (RO) PUF model (frequency-comparison).

The third PUF architecture in the agnosticism demonstration: each cell
compares the frequencies of a pair of nominally identical ring
oscillators; process variation fixes which one is faster, and counter
quantization noise makes close pairs erratic.

Model: oscillator frequencies ``f = f₀(1 + σ_process·g)`` per device;
cell i pairs oscillators ``2i`` and ``2i+1``; a read counts cycles over
a fixed window with Poisson-ish jitter, and the bit is
``count_a > count_b``. As with the arbiter model, instability is
concentrated where the frequency margin is small.
"""

from __future__ import annotations

import numpy as np

from repro.puf.model import PUFReadout

__all__ = ["RingOscillatorPuf"]


class RingOscillatorPuf:
    """A simulated RO-pair PUF."""

    def __init__(
        self,
        num_cells: int = 16384,
        nominal_frequency_hz: float = 200e6,
        process_sigma: float = 0.01,
        count_window_seconds: float = 1e-4,
        jitter_cycles: float = 18.0,
        seed: int | None = None,
    ):
        if num_cells % 8:
            raise ValueError("num_cells must be a multiple of 8")
        self.num_cells = num_cells
        self.count_window = count_window_seconds
        self.jitter_cycles = jitter_cycles
        rng = np.random.default_rng(seed)
        frequencies = nominal_frequency_hz * (
            1.0 + process_sigma * rng.normal(size=2 * num_cells)
        )
        self._freq_a = frequencies[0::2]
        self._freq_b = frequencies[1::2]
        self._read_rng = np.random.default_rng(
            None if seed is None else seed + 65537
        )

    @property
    def frequency_margins(self) -> np.ndarray:
        """|f_a - f_b| per cell in Hz (read-only)."""
        view = np.abs(self._freq_a - self._freq_b).view()
        view.flags.writeable = False
        return view

    def reference_bits(self, address: int, length: int) -> np.ndarray:
        """Noise-free comparison (infinite counting window)."""
        self._check_window(address, length)
        sl = slice(address, address + length)
        return (self._freq_a[sl] > self._freq_b[sl]).astype(np.uint8)

    def read(self, address: int, length: int) -> PUFReadout:
        """One counting-window comparison per cell."""
        self._check_window(address, length)
        sl = slice(address, address + length)
        count_a = self._freq_a[sl] * self.count_window + self._read_rng.normal(
            0.0, self.jitter_cycles, size=length
        )
        count_b = self._freq_b[sl] * self.count_window + self._read_rng.normal(
            0.0, self.jitter_cycles, size=length
        )
        return PUFReadout(address=address, bits=(count_a > count_b).astype(np.uint8))

    def read_repeated(self, address: int, length: int, times: int) -> np.ndarray:
        """``(times, length)`` repeated comparisons (for enrollment)."""
        return np.stack(
            [self.read(address, length).bits for _ in range(times)], axis=0
        )

    def _check_window(self, address: int, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        if not (0 <= address and address + length <= self.num_cells):
            raise ValueError(
                f"window [{address}, {address + length}) outside device "
                f"of {self.num_cells} cells"
            )
