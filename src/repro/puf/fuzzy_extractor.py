"""Client-side error correction — the alternative RBC exists to avoid.

The paper's introduction: IoT devices "often do not have the
computational power to carry out error correction, and if they were
able to carry out error correction, it may leak information to an
opponent." To make that trade-off measurable rather than rhetorical,
this module implements the classic alternative — a repetition-code
fuzzy extractor (code-offset construction):

* **enrollment** (secure facility): pick a uniform secret ``s``, encode
  with an r-fold repetition code, store ``helper = codeword XOR reading``
  (public helper data);
* **reproduction** (on the IoT device): read the PUF, compute
  ``helper XOR reading`` and majority-decode each r-bit group to recover
  ``s`` — *client-side* work proportional to ``r x 256`` bit operations
  per authentication, versus RBC's single hash.

The leakage the paper alludes to is also demonstrable: each helper bit
is codeword-bit XOR reading-bit, so helper data pins every reading bit
relative to the secret; an attacker with partial knowledge of the PUF
bias learns about ``s`` (quantified in the tests by the bias-transfer
experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HelperData", "RepetitionFuzzyExtractor"]


@dataclass(frozen=True)
class HelperData:
    """Public helper string stored with (or sent to) the device."""

    repetition: int
    offset: np.ndarray  # (secret_bits * repetition,) uint8


class RepetitionFuzzyExtractor:
    """Code-offset fuzzy extractor with an r-fold repetition code."""

    def __init__(self, secret_bits: int = 256, repetition: int = 5):
        if repetition < 1 or repetition % 2 == 0:
            raise ValueError("repetition factor must be odd and positive")
        if secret_bits < 1:
            raise ValueError("secret_bits must be positive")
        self.secret_bits = secret_bits
        self.repetition = repetition
        self.reading_bits = secret_bits * repetition

    # -- enrollment ---------------------------------------------------------

    def enroll(
        self, reading: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, HelperData]:
        """Derive (secret, helper) from an enrollment reading."""
        reading = self._check_reading(reading)
        secret = rng.integers(0, 2, self.secret_bits, dtype=np.uint8)
        codeword = np.repeat(secret, self.repetition)
        return secret, HelperData(self.repetition, codeword ^ reading)

    # -- reproduction (the client-side cost RBC eliminates) -----------------

    def reproduce(self, reading: np.ndarray, helper: HelperData) -> np.ndarray:
        """Majority-decode the secret from a noisy reading + helper."""
        reading = self._check_reading(reading)
        if helper.repetition != self.repetition:
            raise ValueError("helper repetition mismatch")
        noisy_codeword = helper.offset ^ reading
        groups = noisy_codeword.reshape(self.secret_bits, self.repetition)
        return (groups.sum(axis=1) * 2 > self.repetition).astype(np.uint8)

    def client_bit_operations(self) -> int:
        """Bit ops per reproduction: XOR + majority per repetition group."""
        # One XOR per reading bit, plus (r-1) adds and a threshold per group.
        return self.reading_bits + self.secret_bits * self.repetition

    def failure_probability(self, bit_error_rate: float) -> float:
        """P(any secret bit decodes wrongly) for i.i.d. reading errors."""
        if not 0 <= bit_error_rate <= 0.5:
            raise ValueError("bit error rate must be in [0, 0.5]")
        from math import comb

        r = self.repetition
        per_group = sum(
            comb(r, k) * bit_error_rate**k * (1 - bit_error_rate) ** (r - k)
            for k in range(r // 2 + 1, r + 1)
        )
        return 1.0 - (1.0 - per_group) ** self.secret_bits

    def helper_leakage_bits(self) -> int:
        """Information-theoretic helper leakage (code-offset bound).

        The helper reveals ``reading XOR codeword``; with an ideal code
        the leakage about the secret is ``reading_bits - secret_bits``
        bits of the reading's entropy — the quantity that grows with r
        and that the paper's threat model refuses to spend.
        """
        return self.reading_bits - self.secret_bits

    def _check_reading(self, reading: np.ndarray) -> np.ndarray:
        reading = np.asarray(reading, dtype=np.uint8)
        if reading.shape != (self.reading_bits,):
            raise ValueError(
                f"reading must be {self.reading_bits} bits "
                f"({self.secret_bits} x {self.repetition})"
            )
        return reading
