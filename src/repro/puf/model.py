"""SRAM-style PUF statistical model.

A physical SRAM PUF powers up each cell into a preferred state set by
manufacturing variation; most cells are strongly biased (stable) while a
minority sit near the metastable point and flip between reads. We model a
device as an array of cells, each with

* a reference value (the bit captured at enrollment), and
* a per-cell flip probability drawn from a mixture: most cells nearly
  deterministic, a heavy tail of erratic cells.

Challenges are *addresses*: the CA names a window of cells, the device
returns their current power-up values. The enrollment image, per-cell
instability estimates, and masked readout reproduce the measurable
behaviour the RBC protocol depends on — nothing else about the physics
matters to the search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SRAMPuf", "PUFReadout"]


@dataclass(frozen=True)
class PUFReadout:
    """One challenge-response: the raw bits a device returned."""

    address: int
    bits: np.ndarray  # uint8 array of 0/1 cell values

    def to_bytes(self) -> bytes:
        """Pack the (multiple-of-8) bit vector into big-endian bytes."""
        if self.bits.shape[0] % 8:
            raise ValueError("bit vector length must be a multiple of 8")
        return np.packbits(self.bits).tobytes()


class SRAMPuf:
    """A simulated SRAM PUF device with heterogeneous cell stability.

    Parameters
    ----------
    num_cells:
        Total cells on the device (the addressable space).
    stable_fraction:
        Fraction of cells in the "strongly biased" population.
    stable_error, erratic_error:
        Mean flip probabilities of the two populations.
    seed:
        RNG seed; two devices built with different seeds are distinct
        "chips" (unclonability is modeled as independent randomness).
    """

    def __init__(
        self,
        num_cells: int = 16384,
        stable_fraction: float = 0.90,
        stable_error: float = 0.002,
        erratic_error: float = 0.15,
        seed: int | None = None,
    ):
        if num_cells % 8:
            raise ValueError("num_cells must be a multiple of 8")
        if not 0 <= stable_fraction <= 1:
            raise ValueError("stable_fraction must be in [0, 1]")
        self.num_cells = num_cells
        rng = np.random.default_rng(seed)
        self._reference = rng.integers(0, 2, size=num_cells, dtype=np.uint8)
        erratic = rng.random(num_cells) >= stable_fraction
        flip_p = np.full(num_cells, stable_error)
        # Erratic cells get beta-distributed error rates around the mean.
        if erratic.any():
            flip_p[erratic] = rng.beta(2.0, 2.0 / erratic_error - 2.0, size=int(erratic.sum()))
        self._flip_probability = np.clip(flip_p, 0.0, 0.49)
        self._read_rng = np.random.default_rng(None if seed is None else seed + 1)

    @property
    def flip_probability(self) -> np.ndarray:
        """Per-cell flip probabilities (read-only view)."""
        view = self._flip_probability.view()
        view.flags.writeable = False
        return view

    def reference_bits(self, address: int, length: int) -> np.ndarray:
        """The enrollment-time (noise-free) bits of a cell window."""
        self._check_window(address, length)
        return self._reference[address : address + length].copy()

    def read(self, address: int, length: int) -> PUFReadout:
        """A noisy challenge-response read of ``length`` cells."""
        self._check_window(address, length)
        window = slice(address, address + length)
        flips = (
            self._read_rng.random(length) < self._flip_probability[window]
        ).astype(np.uint8)
        return PUFReadout(address=address, bits=self._reference[window] ^ flips)

    def read_repeated(self, address: int, length: int, times: int) -> np.ndarray:
        """``(times, length)`` matrix of repeated reads (for enrollment)."""
        return np.stack(
            [self.read(address, length).bits for _ in range(times)], axis=0
        )

    def _check_window(self, address: int, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        if not (0 <= address and address + length <= self.num_cells):
            raise ValueError(
                f"window [{address}, {address + length}) outside device "
                f"of {self.num_cells} cells"
            )
