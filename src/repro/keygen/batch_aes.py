"""NumPy-vectorized AES-128 over batches of *distinct* keys.

The original RBC search pattern is unusual for AES acceleration: every
candidate seed yields a *different key* (key agility), so the kernel must
run N key schedules and N encryptions in parallel — exactly what prior
RBC work implemented in CUDA. One array lane per candidate:

* state: ``(N, 16)`` uint8, column-major within each row (FIPS 197);
* round keys: 11 x ``(N, 16)`` uint8, expanded vectorized;
* SubBytes via table gather, MixColumns via xtime table algebra.

Validated against the scalar FIPS-197 implementation in the tests; used
by :class:`repro.runtime.original_batch.BatchOriginalRBCSearch` to run
the Table 7 AES baseline live at reduced scale.
"""

from __future__ import annotations

import numpy as np

from repro.keygen.aes import _SBOX, _RCON

__all__ = ["aes128_encrypt_batch", "expand_keys_batch"]

_SBOX_NP = np.array(_SBOX, dtype=np.uint8)

# xtime (multiplication by 2 in GF(2^8)) as a table.
_XTIME = np.array(
    [((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1) & 0xFF for x in range(256)],
    dtype=np.uint8,
)

#: ShiftRows as a gather permutation on the column-major state layout:
#: output byte (r + 4c) comes from input byte (r + 4*((c + r) % 4)).
_SHIFT_ROWS_PERM = np.array(
    [r + 4 * ((c + r) % 4) for c in range(4) for r in range(4)], dtype=np.intp
)


def expand_keys_batch(keys: np.ndarray) -> list[np.ndarray]:
    """Vectorized AES-128 key schedule.

    ``keys`` is ``(N, 16)`` uint8; returns 11 round keys of ``(N, 16)``.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    if keys.ndim != 2 or keys.shape[1] != 16:
        raise ValueError("expected (N, 16) uint8 keys")
    n = keys.shape[0]
    words = [keys[:, 4 * i : 4 * i + 4].copy() for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = temp[:, [1, 2, 3, 0]]
            temp = _SBOX_NP[rotated]
            temp = temp.copy()
            temp[:, 0] ^= np.uint8(_RCON[i // 4 - 1])
        words.append(words[i - 4] ^ temp)
    round_keys = []
    for r in range(11):
        rk = np.empty((n, 16), dtype=np.uint8)
        for c in range(4):
            rk[:, 4 * c : 4 * c + 4] = words[4 * r + c]
        round_keys.append(rk)
    return round_keys


def _mix_columns_batch(state: np.ndarray) -> np.ndarray:
    """Vectorized MixColumns on ``(N, 16)`` column-major state."""
    out = np.empty_like(state)
    for c in range(4):
        col = state[:, 4 * c : 4 * c + 4]
        a0, a1, a2, a3 = col[:, 0], col[:, 1], col[:, 2], col[:, 3]
        # 2*x via table; 3*x = 2*x ^ x.
        x0, x1, x2, x3 = _XTIME[a0], _XTIME[a1], _XTIME[a2], _XTIME[a3]
        out[:, 4 * c + 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
        out[:, 4 * c + 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
        out[:, 4 * c + 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
        out[:, 4 * c + 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
    return out


def aes128_encrypt_batch(keys: np.ndarray, plaintexts: np.ndarray) -> np.ndarray:
    """Encrypt N blocks under N independent keys.

    ``keys`` and ``plaintexts`` are ``(N, 16)`` uint8; returns
    ``(N, 16)`` uint8 ciphertexts. Row i is
    ``AES128(keys[i]).encrypt_block(plaintexts[i])``.
    """
    plaintexts = np.asarray(plaintexts, dtype=np.uint8)
    if plaintexts.ndim != 2 or plaintexts.shape[1] != 16:
        raise ValueError("expected (N, 16) uint8 plaintexts")
    round_keys = expand_keys_batch(keys)
    if plaintexts.shape[0] != round_keys[0].shape[0]:
        raise ValueError("keys and plaintexts must have the same batch size")

    state = plaintexts ^ round_keys[0]
    for r in range(1, 10):
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS_PERM]
        state = _mix_columns_batch(state)
        state ^= round_keys[r]
    state = _SBOX_NP[state]
    state = state[:, _SHIFT_ROWS_PERM]
    state = state ^ round_keys[10]
    return state
