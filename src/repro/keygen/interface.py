"""Uniform key-generation interface consumed by the RBC engines.

The original RBC search is *algorithm aware*: it calls the key generator
once per candidate seed, so the engine is parameterized over this
interface. RBC-SALTED calls it exactly once, after the search, on the
salted seed — which is precisely why it no longer cares which algorithm
sits behind the interface (the paper's Section 3 argument).

``relative_cost`` expresses the measured per-operation cost relative to
one SHA-1 hash; the device models use it to time the original-RBC
baseline, and the values are calibrated from the paper's Table 7 rows
(see ``repro.devices.calibration``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.keygen.aes import aes128_encrypt_block
from repro.keygen.chacha20 import chacha20_block
from repro.keygen.speck import speck128_encrypt_block
from repro.keygen.lwe import ToyModuleLWE

__all__ = ["KeyGenerator", "get_keygen", "available_keygens"]

_FIXED_PLAINTEXT = bytes.fromhex("524243205075626c6963526573706f6e")  # "RBC PublicRespon"
_FIXED_NONCE = b"\x00" * 12


@dataclass(frozen=True)
class KeyGenerator:
    """A named public-response generator: 32-byte seed -> public bytes."""

    name: str
    #: Cost of one key generation in units of one SHA-1 hash (calibrated).
    relative_cost: float
    _fn: Callable[[bytes], bytes] = field(repr=False)

    def public_key(self, seed: bytes) -> bytes:
        """The public response for ``seed`` (deterministic)."""
        if len(seed) != 32:
            raise ValueError("RBC seeds are 32 bytes")
        return self._fn(seed)


def _aes_response(seed: bytes) -> bytes:
    # Prior-work convention: seed halves form key and plaintext tweak.
    return aes128_encrypt_block(seed[:16], bytes(a ^ b for a, b in zip(seed[16:], _FIXED_PLAINTEXT)))


def _chacha_response(seed: bytes) -> bytes:
    return chacha20_block(seed, 0, _FIXED_NONCE)[:32]


def _speck_response(seed: bytes) -> bytes:
    return speck128_encrypt_block(seed[:16], bytes(a ^ b for a, b in zip(seed[16:], _FIXED_PLAINTEXT)))


_LIGHT = ToyModuleLWE("light")
_SABER = ToyModuleLWE("saber")
_DILITHIUM = ToyModuleLWE("dilithium3")

#: relative_cost calibration: from Table 7 GPU times per candidate —
#: AES 2.56 s / u(5) seeds = 0.285 ns; LightSABER 14.03 s / u(4) = 79 ns;
#: Dilithium3 27.91 s / u(4) = 157 ns — divided by the SHA-1 per-hash cost
#: (1.56 s / u(5) = 0.174 ns).
_REGISTRY: dict[str, KeyGenerator] = {}


def _register(gen: KeyGenerator) -> KeyGenerator:
    _REGISTRY[gen.name] = gen
    return gen


AES128_KEYGEN = _register(KeyGenerator("aes-128", 0.285 / 0.174, _aes_response))
CHACHA20_KEYGEN = _register(KeyGenerator("chacha20", 0.40 / 0.174, _chacha_response))
SPECK_KEYGEN = _register(KeyGenerator("speck-128", 0.22 / 0.174, _speck_response))
LIGHTSABER_KEYGEN = _register(
    KeyGenerator("lightsaber", 79.0 / 0.174, _LIGHT.public_key)
)
SABER_KEYGEN = _register(KeyGenerator("saber", 110.0 / 0.174, _SABER.public_key))
DILITHIUM3_KEYGEN = _register(
    KeyGenerator("dilithium3", 157.0 / 0.174, _DILITHIUM.public_key)
)


def get_keygen(name: str) -> KeyGenerator:
    """Look up a registered key generator by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown keygen {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def available_keygens() -> list[str]:
    """Names of all registered key generators."""
    return sorted(_REGISTRY)
