"""NumPy-vectorized SPECK-128/128 over batches of distinct keys.

SPECK's two-word ARX round maps perfectly onto uint64 lanes; like the
batch AES kernel, each lane runs an independent key schedule — the
key-agile pattern of the original RBC search.
"""

from __future__ import annotations

import numpy as np

__all__ = ["speck128_encrypt_batch"]

_ROUNDS = 32
_U64 = np.uint64


def _ror(x: np.ndarray, s: int) -> np.ndarray:
    return (x >> _U64(s)) | (x << _U64(64 - s))


def _rol(x: np.ndarray, s: int) -> np.ndarray:
    return (x << _U64(s)) | (x >> _U64(64 - s))


def _round(x: np.ndarray, y: np.ndarray, k: np.ndarray):
    x = _ror(x, 8) + y
    x ^= k
    y = _rol(y, 3) ^ x
    return x, y


def speck128_encrypt_batch(keys: np.ndarray, plaintexts: np.ndarray) -> np.ndarray:
    """Encrypt N 16-byte blocks under N independent 16-byte keys.

    ``keys`` and ``plaintexts`` are ``(N, 16)`` uint8 (big-endian block
    layout, matching :func:`repro.keygen.speck.speck128_encrypt_block`);
    returns ``(N, 16)`` uint8 ciphertexts.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    plaintexts = np.asarray(plaintexts, dtype=np.uint8)
    for name, arr in (("keys", keys), ("plaintexts", plaintexts)):
        if arr.ndim != 2 or arr.shape[1] != 16:
            raise ValueError(f"expected (N, 16) uint8 {name}")
    if keys.shape[0] != plaintexts.shape[0]:
        raise ValueError("keys and plaintexts must have the same batch size")

    # Big-endian byte pairs -> uint64 words (k1 = bytes 0..7, k0 = 8..15).
    def words(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split 16-byte rows into big-endian (hi, lo) uint64 words."""
        be = arr.reshape(-1, 2, 8)[:, :, ::-1]  # byteswap for big-endian
        w = np.ascontiguousarray(be).view("<u8").reshape(-1, 2)
        return w[:, 0].copy(), w[:, 1].copy()

    k1, k0 = words(keys)
    x, y = words(plaintexts)

    a, b = k0, k1
    for i in range(_ROUNDS):
        x, y = _round(x, y, a)
        b, a = _round(b, a, np.uint64(i))

    out_words = np.stack([x, y], axis=1)
    out = out_words.view(np.uint8).reshape(-1, 2, 8)[:, :, ::-1]
    return np.ascontiguousarray(out).reshape(-1, 16)
